package bird

import (
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/netem"
)

// TestRoutersConvergeOverTCP runs two emulated routers over real loopback TCP
// connections (the netem TCPRunner) instead of the virtual-time emulator,
// exercising the same Node implementation over a heterogeneous transport —
// sessions must establish and routes must be exchanged using real sockets,
// real framing and real timers.
func TestRoutersConvergeOverTCP(t *testing.T) {
	mk := func(name string, as bgp.ASN, id bgp.RouterID, peer string, peerAS bgp.ASN, prefix string) *Router {
		return MustNew(&Config{
			Name:              name,
			AS:                as,
			RouterID:          id,
			Networks:          []bgp.Prefix{bgp.MustParsePrefix(prefix)},
			KeepaliveInterval: 200 * time.Millisecond,
			ConnectRetry:      300 * time.Millisecond,
			Neighbors:         []NeighborConfig{{Name: peer, AS: peerAS, Import: "ALL", Export: "ALL"}},
			Policies:          map[string]*policy.Policy{"ALL": policy.AcceptAll("ALL")},
		})
	}
	r1 := mk("A", 65001, 1, "B", 65002, "10.1.0.0/16")
	r2 := mk("B", 65002, 2, "A", 65001, "10.2.0.0/16")

	runner := netem.NewTCPRunner()
	runner.AddNode(r1)
	runner.AddNode(r2)
	runner.Connect("A", "B")
	if err := runner.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer runner.Stop()

	// Routers assume the emulator's single-threaded callback semantics, so
	// all state reads go through Inspect, serialized on each node's worker.
	inspect := func(r *Router, fn func()) {
		if !runner.Inspect(r.ID(), fn) {
			t.Fatalf("runner stopped before inspection of %s", r.ID())
		}
	}
	var r1Learned, r2Learned bool
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		inspect(r1, func() { r1Learned = r1.LocRIB().Best(bgp.MustParsePrefix("10.2.0.0/16")) != nil })
		inspect(r2, func() { r2Learned = r2.LocRIB().Best(bgp.MustParsePrefix("10.1.0.0/16")) != nil })
		if r1Learned && r2Learned {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	var s1, s2 SessionState
	var invariants []string
	inspect(r1, func() {
		s1 = r1.SessionState("B")
		r1Learned = r1.LocRIB().Best(bgp.MustParsePrefix("10.2.0.0/16")) != nil
		invariants = r1.CheckInvariants()
	})
	inspect(r2, func() {
		s2 = r2.SessionState("A")
		r2Learned = r2.LocRIB().Best(bgp.MustParsePrefix("10.1.0.0/16")) != nil
	})
	if s1 != StateEstablished || s2 != StateEstablished {
		t.Fatalf("sessions did not establish over TCP: %v / %v", s1, s2)
	}
	if !r1Learned {
		t.Errorf("A did not learn B's prefix over TCP")
	}
	if !r2Learned {
		t.Errorf("B did not learn A's prefix over TCP")
	}
	if len(invariants) != 0 {
		t.Errorf("invariant violations over TCP transport: %v", invariants)
	}
}
