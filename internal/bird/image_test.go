package bird

import (
	"encoding/json"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// canonical returns a deterministic byte form of a checkpoint (encoding/json
// sorts map keys, and checkpoint route lists are already in canonical order).
func canonical(t testing.TB, cp *Checkpoint) string {
	t.Helper()
	data, err := json.Marshal(cp)
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	return string(data)
}

// convergedPair wires two routers over netem, converges them and returns the
// first one (which now has established sessions and learned routes).
func convergedPair(t testing.TB) *Router {
	t.Helper()
	mkCfg := func(name string, as bgp.ASN, id bgp.RouterID, prefix, peer string, peerAS bgp.ASN) *Config {
		return &Config{
			Name: name, AS: as, RouterID: id,
			Networks: []bgp.Prefix{bgp.MustParsePrefix(prefix)},
			Policies: map[string]*policy.Policy{"ALL": policy.AcceptAll("ALL")},
			Neighbors: []NeighborConfig{
				{Name: peer, AS: peerAS, Import: "ALL", Export: "ALL"},
			},
		}
	}
	net := netem.New(netem.Options{Seed: 1})
	r1 := MustNew(mkCfg("R1", 65001, 1, "10.1.0.0/16", "R2", 65002))
	r2 := MustNew(mkCfg("R2", 65002, 2, "10.2.0.0/16", "R1", 65001))
	net.AddNode(r1)
	net.AddNode(r2)
	net.Connect("R1", "R2", netem.LinkConfig{Delay: time.Millisecond})
	net.RunQuiescent(0)
	if r1.SessionState("R2") != StateEstablished {
		t.Fatal("pair did not converge")
	}
	return r1
}

func TestImageRestoreMatchesColdRestore(t *testing.T) {
	cp := convergedPair(t).Checkpoint()

	cold, err := Restore(cp)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	im, err := ImageOf(cp)
	if err != nil {
		t.Fatalf("ImageOf: %v", err)
	}
	st, err := DecodeState(cp)
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	fast, err := im.Restore(st)
	if err != nil {
		t.Fatalf("Image.Restore: %v", err)
	}
	if got, want := canonical(t, fast.Checkpoint()), canonical(t, cold.Checkpoint()); got != want {
		t.Errorf("image restore diverged from cold restore:\n got %s\nwant %s", got, want)
	}
}

func TestResetToRewindsDirtyRouter(t *testing.T) {
	cp := convergedPair(t).Checkpoint()
	im, err := ImageOf(cp)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeState(cp)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := im.Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	baseline := canonical(t, clone.Checkpoint())

	// Dirty every kind of mutable state: RIBs, counters, events, sessions,
	// crash flags, fault hooks and armed explorations.
	leaked := &rib.Route{
		Prefix: bgp.MustParsePrefix("99.9.0.0/16"),
		Attrs:  &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65099}, NextHop: 9},
		Peer:   "R2", PeerAS: 65002, EBGP: true,
	}
	clone.adjIn["R2"].Set(leaked.Clone())
	clone.locRIB.Update(nil, leaked)
	clone.stats.UpdatesReceived += 7
	clone.events = append(clone.events, RouteEvent{At: time.Second, Prefix: leaked.Prefix, NewVia: "R2"})
	clone.sessions["R2"].downCount++
	clone.panicked = true
	clone.lastPanic = "boom"
	clone.SetUpdateHook(func(r node.HookContext, from string, u *bgp.Update) error { return nil })
	if canonical(t, clone.Checkpoint()) == baseline {
		t.Fatal("dirtying the clone did not change its checkpoint; test is vacuous")
	}

	if err := clone.ResetTo(im, st); err != nil {
		t.Fatalf("ResetTo: %v", err)
	}
	if got := canonical(t, clone.Checkpoint()); got != baseline {
		t.Errorf("reset clone differs from baseline:\n got %s\nwant %s", got, baseline)
	}
	if clone.hook != nil {
		t.Errorf("reset must clear the fault hook")
	}
	if p, _ := clone.Panicked(); p {
		t.Errorf("reset must clear the crash flag")
	}
}

// TestRestoredClonesIsolated verifies that routes handed out by a State are
// deep-copied per restore: mutating one clone's RIB attributes must not leak
// into a sibling restored from the same State.
func TestRestoredClonesIsolated(t *testing.T) {
	cp := convergedPair(t).Checkpoint()
	im, err := ImageOf(cp)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeState(cp)
	if err != nil {
		t.Fatal(err)
	}
	a, err := im.Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := im.Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	p := bgp.MustParsePrefix("10.2.0.0/16")
	if a.LocRIB().Best(p) == nil {
		t.Fatal("restored clone missing the learned route")
	}
	a.LocRIB().Best(p).Attrs.SetLocalPref(999)
	if b.LocRIB().Best(p).Attrs.EffectiveLocalPref() == 999 {
		t.Errorf("clones share route attributes with the decoded state")
	}
}

// TestImageOfSerializedCheckpoint covers the cross-process path: a checkpoint
// that lost its in-process config must image from the textual policy form.
func TestImageOfSerializedCheckpoint(t *testing.T) {
	cp := convergedPair(t).Checkpoint()
	cp.cfg = nil // simulate a checkpoint that crossed a process boundary
	im, err := ImageOf(cp)
	if err != nil {
		t.Fatalf("ImageOf(serialized): %v", err)
	}
	st, err := DecodeState(cp)
	if err != nil {
		t.Fatal(err)
	}
	r, err := im.Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if r.SessionState("R2") != StateEstablished {
		t.Errorf("restored router lost session state")
	}
	if r.LocRIB().Best(bgp.MustParsePrefix("10.2.0.0/16")) == nil {
		t.Errorf("restored router lost learned routes")
	}
}
