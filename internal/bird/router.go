package bird

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// Implementation is this backend's registry tag.
const Implementation = "bird"

// init registers the backend so implementation-neutral code (cluster builds,
// snapshot stores) can construct and restore bird routers by tag, and makes
// bird checkpoints gob-encodable inside mixed-implementation snapshots.
func init() {
	gob.Register(&Checkpoint{})
	node.Register(node.Backend{
		Name:     Implementation,
		Decision: rib.DecisionRouterIDFirst,
		Build: func(cfg *Config) (node.Router, error) {
			return New(cfg)
		},
		ImageOf: func(cp node.Checkpoint) (node.Image, error) {
			bcp, ok := cp.(*Checkpoint)
			if !ok {
				return nil, fmt.Errorf("bird: checkpoint for %s is %T, not a bird checkpoint", cp.NodeName(), cp)
			}
			return ImageOf(bcp)
		},
		DecodeState: func(cp node.Checkpoint) (node.State, error) {
			bcp, ok := cp.(*Checkpoint)
			if !ok {
				return nil, fmt.Errorf("bird: checkpoint for %s is %T, not a bird checkpoint", cp.NodeName(), cp)
			}
			return DecodeState(bcp)
		},
		Restore: func(im node.Image, st node.State) (node.Router, error) {
			bim, ok := im.(*Image)
			if !ok {
				return nil, fmt.Errorf("bird: image for %s is %T, not a bird image", im.Name(), im)
			}
			bst, ok := st.(*State)
			if !ok {
				return nil, fmt.Errorf("bird: restore %s: state is %T, not a bird state", im.Name(), st)
			}
			return bim.Restore(bst)
		},
		DecodeCheckpoint: func(data []byte) (node.Checkpoint, error) {
			var cp Checkpoint
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err != nil {
				return nil, fmt.Errorf("bird: decode checkpoint: %w", err)
			}
			return &cp, nil
		},
		EncodeCanonical: func(cp node.Checkpoint) ([]byte, error) {
			bcp, ok := cp.(*Checkpoint)
			if !ok {
				return nil, fmt.Errorf("bird: checkpoint for %s is %T, not a bird checkpoint", cp.NodeName(), cp)
			}
			return encodeCanonical(bcp), nil
		},
		DecodeCanonical: func(payload []byte) (node.Checkpoint, error) {
			return decodeCanonical(payload)
		},
	})
}

// UpdateHook is the shared hook type through which the faults package injects
// programming errors into any backend's UPDATE handler.
type UpdateHook = node.UpdateHook

// RouterStats counts router activity. All counters are cumulative since the
// router was created (and survive checkpointing).
type RouterStats = node.RouterStats

// RouteEvent records one change of the best route for a prefix. The
// oscillation (policy conflict) checker consumes the sequence of events.
type RouteEvent = node.RouteEvent

// exploration carries the armed symbolic-input request.
type exploration struct {
	machine *concolic.Machine
	from    string
	pending bool
}

// Router is the emulated BGP router. It implements netem.Node so it can run
// both on the virtual-time emulator and on the TCP transport.
type Router struct {
	cfg      *Config
	sessions map[string]*session
	locRIB   *rib.LocRIB
	adjIn    map[string]*rib.AdjRIBIn
	adjOut   map[string]*rib.AdjRIBOut

	explore exploration
	// activeMachine is the concolic machine of the UPDATE currently being
	// processed (nil outside symbolic handling). Injected fault hooks use it
	// so that the branch conditions of the buggy code are recorded and can be
	// negated by the explorer, exactly as instrumented BIRD code would be.
	activeMachine *concolic.Machine
	hook          UpdateHook

	stats     RouterStats
	events    []RouteEvent
	panicked  bool
	lastPanic string
	started   bool
}

// New builds a router from its configuration and installs the locally
// originated routes into the Loc-RIB.
func New(cfg *Config) (*Router, error) {
	cfg = cfg.Clone()
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Router{
		cfg:      cfg,
		sessions: make(map[string]*session),
		locRIB:   rib.NewLocRIB(),
		adjIn:    make(map[string]*rib.AdjRIBIn),
		adjOut:   make(map[string]*rib.AdjRIBOut),
	}
	for _, n := range cfg.Neighbors {
		r.sessions[n.Name] = &session{
			peer:         n.Name,
			peerAS:       n.AS,
			state:        StateIdle,
			importPolicy: n.Import,
			exportPolicy: n.Export,
		}
		r.adjIn[n.Name] = rib.NewAdjRIBIn()
		r.adjOut[n.Name] = rib.NewAdjRIBOut()
	}
	r.originateNetworks()
	return r, nil
}

// MustNew is New for static configurations in tests and examples.
func MustNew(cfg *Config) *Router {
	r, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

func (r *Router) originateNetworks() {
	for _, p := range r.cfg.Networks {
		attrs := &bgp.PathAttributes{
			Origin:  bgp.OriginIGP,
			NextHop: uint32(r.cfg.RouterID),
		}
		route := &rib.Route{
			Prefix: p,
			Attrs:  attrs,
			Peer:   "",
			Local:  true,
		}
		r.locRIB.Update(nil, route)
		r.stats.RoutesOriginated++
	}
}

// Interface check: bird.Router is a full node.Router backend.
var _ node.Router = (*Router)(nil)

// ID implements netem.Node.
func (r *Router) ID() netem.NodeID { return netem.NodeID(r.cfg.Name) }

// Implementation implements node.Router.
func (r *Router) Implementation() string { return Implementation }

// TakeCheckpoint implements node.Router: it is Checkpoint behind the
// implementation-neutral interface.
func (r *Router) TakeCheckpoint() node.Checkpoint { return r.Checkpoint() }

// Config returns the router's configuration.
func (r *Router) Config() *Config { return r.cfg }

// LocRIB returns the router's Loc-RIB.
func (r *Router) LocRIB() *rib.LocRIB { return r.locRIB }

// AdjIn returns the Adj-RIB-In for a peer, or nil.
func (r *Router) AdjIn(peer string) *rib.AdjRIBIn { return r.adjIn[peer] }

// AdjOut returns the Adj-RIB-Out for a peer, or nil.
func (r *Router) AdjOut(peer string) *rib.AdjRIBOut { return r.adjOut[peer] }

// Stats returns a snapshot of the router counters.
func (r *Router) Stats() RouterStats { return r.stats }

// Events returns the best-route change log.
func (r *Router) Events() []RouteEvent { return r.events }

// Panicked reports whether the UPDATE handler crashed (directly or through an
// injected fault) and the crash reason.
func (r *Router) Panicked() (bool, string) { return r.panicked, r.lastPanic }

// Sessions returns a summary of every configured session.
func (r *Router) Sessions() []SessionInfo {
	var out []SessionInfo
	for _, n := range r.cfg.Neighbors {
		s := r.sessions[n.Name]
		out = append(out, SessionInfo{
			Peer:                  s.peer,
			PeerAS:                s.peerAS,
			State:                 s.state,
			DownCount:             s.downCount,
			NotificationsSent:     s.notificationsSent,
			NotificationsReceived: s.notificationsReceived,
		})
	}
	return out
}

// SessionState returns the FSM state of the session with the named peer.
func (r *Router) SessionState(peer string) SessionState {
	if s := r.sessions[peer]; s != nil {
		return s.state
	}
	return StateIdle
}

// SetUpdateHook installs a (possibly fault-injecting) UPDATE hook.
func (r *Router) SetUpdateHook(h UpdateHook) { r.hook = h }

// ActiveMachine returns the concolic machine of the UPDATE currently being
// handled, or nil when processing is concrete. Fault hooks call it so their
// trigger conditions are recorded as negatable branch constraints.
func (r *Router) ActiveMachine() *concolic.Machine { return r.activeMachine }

// ExploreNextUpdate arms symbolic tracing: the next UPDATE received from the
// named peer is parsed under the machine, marking its NLRI and path-attribute
// fields symbolic, and the route-selection choice for its prefixes becomes a
// symbolic decision. This is how the DiCE orchestrator turns a cloned router
// into the subject of one concolic execution.
func (r *Router) ExploreNextUpdate(m *concolic.Machine, fromPeer string) {
	r.explore = exploration{machine: m, from: fromPeer, pending: true}
}

//
// netem.Node implementation
//

// Start implements netem.Node: it brings every configured session up by
// sending OPEN.
func (r *Router) Start(env netem.Env) {
	if r.started {
		return
	}
	r.started = true
	for _, n := range r.cfg.Neighbors {
		r.startSession(env, r.sessions[n.Name])
	}
}

func (r *Router) startSession(env netem.Env, s *session) {
	s.state = StateOpenSent
	r.send(env, s.peer, &bgp.Open{
		Version:  bgp.Version,
		AS:       r.cfg.AS,
		HoldTime: uint16(r.cfg.HoldTime / time.Second),
		RouterID: r.cfg.RouterID,
	})
	r.stats.OpensSent++
	env.SetTimer("retry/"+s.peer, r.cfg.ConnectRetry)
}

// HandleTimer implements netem.Node.
func (r *Router) HandleTimer(env netem.Env, name string) {
	switch {
	case len(name) > 6 && name[:6] == "retry/":
		peer := name[6:]
		s := r.sessions[peer]
		if s != nil && !s.established() {
			r.startSession(env, s)
		}
	case len(name) > 10 && name[:10] == "keepalive/":
		peer := name[10:]
		s := r.sessions[peer]
		if s != nil && s.established() && r.cfg.KeepaliveInterval > 0 {
			r.send(env, peer, &bgp.Keepalive{})
			r.stats.KeepalivesSent++
			env.SetTimer(name, r.cfg.KeepaliveInterval)
		}
	}
}

// HandleMessage implements netem.Node. Handler crashes (including those
// caused by injected programming errors) are contained and recorded rather
// than taking the whole emulation down, mirroring a daemon that crashes and
// gets flagged by its supervisor.
func (r *Router) HandleMessage(env netem.Env, from netem.NodeID, payload []byte) {
	defer func() {
		if rec := recover(); rec != nil {
			r.panicked = true
			r.lastPanic = fmt.Sprint(rec)
			r.stats.HandlerCrashes++
		}
	}()
	s := r.sessions[string(from)]
	if s == nil {
		return // message from an unconfigured neighbor: ignore
	}
	typ, body, err := bgp.ValidateHeader(payload)
	if err != nil {
		r.protocolError(env, s, err)
		return
	}
	switch typ {
	case bgp.MsgOpen:
		r.handleOpen(env, s, body)
	case bgp.MsgKeepalive:
		r.handleKeepalive(env, s)
	case bgp.MsgNotification:
		r.handleNotification(env, s, body)
	case bgp.MsgUpdate:
		if !s.established() {
			r.protocolError(env, s, &bgp.MessageError{Code: bgp.ErrFiniteStateMachine, Reason: "UPDATE outside Established"})
			return
		}
		r.handleUpdate(env, s, body)
	}
}

func (r *Router) handleOpen(env netem.Env, s *session, body []byte) {
	msg, err := bgp.Decode(append(openHeader(len(body)), body...))
	if err != nil {
		r.protocolError(env, s, err)
		return
	}
	open := msg.(*bgp.Open)
	if open.AS != s.peerAS&0xffff && open.AS != s.peerAS {
		r.protocolError(env, s, &bgp.MessageError{Code: bgp.ErrOpenMessage, Subcode: bgp.ErrSubBadPeerAS,
			Reason: fmt.Sprintf("expected AS %d, got %d", s.peerAS, open.AS)})
		return
	}
	s.peerRouterID = open.RouterID
	switch s.state {
	case StateIdle, StateOpenSent:
		// Collision handling is collapsed: reply with our OPEN if we had not
		// sent one, then confirm.
		if s.state == StateIdle {
			r.send(env, s.peer, &bgp.Open{
				Version:  bgp.Version,
				AS:       r.cfg.AS,
				HoldTime: uint16(r.cfg.HoldTime / time.Second),
				RouterID: r.cfg.RouterID,
			})
			r.stats.OpensSent++
		}
		r.send(env, s.peer, &bgp.Keepalive{})
		r.stats.KeepalivesSent++
		s.state = StateOpenConfirm
	case StateOpenConfirm, StateEstablished:
		// Duplicate OPEN: ignore.
	}
}

// openHeader rebuilds the wire header for an OPEN body so that the shared
// decoder can be reused for validation.
func openHeader(bodyLen int) []byte {
	hdr := make([]byte, bgp.HeaderLen)
	for i := 0; i < bgp.MarkerLen; i++ {
		hdr[i] = 0xff
	}
	total := bgp.HeaderLen + bodyLen
	hdr[16] = byte(total >> 8)
	hdr[17] = byte(total)
	hdr[18] = byte(bgp.MsgOpen)
	return hdr
}

func (r *Router) handleKeepalive(env netem.Env, s *session) {
	switch s.state {
	case StateOpenConfirm:
		s.state = StateEstablished
		env.CancelTimer("retry/" + s.peer)
		if r.cfg.KeepaliveInterval > 0 {
			env.SetTimer("keepalive/"+s.peer, r.cfg.KeepaliveInterval)
		}
		r.advertiseFullTable(env, s)
	case StateEstablished:
		// Refreshes the (disabled) hold timer; nothing to do.
	}
}

func (r *Router) handleNotification(env netem.Env, s *session, body []byte) {
	s.notificationsReceived++
	r.resetSession(env, s)
}

// protocolError sends a NOTIFICATION for the error and resets the session.
func (r *Router) protocolError(env netem.Env, s *session, err error) {
	r.stats.ParseErrors++
	if merr, ok := err.(*bgp.MessageError); ok {
		r.send(env, s.peer, merr.Notification())
	} else {
		r.send(env, s.peer, &bgp.Notification{Code: bgp.ErrCease})
	}
	s.notificationsSent++
	r.stats.NotificationsSent++
	r.resetSession(env, s)
}

// resetSession tears down the session: all routes learned from the peer are
// withdrawn (the "local session reset" whose system-wide consequences the
// paper calls out) and the session restarts after the retry timer.
func (r *Router) resetSession(env netem.Env, s *session) {
	if s.established() {
		r.stats.SessionResets++
	}
	s.state = StateIdle
	s.downCount++
	for _, route := range r.adjIn[s.peer].Routes() {
		r.adjIn[s.peer].Remove(route.Prefix)
		change := r.locRIB.Withdraw(nil, route.Prefix, s.peer)
		r.propagate(env, change, s.peer)
	}
	for _, route := range r.adjOut[s.peer].Routes() {
		r.adjOut[s.peer].Remove(route.Prefix)
	}
	env.SetTimer("retry/"+s.peer, r.cfg.ConnectRetry)
}

//
// UPDATE processing — the state-changing code DiCE focuses on.
//

func (r *Router) handleUpdate(env netem.Env, s *session, body []byte) {
	r.stats.UpdatesReceived++

	var m *concolic.Machine
	if r.explore.pending && r.explore.from == s.peer {
		m = r.explore.machine
		r.explore.pending = false
		r.stats.ExploredSymbolic++
	}
	r.activeMachine = m
	defer func() { r.activeMachine = nil }()

	u, err := bgp.ParseUpdateSym(m, "update", body)
	if err != nil {
		r.protocolError(env, s, err)
		return
	}

	if r.hook != nil {
		if herr := r.hook(r, s.peer, u); herr != nil {
			// The injected programming error "crashed" the handler.
			r.panicked = true
			r.lastPanic = herr.Error()
			r.stats.HandlerCrashes++
			r.stats.UpdatesHookDropped++
			return
		}
	}

	r.processWithdrawals(env, s, m, u)
	r.processAnnouncements(env, s, m, u)
}

func (r *Router) processWithdrawals(env netem.Env, s *session, m *concolic.Machine, u *bgp.Update) {
	for _, p := range u.Withdrawn {
		if !r.adjIn[s.peer].Remove(p) {
			continue
		}
		change := r.locRIB.Withdraw(m, p, s.peer)
		r.propagate(env, change, s.peer)
	}
}

func (r *Router) processAnnouncements(env netem.Env, s *session, m *concolic.Machine, u *bgp.Update) {
	if len(u.NLRI) == 0 || u.Attrs == nil {
		return
	}
	for i, p := range u.NLRI {
		attrs := u.Attrs.Clone()

		// eBGP loop prevention: a path that already contains our AS is
		// ignored.
		if attrs.HasASLoop(r.cfg.AS) {
			r.stats.ASLoopsIgnored++
			continue
		}

		route := &rib.Route{
			Prefix:       p,
			Attrs:        attrs,
			Peer:         s.peer,
			PeerAS:       s.peerAS,
			PeerRouterID: s.peerRouterID,
			EBGP:         s.peerAS != r.cfg.AS,
		}
		if m != nil && u.Sym != nil {
			sym := rib.SymFromUpdate(u.Sym)
			if i < len(u.Sym.NLRI) {
				sym.PrefixLen = u.Sym.NLRI[i].Len
				sym.PrefixAddr = u.Sym.NLRI[i].Addr
				sym.HasPrefix = true
			}
			route.Sym = sym
		}

		// LOCAL_PREF is an iBGP attribute: on eBGP sessions the received
		// value is discarded and import policy assigns a fresh one. The
		// symbolic shadow must be scrubbed with it, or exploration reasons
		// about a LOCAL_PREF the router concretely ignores and derives
		// detections no concrete replay can reproduce.
		if route.EBGP {
			route.Attrs.LocalPref = nil
			if route.Sym != nil {
				route.Sym.HasLocalPref = false
			}
		}

		// Import policy (interpreted; constraints recorded when tracing).
		if pol := r.cfg.Policies[s.importPolicy]; pol != nil || s.importPolicy != "" {
			res := pol.Apply(m, route)
			if res == policy.ResultReject {
				r.stats.ImportRejected++
				// Treat-as-withdraw for any previously accepted route.
				if r.adjIn[s.peer].Remove(p) {
					change := r.locRIB.Withdraw(m, p, s.peer)
					r.propagate(env, change, s.peer)
				}
				continue
			}
		}

		// The paper treats "is this route the locally most preferred one" as
		// a symbolic condition. Under exploration the choice byte lets the
		// explorer force the route to lose the selection, exercising the
		// other outcome of the decision process (as a configuration change
		// demoting the route would).
		if m != nil {
			preferred := m.Choice("preferred/"+p.String(), true)
			if !m.Branch("bird/route.preferred", preferred) {
				route.Attrs.SetLocalPref(0)
				if route.Sym != nil {
					route.Sym.HasLocalPref = false
				}
			}
		}

		r.adjIn[s.peer].Set(route.Clone())
		change := r.locRIB.Update(m, route)
		r.propagate(env, change, s.peer)
	}
}

// propagate reacts to a best-route change: it records the event and
// re-advertises (or withdraws) the prefix to every established neighbor
// according to export policy.
func (r *Router) propagate(env netem.Env, change rib.BestChange, learnedFrom string) {
	if !change.Changed {
		return
	}
	r.stats.BestChanges++
	r.events = append(r.events, RouteEvent{
		At:     env.Now(),
		Prefix: change.Prefix,
		OldVia: routeVia(change.Old),
		NewVia: routeVia(change.New),
	})
	for _, n := range r.cfg.Neighbors {
		s := r.sessions[n.Name]
		if !s.established() {
			continue
		}
		if n.Name == learnedFrom {
			continue // never echo back to the peer the change came from
		}
		r.advertiseBest(env, s, change.Prefix, change.New)
	}
}

// advertiseBest sends the export-policy view of the best route for one prefix
// to one neighbor, or a withdrawal when the route is gone or filtered.
func (r *Router) advertiseBest(env netem.Env, s *session, p bgp.Prefix, best *rib.Route) {
	withdraw := func() {
		if r.adjOut[s.peer].Remove(p) {
			r.send(env, s.peer, &bgp.Update{Withdrawn: []bgp.Prefix{p}})
			r.stats.WithdrawalsSent++
			r.stats.UpdatesSent++
		}
	}
	if best == nil {
		withdraw()
		return
	}
	// Do not advertise a route back to the peer it was learned from.
	if best.Peer == s.peer {
		withdraw()
		return
	}
	export := best.Clone()
	if pol := r.cfg.Policies[s.exportPolicy]; pol != nil || s.exportPolicy != "" {
		if pol.Apply(nil, export) == policy.ResultReject {
			r.stats.ExportRejected++
			withdraw()
			return
		}
	}
	attrs := export.Attrs
	attrs.PrependAS(r.cfg.AS, 1)
	attrs.NextHop = uint32(r.cfg.RouterID)
	// LOCAL_PREF is not carried on eBGP sessions.
	if s.peerAS != r.cfg.AS {
		attrs.LocalPref = nil
	}
	out := &rib.Route{Prefix: p, Attrs: attrs, Peer: s.peer}
	r.adjOut[s.peer].Set(out)
	r.send(env, s.peer, &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{p}})
	r.stats.UpdatesSent++
}

// advertiseFullTable sends the current best route of every prefix to a peer
// whose session just reached Established (initial table exchange).
func (r *Router) advertiseFullTable(env netem.Env, s *session) {
	for _, p := range r.locRIB.Prefixes() {
		r.advertiseBest(env, s, p, r.locRIB.Best(p))
	}
}

func (r *Router) send(env netem.Env, peer string, msg bgp.Message) {
	env.Send(netem.NodeID(peer), bgp.Encode(msg))
}

func routeVia(r *rib.Route) string {
	if r == nil {
		return ""
	}
	if r.Local {
		return "local"
	}
	return r.Peer
}

// CheckInvariants runs the router's local state checks and returns a list of
// violations. These are the checks whose boolean verdicts cross domain
// boundaries through the narrow information-sharing interface; the underlying
// state stays private to the node.
func (r *Router) CheckInvariants() []string {
	var violations []string
	if r.panicked {
		violations = append(violations, fmt.Sprintf("handler crashed: %s", r.lastPanic))
	}
	for _, best := range r.locRIB.BestRoutes() {
		if best.Attrs == nil {
			violations = append(violations, fmt.Sprintf("best route for %s has nil attributes", best.Prefix))
			continue
		}
		if !best.Local && best.Attrs.HasASLoop(r.cfg.AS) {
			violations = append(violations, fmt.Sprintf("best route for %s contains own AS %d in path", best.Prefix, r.cfg.AS))
		}
		if !best.Prefix.Valid() {
			violations = append(violations, fmt.Sprintf("best route for invalid prefix %s", best.Prefix))
		}
		if !best.Local {
			in := r.adjIn[best.Peer]
			if in == nil || in.Get(best.Prefix) == nil {
				violations = append(violations, fmt.Sprintf("best route for %s via %s missing from Adj-RIB-In", best.Prefix, best.Peer))
			}
		}
	}
	for peer, out := range r.adjOut {
		s := r.sessions[peer]
		if s == nil || s.established() {
			continue
		}
		if out.Len() > 0 {
			violations = append(violations, fmt.Sprintf("Adj-RIB-Out for down session %s is not empty", peer))
		}
	}
	r.stats.InvariantFailures = len(violations)
	return violations
}
