package bird

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// buildLine builds a line topology R1-R2-...-Rn of routers with accept-all
// policies, each originating 10.i.0.0/16, and returns the network plus the
// routers by name.
func buildLine(t *testing.T, n int) (*netem.Network, map[string]*Router) {
	t.Helper()
	net := netem.New(netem.Options{Seed: 1})
	routers := make(map[string]*Router)
	name := func(i int) string { return "R" + string(rune('0'+i)) }
	for i := 1; i <= n; i++ {
		cfg := &Config{
			Name:     name(i),
			AS:       bgp.ASN(65000 + i),
			RouterID: bgp.RouterID(i),
			Networks: []bgp.Prefix{{Addr: uint32(10)<<24 | uint32(i)<<16, Len: 16}},
			Policies: map[string]*policy.Policy{"ALL": policy.AcceptAll("ALL")},
		}
		if i > 1 {
			cfg.Neighbors = append(cfg.Neighbors, NeighborConfig{Name: name(i - 1), AS: bgp.ASN(65000 + i - 1), Import: "ALL", Export: "ALL"})
		}
		if i < n {
			cfg.Neighbors = append(cfg.Neighbors, NeighborConfig{Name: name(i + 1), AS: bgp.ASN(65000 + i + 1), Import: "ALL", Export: "ALL"})
		}
		r := MustNew(cfg)
		routers[cfg.Name] = r
		net.AddNode(r)
	}
	for i := 1; i < n; i++ {
		net.Connect(netem.NodeID(name(i)), netem.NodeID(name(i+1)), netem.LinkConfig{Delay: 5 * time.Millisecond})
	}
	return net, routers
}

func prefixOf(i int) bgp.Prefix {
	return bgp.Prefix{Addr: uint32(10)<<24 | uint32(i)<<16, Len: 16}
}

func TestTwoRoutersConverge(t *testing.T) {
	net, routers := buildLine(t, 2)
	net.RunQuiescent(0)

	r1, r2 := routers["R1"], routers["R2"]
	if r1.SessionState("R2") != StateEstablished || r2.SessionState("R1") != StateEstablished {
		t.Fatalf("sessions not established: %v / %v", r1.SessionState("R2"), r2.SessionState("R1"))
	}
	if r1.LocRIB().Best(prefixOf(2)) == nil {
		t.Errorf("R1 did not learn R2's prefix")
	}
	best := r2.LocRIB().Best(prefixOf(1))
	if best == nil {
		t.Fatalf("R2 did not learn R1's prefix")
	}
	if len(best.Attrs.ASPath) != 1 || best.Attrs.ASPath[0] != 65001 {
		t.Errorf("AS path = %v, want [65001]", best.Attrs.ASPath)
	}
	if best.Peer != "R1" || !best.EBGP {
		t.Errorf("best route metadata wrong: %+v", best)
	}
}

func TestLinePropagationASPath(t *testing.T) {
	net, routers := buildLine(t, 4)
	net.RunQuiescent(0)
	r4 := routers["R4"]
	best := r4.LocRIB().Best(prefixOf(1))
	if best == nil {
		t.Fatalf("R4 did not learn R1's prefix across the line")
	}
	want := []bgp.ASN{65003, 65002, 65001}
	if len(best.Attrs.ASPath) != len(want) {
		t.Fatalf("AS path = %v, want %v", best.Attrs.ASPath, want)
	}
	for i := range want {
		if best.Attrs.ASPath[i] != want[i] {
			t.Fatalf("AS path = %v, want %v", best.Attrs.ASPath, want)
		}
	}
	// Every router knows every prefix.
	for name, r := range routers {
		for i := 1; i <= 4; i++ {
			if r.LocRIB().Best(prefixOf(i)) == nil {
				t.Errorf("%s missing prefix %s", name, prefixOf(i))
			}
		}
	}
}

func TestImportPolicyRejects(t *testing.T) {
	net, routers := buildLine(t, 2)
	// R2 rejects R1's prefix on import.
	pol, err := policy.ParsePolicy(`policy BLOCK { if prefix = 10.1.0.0/16 { reject } default accept }`)
	if err != nil {
		t.Fatal(err)
	}
	r2 := routers["R2"]
	r2.cfg.Policies["BLOCK"] = pol
	r2.cfg.Neighbors[0].Import = "BLOCK"
	r2.sessions["R1"].importPolicy = "BLOCK"

	net.RunQuiescent(0)
	if r2.LocRIB().Best(prefixOf(1)) != nil {
		t.Errorf("rejected prefix must not enter the Loc-RIB")
	}
	if r2.Stats().ImportRejected == 0 {
		t.Errorf("ImportRejected counter not incremented")
	}
	// The other direction still works.
	if routers["R1"].LocRIB().Best(prefixOf(2)) == nil {
		t.Errorf("R1 should still learn R2's prefix")
	}
}

func TestExportPolicyFilters(t *testing.T) {
	net, routers := buildLine(t, 3)
	// R2 refuses to export R1's prefix to R3.
	pol, err := policy.ParsePolicy(`policy NOEXPORT { if prefix = 10.1.0.0/16 { reject } default accept }`)
	if err != nil {
		t.Fatal(err)
	}
	r2 := routers["R2"]
	r2.cfg.Policies["NOEXPORT"] = pol
	for i := range r2.cfg.Neighbors {
		if r2.cfg.Neighbors[i].Name == "R3" {
			r2.cfg.Neighbors[i].Export = "NOEXPORT"
		}
	}
	r2.sessions["R3"].exportPolicy = "NOEXPORT"

	net.RunQuiescent(0)
	if routers["R3"].LocRIB().Best(prefixOf(1)) != nil {
		t.Errorf("export-filtered prefix must not reach R3")
	}
	if routers["R3"].LocRIB().Best(prefixOf(2)) == nil {
		t.Errorf("unfiltered prefix should reach R3")
	}
	if r2.Stats().ExportRejected == 0 {
		t.Errorf("ExportRejected counter not incremented")
	}
}

func TestWithdrawPropagates(t *testing.T) {
	net, routers := buildLine(t, 3)
	net.RunQuiescent(0)
	if routers["R3"].LocRIB().Best(prefixOf(1)) == nil {
		t.Fatalf("precondition: R3 knows R1's prefix")
	}
	// R1 withdraws its prefix: inject the withdrawal toward R2 as if R1 sent it.
	withdraw := &bgp.Update{Withdrawn: []bgp.Prefix{prefixOf(1)}}
	net.InjectMessage("R1", "R2", bgp.Encode(withdraw), 0)
	net.RunQuiescent(0)

	if routers["R2"].LocRIB().Best(prefixOf(1)) != nil {
		t.Errorf("R2 should have removed the withdrawn prefix")
	}
	if routers["R3"].LocRIB().Best(prefixOf(1)) != nil {
		t.Errorf("withdrawal should propagate to R3")
	}
	if routers["R2"].Stats().WithdrawalsSent == 0 {
		t.Errorf("R2 should have sent a withdrawal")
	}
}

func TestSessionResetWithdrawsRoutes(t *testing.T) {
	net, routers := buildLine(t, 3)
	net.RunQuiescent(0)
	// A NOTIFICATION from R1 resets R2's session and the learned routes must
	// be withdrawn system-wide (the "session reset" emergent behaviour).
	notif := &bgp.Notification{Code: bgp.ErrCease}
	net.InjectMessage("R1", "R2", bgp.Encode(notif), 0)
	net.Run(net.Now() + 2*time.Second) // bounded: the retry timer re-opens the session later

	r2 := routers["R2"]
	if r2.SessionState("R1") == StateEstablished {
		t.Errorf("session should have left Established after NOTIFICATION")
	}
	found := false
	for _, s := range r2.Sessions() {
		if s.Peer == "R1" && s.DownCount > 0 && s.NotificationsReceived > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("session counters not updated: %+v", r2.Sessions())
	}
	if r2.LocRIB().Best(prefixOf(1)) != nil {
		t.Errorf("routes learned from the reset session must be withdrawn")
	}
}

func TestMalformedUpdateTriggersNotification(t *testing.T) {
	net, routers := buildLine(t, 2)
	net.RunQuiescent(0)
	// Build an UPDATE with an invalid ORIGIN value.
	attrs := &bgp.PathAttributes{Origin: 7, ASPath: []bgp.ASN{65001}, NextHop: 1}
	u := &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.0.0.0/8")}}
	net.InjectMessage("R1", "R2", bgp.Encode(u), 0)
	net.Run(net.Now() + time.Second)

	r2 := routers["R2"]
	if r2.Stats().ParseErrors == 0 {
		t.Errorf("malformed UPDATE should count as a parse error")
	}
	if r2.Stats().NotificationsSent == 0 {
		t.Errorf("router should notify the peer about the malformed UPDATE")
	}
	if r2.LocRIB().Best(bgp.MustParsePrefix("99.0.0.0/8")) != nil {
		t.Errorf("malformed UPDATE must not install a route")
	}
}

func TestASLoopIgnored(t *testing.T) {
	net, routers := buildLine(t, 2)
	net.RunQuiescent(0)
	// An announcement whose AS_PATH already contains R2's AS must be ignored.
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001, 65002}, NextHop: 1}
	u := &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.0.0.0/8")}}
	net.InjectMessage("R1", "R2", bgp.Encode(u), 0)
	net.RunQuiescent(0)
	if routers["R2"].LocRIB().Best(bgp.MustParsePrefix("99.0.0.0/8")) != nil {
		t.Errorf("looped announcement must be ignored")
	}
	if routers["R2"].Stats().ASLoopsIgnored == 0 {
		t.Errorf("ASLoopsIgnored counter not incremented")
	}
}

func TestBestRouteEventsRecorded(t *testing.T) {
	net, routers := buildLine(t, 2)
	net.RunQuiescent(0)
	if len(routers["R2"].Events()) == 0 {
		t.Errorf("best-route changes should be recorded as events")
	}
	if routers["R2"].Stats().BestChanges == 0 {
		t.Errorf("BestChanges counter not incremented")
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	net, routers := buildLine(t, 3)
	net.RunQuiescent(0)
	r2 := routers["R2"]

	cp := r2.Checkpoint()
	restored, err := Restore(cp)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// Same prefixes, same bests, same session states, same counters.
	origPrefixes := r2.LocRIB().Prefixes()
	newPrefixes := restored.LocRIB().Prefixes()
	if len(origPrefixes) != len(newPrefixes) {
		t.Fatalf("prefix count differs: %d vs %d", len(origPrefixes), len(newPrefixes))
	}
	for i, p := range origPrefixes {
		if newPrefixes[i] != p {
			t.Fatalf("prefix %d differs: %s vs %s", i, p, newPrefixes[i])
		}
		ob, nb := r2.LocRIB().Best(p), restored.LocRIB().Best(p)
		if (ob == nil) != (nb == nil) {
			t.Fatalf("best for %s differs in presence", p)
		}
		if ob != nil && (ob.Peer != nb.Peer || ob.Attrs.PathLen() != nb.Attrs.PathLen()) {
			t.Errorf("best for %s differs: %v vs %v", p, ob, nb)
		}
	}
	if restored.SessionState("R1") != r2.SessionState("R1") {
		t.Errorf("session state not restored")
	}
	if restored.Stats().UpdatesReceived != r2.Stats().UpdatesReceived {
		t.Errorf("stats not restored")
	}
	if len(restored.Events()) != len(r2.Events()) {
		t.Errorf("events not restored")
	}
}

func TestCheckpointRestoreFromTextOnly(t *testing.T) {
	net, routers := buildLine(t, 2)
	net.RunQuiescent(0)
	cp := routers["R2"].Checkpoint()
	cp.cfg = nil // simulate a checkpoint that crossed a process boundary
	restored, err := Restore(cp)
	if err != nil {
		t.Fatalf("Restore from text: %v", err)
	}
	if restored.LocRIB().Best(prefixOf(1)) == nil {
		t.Errorf("restored router lost its RIB")
	}
}

func TestCloneIsolation(t *testing.T) {
	net, routers := buildLine(t, 2)
	net.RunQuiescent(0)
	r2 := routers["R2"]
	clone, err := r2.Clone()
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	// Drive the clone with an extra announcement on an isolated network; the
	// original must not observe it.
	cloneNet := netem.New(netem.Options{Seed: 9})
	cloneNet.AddNode(clone)
	stub := MustNew(&Config{Name: "R1", AS: 65001, RouterID: 99,
		Policies: map[string]*policy.Policy{}})
	_ = stub
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
	u := &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.0.0.0/8")}}
	cloneNet.InjectMessage("R1", "R2", bgp.Encode(u), 0)
	cloneNet.RunQuiescent(0)

	if clone.LocRIB().Best(bgp.MustParsePrefix("99.0.0.0/8")) == nil {
		t.Fatalf("clone should process the injected update")
	}
	if r2.LocRIB().Best(bgp.MustParsePrefix("99.0.0.0/8")) != nil {
		t.Errorf("exploration on the clone leaked into the original router")
	}
}

func TestExploreNextUpdateRecordsConstraints(t *testing.T) {
	net, routers := buildLine(t, 2)
	net.RunQuiescent(0)
	r2 := routers["R2"]

	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
	attrs.SetMED(17)
	u := &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.0.0.0/8")}}
	body := u.EncodeBody()

	in := concolic.NewInput("update", body)
	m := concolic.NewMachine(in, concolic.MachineOptions{})
	r2.ExploreNextUpdate(m, "R1")

	net.InjectMessage("R1", "R2", bgp.Encode(u), 0)
	net.RunQuiescent(0)

	if r2.Stats().ExploredSymbolic != 1 {
		t.Fatalf("ExploredSymbolic = %d, want 1", r2.Stats().ExploredSymbolic)
	}
	if len(m.Path()) == 0 {
		t.Fatalf("symbolic execution recorded no branches")
	}
	for _, br := range m.Path() {
		if !br.Cond.EvalBool(m.Assignment()) {
			t.Errorf("recorded branch inconsistent with concrete execution: %s", br.Site)
		}
	}
	// Only the armed update is symbolic; a second injection is concrete.
	net.InjectMessage("R1", "R2", bgp.Encode(u), 0)
	net.RunQuiescent(0)
	if r2.Stats().ExploredSymbolic != 1 {
		t.Errorf("only the armed UPDATE should be explored symbolically")
	}
}

func TestUpdateHookSimulatesCrash(t *testing.T) {
	net, routers := buildLine(t, 2)
	r2 := routers["R2"]
	r2.SetUpdateHook(func(r node.HookContext, from string, u *bgp.Update) error {
		for _, p := range u.NLRI {
			if p.Len == 24 {
				return errors.New("injected bug: /24 announcements crash the handler")
			}
		}
		return nil
	})
	net.RunQuiescent(0)
	if crashed, _ := r2.Panicked(); crashed {
		t.Fatalf("hook should not fire for /16 announcements")
	}
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
	u := &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.0.0.0/24")}}
	net.InjectMessage("R1", "R2", bgp.Encode(u), 0)
	net.RunQuiescent(0)
	crashed, reason := r2.Panicked()
	if !crashed || !strings.Contains(reason, "injected bug") {
		t.Errorf("hook crash not recorded: %v %q", crashed, reason)
	}
	if r2.Stats().HandlerCrashes == 0 {
		t.Errorf("HandlerCrashes counter not incremented")
	}
	if len(r2.CheckInvariants()) == 0 {
		t.Errorf("a crashed handler must show up as an invariant violation")
	}
}

func TestInvariantsCleanAfterConvergence(t *testing.T) {
	net, routers := buildLine(t, 3)
	net.RunQuiescent(0)
	for name, r := range routers {
		if v := r.CheckInvariants(); len(v) != 0 {
			t.Errorf("%s invariant violations after clean convergence: %v", name, v)
		}
	}
}

func TestKeepalivesWhenEnabled(t *testing.T) {
	net := netem.New(netem.Options{Seed: 1})
	mk := func(name string, as bgp.ASN, id bgp.RouterID, peer string, peerAS bgp.ASN) *Router {
		return MustNew(&Config{
			Name: name, AS: as, RouterID: id,
			KeepaliveInterval: 500 * time.Millisecond,
			Neighbors:         []NeighborConfig{{Name: peer, AS: peerAS}},
			Policies:          map[string]*policy.Policy{},
		})
	}
	r1 := mk("A", 65001, 1, "B", 65002)
	r2 := mk("B", 65002, 2, "A", 65001)
	net.AddNode(r1)
	net.AddNode(r2)
	net.Connect("A", "B", netem.LinkConfig{Delay: time.Millisecond})
	net.Run(3 * time.Second)
	if r1.Stats().KeepalivesSent < 3 {
		t.Errorf("periodic keepalives not sent: %d", r1.Stats().KeepalivesSent)
	}
	if r1.SessionState("B") != StateEstablished {
		t.Errorf("session should be established")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []*Config{
		{Name: "", AS: 1, RouterID: 1},
		{Name: "A", AS: 0, RouterID: 1},
		{Name: "A", AS: 1, RouterID: 0},
		{Name: "A", AS: 1, RouterID: 1, Neighbors: []NeighborConfig{{Name: "B", AS: 2, Import: "missing"}}},
		{Name: "A", AS: 1, RouterID: 1, Neighbors: []NeighborConfig{{Name: "B", AS: 2}, {Name: "B", AS: 3}}},
		{Name: "A", AS: 1, RouterID: 1, Neighbors: []NeighborConfig{{Name: "", AS: 2}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	good := &Config{Name: "A", AS: 1, RouterID: 1,
		Networks:  []bgp.Prefix{bgp.MustParsePrefix("10.0.0.0/8")},
		Neighbors: []NeighborConfig{{Name: "B", AS: 2}},
		Policies:  map[string]*policy.Policy{}}
	r, err := New(good)
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if r.Config().Neighbor("B") == nil || r.Config().Neighbor("Z") != nil {
		t.Errorf("Neighbor lookup broken")
	}
	if r.LocRIB().Len() != 1 {
		t.Errorf("local network not originated")
	}
}

func TestSessionStateString(t *testing.T) {
	for _, s := range []SessionState{StateIdle, StateOpenSent, StateOpenConfirm, StateEstablished} {
		if s.String() == "" {
			t.Errorf("empty state name for %d", s)
		}
	}
}
