package bird

import (
	"strings"
	"time"

	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/node"
)

// Serializable record forms are shared across backends through package node.
type (
	// RouteRecord is the serializable form of one RIB entry.
	RouteRecord = node.RouteRecord
	// SessionRecord is the serializable form of one session's state.
	SessionRecord = node.SessionRecord
	// EventRecord is the serializable form of a RouteEvent.
	EventRecord = node.EventRecord
)

// Checkpoint is a lightweight checkpoint of one router: its configuration,
// session states, RIB contents and counters. It contains only plain data and
// can be serialized (the checkpoint package wraps it with gob), cloned, and
// restored into a fresh Router that behaves identically from that state
// onward — which is exactly what DiCE's exploration needs. The configuration
// travels in bird's dialect: the BIRD-filter policy syntax of PoliciesText.
type Checkpoint struct {
	Name              string
	AS                uint32
	RouterID          uint32
	Networks          []string
	Neighbors         []NeighborConfig
	PoliciesText      string
	HoldTime          time.Duration
	KeepaliveInterval time.Duration
	ConnectRetry      time.Duration

	Sessions []SessionRecord
	AdjIn    node.PeerRouteMap
	LocRIB   []RouteRecord
	AdjOut   node.PeerRouteMap

	Stats     RouterStats
	Events    []EventRecord
	Panicked  bool
	LastPanic string
	Started   bool

	// cfg keeps the in-process configuration (with its parsed policies) so
	// that Restore within the same process does not have to re-parse
	// PoliciesText. It is intentionally unexported: a checkpoint that crossed
	// a process boundary restores from the textual form.
	cfg *Config
}

// NodeName implements node.Checkpoint.
func (cp *Checkpoint) NodeName() string { return cp.Name }

// Implementation implements node.Checkpoint.
func (cp *Checkpoint) Implementation() string { return Implementation }

// Checkpoint captures the router's current state.
func (r *Router) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Name:              r.cfg.Name,
		AS:                uint32(r.cfg.AS),
		RouterID:          uint32(r.cfg.RouterID),
		Neighbors:         append([]NeighborConfig(nil), r.cfg.Neighbors...),
		HoldTime:          r.cfg.HoldTime,
		KeepaliveInterval: r.cfg.KeepaliveInterval,
		ConnectRetry:      r.cfg.ConnectRetry,
		AdjIn:             make(map[string][]RouteRecord),
		AdjOut:            make(map[string][]RouteRecord),
		Stats:             r.stats,
		Panicked:          r.panicked,
		LastPanic:         r.lastPanic,
		Started:           r.started,
		cfg:               r.cfg,
	}
	for _, p := range r.cfg.Networks {
		cp.Networks = append(cp.Networks, p.String())
	}
	var policies []string
	for _, name := range sortedPolicyNames(r.cfg.Policies) {
		policies = append(policies, r.cfg.Policies[name].String())
	}
	cp.PoliciesText = strings.Join(policies, "\n")

	for _, n := range r.cfg.Neighbors {
		s := r.sessions[n.Name]
		cp.Sessions = append(cp.Sessions, SessionRecord{
			Peer:                  s.peer,
			PeerAS:                uint32(s.peerAS),
			State:                 int(s.state),
			PeerRouterID:          uint32(s.peerRouterID),
			DownCount:             s.downCount,
			NotificationsSent:     s.notificationsSent,
			NotificationsReceived: s.notificationsReceived,
		})
		for _, route := range r.adjIn[n.Name].Routes() {
			cp.AdjIn[n.Name] = append(cp.AdjIn[n.Name], node.RecordFromRoute(route))
		}
		for _, route := range r.adjOut[n.Name].Routes() {
			cp.AdjOut[n.Name] = append(cp.AdjOut[n.Name], node.RecordFromRoute(route))
		}
	}
	for _, p := range r.locRIB.Prefixes() {
		for _, cand := range r.locRIB.Candidates(p) {
			cp.LocRIB = append(cp.LocRIB, node.RecordFromRoute(cand))
		}
	}
	for _, ev := range r.events {
		cp.Events = append(cp.Events, EventRecord{
			AtNanos: int64(ev.At),
			Prefix:  ev.Prefix.String(),
			OldVia:  ev.OldVia,
			NewVia:  ev.NewVia,
		})
	}
	return cp
}

func sortedPolicyNames(m map[string]*policy.Policy) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return names
}

// Restore builds a fresh Router from a checkpoint. The router resumes with
// identical configuration, session states, RIB contents and counters; timers
// are re-armed lazily by the next Start or session event.
//
// Restore is the cold path: every call re-validates the configuration
// (re-parsing the textual policy form when the checkpoint crossed a process
// boundary) and re-decodes every route record. Callers restoring many clones
// of the same snapshot should build an Image and a State once (ImageOf,
// DecodeState — or a checkpoint.Store for whole snapshots) and restore onto
// those instead.
func Restore(cp *Checkpoint) (*Router, error) {
	im, err := ImageOf(cp)
	if err != nil {
		return nil, err
	}
	st, err := DecodeState(cp)
	if err != nil {
		return nil, err
	}
	return im.Restore(st)
}

// Clone returns an isolated deep copy of the router by checkpointing and
// restoring it. The clone shares no mutable state with the original, which
// gives DiCE the isolation guarantee it needs to explore without perturbing
// the deployed node.
func (r *Router) Clone() (*Router, error) {
	return Restore(r.Checkpoint())
}
