package bird

import (
	"fmt"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checkpoint/codec"
)

// This file is bird's canonical checkpoint payload: the deterministic binary
// form the checkpoint layer content-addresses and ships. The field order is
// the Checkpoint struct's; everything map-shaped travels sorted, so identical
// router state always encodes to identical bytes — the property the
// content-addressed store, the ring's byte-level delta accounting and the
// distributed shard patches are built on.

// encodeCanonical serializes a checkpoint into the codec payload (the body
// checkpoint.EncodeNode frames with the codec header and implementation tag).
func encodeCanonical(cp *Checkpoint) []byte {
	w := codec.NewWriter()
	w.String(cp.Name)
	w.Uvarint(uint64(cp.AS))
	w.Uvarint(uint64(cp.RouterID))
	codec.PutStrings(w, cp.Networks)
	w.Uvarint(uint64(len(cp.Neighbors)))
	for i := range cp.Neighbors {
		n := &cp.Neighbors[i]
		w.String(n.Name)
		w.Uvarint(uint64(n.AS))
		w.String(n.Import)
		w.String(n.Export)
	}
	w.String(cp.PoliciesText)
	w.Varint(int64(cp.HoldTime))
	w.Varint(int64(cp.KeepaliveInterval))
	w.Varint(int64(cp.ConnectRetry))
	codec.PutSessionRecords(w, cp.Sessions)
	codec.PutPeerRouteMap(w, cp.AdjIn)
	codec.PutRouteRecords(w, cp.LocRIB)
	codec.PutPeerRouteMap(w, cp.AdjOut)
	codec.PutStats(w, cp.Stats)
	codec.PutEventRecords(w, cp.Events)
	w.Bool(cp.Panicked)
	w.String(cp.LastPanic)
	w.Bool(cp.Started)
	return w.Bytes()
}

// decodeCanonical parses a canonical payload back into a checkpoint. The
// result has no in-process config (like any checkpoint that crossed a
// process boundary); restoring re-parses the textual policy form.
func decodeCanonical(payload []byte) (*Checkpoint, error) {
	r := codec.NewReader(payload)
	cp := &Checkpoint{
		Name:     r.String(),
		AS:       uint32(r.Uvarint()),
		RouterID: uint32(r.Uvarint()),
		Networks: codec.Strings(r),
	}
	if n := r.Count(); r.Err() == nil && n > 0 {
		cp.Neighbors = make([]NeighborConfig, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			cp.Neighbors = append(cp.Neighbors, NeighborConfig{
				Name:   r.String(),
				AS:     bgp.ASN(r.Uvarint()),
				Import: r.String(),
				Export: r.String(),
			})
		}
	}
	cp.PoliciesText = r.String()
	cp.HoldTime = time.Duration(r.Varint())
	cp.KeepaliveInterval = time.Duration(r.Varint())
	cp.ConnectRetry = time.Duration(r.Varint())
	cp.Sessions = codec.SessionRecords(r)
	cp.AdjIn = codec.PeerRouteMap(r)
	cp.LocRIB = codec.RouteRecords(r)
	cp.AdjOut = codec.PeerRouteMap(r)
	cp.Stats = codec.Stats(r)
	cp.Events = codec.EventRecords(r)
	cp.Panicked = r.Bool()
	cp.LastPanic = r.String()
	cp.Started = r.Bool()
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("bird: decode canonical checkpoint: %w", err)
	}
	return cp, nil
}
