package bird

import (
	"fmt"

	"github.com/dice-project/dice/internal/bgp"
)

// SessionState is the BGP finite state machine state of one neighbor session
// (RFC 4271 §8). The emulated transport has no separate TCP connection phase,
// so Connect and Active collapse into Idle/OpenSent.
type SessionState int

// Session states.
const (
	StateIdle SessionState = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

// String renders the state name.
func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateOpenSent:
		return "OpenSent"
	case StateOpenConfirm:
		return "OpenConfirm"
	case StateEstablished:
		return "Established"
	}
	return fmt.Sprintf("SessionState(%d)", int(s))
}

// session is the per-neighbor runtime state.
type session struct {
	peer         string
	peerAS       bgp.ASN
	state        SessionState
	peerRouterID bgp.RouterID
	importPolicy string
	exportPolicy string
	// downCount counts transitions out of Established (session resets), one
	// of the emergent-behaviour signals the paper mentions.
	downCount int
	// notificationsSent / Received count protocol errors on this session.
	notificationsSent     int
	notificationsReceived int
}

func (s *session) established() bool { return s.state == StateEstablished }

// clone copies the session state.
func (s *session) clone() *session {
	out := *s
	return &out
}

// SessionInfo is the externally visible summary of one session, used by
// checkers and reports.
type SessionInfo struct {
	Peer                  string
	PeerAS                bgp.ASN
	State                 SessionState
	DownCount             int
	NotificationsSent     int
	NotificationsReceived int
}
