package bird

import (
	"reflect"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
)

// TestConfigPrivacyCovers locks the privacy contract to the struct: every
// Config field must carry a deliberate classification, so adding a field
// without deciding whether it may cross a domain boundary fails here.
func TestConfigPrivacyCovers(t *testing.T) {
	classes := ConfigPrivacy()
	typ := reflect.TypeOf(Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := classes[name]; !ok {
			t.Errorf("Config field %s has no privacy classification — classify it in ConfigPrivacy", name)
		}
	}
	for name := range classes {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("ConfigPrivacy classifies nonexistent field %s", name)
		}
	}
}

// TestConfigRedacted proves the redacted projection keeps exactly the
// PrivacyShared fields and zeroes everything classified private.
func TestConfigRedacted(t *testing.T) {
	cfg := &Config{
		Name:     "R1",
		AS:       65001,
		RouterID: 1,
		Networks: []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")},
		Neighbors: []NeighborConfig{
			{Name: "R2", AS: 65002, Import: "SECRET-IMPORT", Export: "SECRET-EXPORT"},
		},
		Policies: map[string]*policy.Policy{
			"SECRET-IMPORT": policy.AcceptAll("SECRET-IMPORT"),
			"SECRET-EXPORT": policy.AcceptAll("SECRET-EXPORT"),
		},
		HoldTime:          42 * time.Second,
		KeepaliveInterval: 7 * time.Second,
		ConnectRetry:      3 * time.Second,
	}
	red := cfg.Redacted()

	classes := ConfigPrivacy()
	cv := reflect.ValueOf(*cfg)
	rv := reflect.ValueOf(*red)
	typ := reflect.TypeOf(Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		got := rv.Field(i)
		switch classes[name] {
		case PrivacyShared:
			if !reflect.DeepEqual(got.Interface(), cv.Field(i).Interface()) {
				t.Errorf("shared field %s not preserved: %v", name, got)
			}
		case PrivacyPrivate:
			if !got.IsZero() {
				t.Errorf("private field %s survived redaction: %v", name, got)
			}
		}
	}
}
