// Package bird implements the emulated BGP router that DiCE tests — the role
// the BIRD daemon plays in the paper's prototype. A Router speaks the BGP-4
// wire format from package bgp over the netem transport, keeps the three RIBs
// from package rib, evaluates interpreted import/export policies from package
// policy, and exposes the instrumentation hooks DiCE needs:
//
//   - ExploreNextUpdate marks the next UPDATE from a chosen peer as the
//     symbolic input of a concolic execution (paper §3: NLRI and path
//     attribute TLVs are symbolic, as is the "locally most preferred"
//     condition);
//   - Checkpoint/Restore and Clone provide the lightweight node checkpoints
//     that DiCE's consistent snapshots are made of;
//   - CheckInvariants exposes the local state checks whose verdicts are
//     shared across domains through the narrow information-sharing interface.
//
// bird is one of two node.Router backends (the other is internal/frr); it
// registers itself as implementation "bird" and is the default for topology
// nodes that do not tag an implementation. Its RIB decision process breaks
// final ties on the peer router ID before the peer name
// (rib.DecisionRouterIDFirst); its configuration dialect is the BIRD-filter
// policy syntax of package bgp/policy.
package bird

import (
	"github.com/dice-project/dice/internal/node"
)

// The semantic configuration types live in package node so that every
// backend — and the cluster and fault-injection layers — share them; the
// aliases keep this package's historical API intact.
type (
	// Config is the static configuration of one router.
	Config = node.Config
	// NeighborConfig describes one BGP session of a router.
	NeighborConfig = node.NeighborConfig
	// PrivacyClass classifies a configuration field for federated
	// deployments.
	PrivacyClass = node.PrivacyClass
)

// Privacy classes.
const (
	PrivacyShared  = node.PrivacyShared
	PrivacyPrivate = node.PrivacyPrivate
)

// ConfigPrivacy is the privacy classification of every Config field by name.
var ConfigPrivacy = node.ConfigPrivacy
