package bird

import (
	"fmt"
	"sort"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/node"
)

// Image is the immutable, shareable part of a router: its validated
// configuration with parsed policies and the per-neighbor session templates
// derived from it. An image is built once (per campaign, typically) and then
// shared by every clone of the node — cloning applies mutable State onto the
// image instead of re-parsing configuration text and re-deriving policies.
//
// Images are safe for concurrent use: nothing in them is mutated after
// construction, and routers built from the same image share the underlying
// *Config by pointer.
type Image struct {
	cfg *Config
}

// NewImage validates the configuration once and freezes it into an image.
// The configuration is deep-copied, so later caller mutations do not leak
// into routers built from the image.
func NewImage(cfg *Config) (*Image, error) {
	cfg = cfg.Clone()
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Image{cfg: cfg}, nil
}

// ImageOf builds the image for a checkpoint: the in-process configuration
// when the checkpoint never left the process, otherwise the configuration is
// reconstructed from its serialized textual form (policies re-parsed) — once,
// instead of once per restore.
func ImageOf(cp *Checkpoint) (*Image, error) {
	cfg := cp.cfg
	if cfg == nil {
		policies, err := policy.ParsePolicies(cp.PoliciesText)
		if err != nil {
			return nil, fmt.Errorf("bird: restore %s: %w", cp.Name, err)
		}
		cfg = &Config{
			Name:              cp.Name,
			AS:                bgp.ASN(cp.AS),
			RouterID:          bgp.RouterID(cp.RouterID),
			Neighbors:         cp.Neighbors,
			Policies:          policies,
			HoldTime:          cp.HoldTime,
			KeepaliveInterval: cp.KeepaliveInterval,
			ConnectRetry:      cp.ConnectRetry,
		}
		for _, ps := range cp.Networks {
			p, err := bgp.ParsePrefix(ps)
			if err != nil {
				return nil, fmt.Errorf("bird: restore %s: %w", cp.Name, err)
			}
			cfg.Networks = append(cfg.Networks, p)
		}
	}
	return NewImage(cfg)
}

// Config returns the image's frozen configuration. Callers must not mutate
// it.
func (im *Image) Config() *Config { return im.cfg }

// Name returns the imaged router's name.
func (im *Image) Name() string { return im.cfg.Name }

// Implementation implements node.Image.
func (im *Image) Implementation() string { return Implementation }

// State is the decoded, restore-ready mutable state of one checkpoint: the
// session records, RIB routes and counters with all string parsing and
// attribute reconstruction already done. The routes are kept as a flat slab
// template: one instantiation stamps out deep copies of every route with a
// handful of bulk allocations, which is far cheaper than re-parsing
// RouteRecords (and than cloning routes one by one).
//
// A State is immutable after DecodeState and safe to share across concurrent
// restores.
type State struct {
	sessions  []SessionRecord
	tmpl      routeTemplate
	locRIB    span
	adjIn     []peerSpan
	adjOut    []peerSpan
	stats     RouterStats
	events    []RouteEvent
	panicked  bool
	lastPanic string
	started   bool
}

// span is a half-open index range into the template's flat route array.
type span struct{ from, to int }

// peerSpan names the peer a contiguous run of template routes belongs to.
type peerSpan struct {
	peer string
	span span
}

// attrLayout records where one route's attribute slices and optional values
// live inside the template slabs, so instantiation can re-point the copied
// attributes into the fresh slabs.
type attrLayout struct {
	asPathOff, asPathLen int
	asSetOff, asSetLen   int
	commOff, commLen     int
	medIdx, lpIdx        int // -1 when absent
}

// routeTemplate is the slab form of a checkpoint's routes: parallel route and
// attribute arrays plus shared backing slabs for every attribute slice. One
// instantiation performs eight bulk allocations regardless of route count.
type routeTemplate struct {
	routes []rib.Route
	attrs  []bgp.PathAttributes
	layout []attrLayout
	asns   []bgp.ASN
	comms  []bgp.Community
	vals   []uint32
}

// add flattens one route into the template. The route's attribute slices are
// appended to the shared slabs; the stored attribute value keeps the original
// slice headers only as documentation — instantiate rebuilds them.
func (tm *routeTemplate) add(r *rib.Route) {
	a := r.Attrs
	la := attrLayout{
		asPathOff: len(tm.asns), asPathLen: len(a.ASPath),
		medIdx: -1, lpIdx: -1,
	}
	tm.asns = append(tm.asns, a.ASPath...)
	la.asSetOff, la.asSetLen = len(tm.asns), len(a.ASSet)
	tm.asns = append(tm.asns, a.ASSet...)
	la.commOff, la.commLen = len(tm.comms), len(a.Communities)
	tm.comms = append(tm.comms, a.Communities...)
	if a.MED != nil {
		la.medIdx = len(tm.vals)
		tm.vals = append(tm.vals, *a.MED)
	}
	if a.LocalPref != nil {
		la.lpIdx = len(tm.vals)
		tm.vals = append(tm.vals, *a.LocalPref)
	}
	tm.routes = append(tm.routes, *r)
	tm.attrs = append(tm.attrs, *a)
	tm.layout = append(tm.layout, la)
}

// instantiate stamps out a fresh deep copy of every template route. The
// copies share nothing with the template or with each other's attribute
// storage (slice capacities are pinned, so appends reallocate rather than
// bleed into a neighboring route's region).
func (tm *routeTemplate) instantiate() []rib.Route {
	routes := make([]rib.Route, len(tm.routes))
	attrs := make([]bgp.PathAttributes, len(tm.attrs))
	asns := make([]bgp.ASN, len(tm.asns))
	comms := make([]bgp.Community, len(tm.comms))
	vals := make([]uint32, len(tm.vals))
	copy(routes, tm.routes)
	copy(attrs, tm.attrs)
	copy(asns, tm.asns)
	copy(comms, tm.comms)
	copy(vals, tm.vals)
	for i := range routes {
		la := &tm.layout[i]
		a := &attrs[i]
		a.ASPath = nil
		a.ASSet = nil
		a.Communities = nil
		a.MED = nil
		a.LocalPref = nil
		if la.asPathLen > 0 {
			end := la.asPathOff + la.asPathLen
			a.ASPath = asns[la.asPathOff:end:end]
		}
		if la.asSetLen > 0 {
			end := la.asSetOff + la.asSetLen
			a.ASSet = asns[la.asSetOff:end:end]
		}
		if la.commLen > 0 {
			end := la.commOff + la.commLen
			a.Communities = comms[la.commOff:end:end]
		}
		if la.medIdx >= 0 {
			a.MED = &vals[la.medIdx]
		}
		if la.lpIdx >= 0 {
			a.LocalPref = &vals[la.lpIdx]
		}
		routes[i].Attrs = a
	}
	return routes
}

// DecodeState converts a checkpoint's serializable records into restore-ready
// slab form.
func DecodeState(cp *Checkpoint) (*State, error) {
	st := &State{
		sessions:  append([]SessionRecord(nil), cp.Sessions...),
		stats:     cp.Stats,
		panicked:  cp.Panicked,
		lastPanic: cp.LastPanic,
		started:   cp.Started,
	}
	addRecords := func(recs []RouteRecord) (span, error) {
		from := len(st.tmpl.routes)
		for _, rec := range recs {
			route, err := rec.Route()
			if err != nil {
				return span{}, fmt.Errorf("bird: restore %s: %w", cp.Name, err)
			}
			st.tmpl.add(route)
		}
		return span{from: from, to: len(st.tmpl.routes)}, nil
	}
	var err error
	if st.locRIB, err = addRecords(cp.LocRIB); err != nil {
		return nil, err
	}
	for _, peer := range sortedRecordPeers(cp.AdjIn) {
		sp, err := addRecords(cp.AdjIn[peer])
		if err != nil {
			return nil, err
		}
		st.adjIn = append(st.adjIn, peerSpan{peer: peer, span: sp})
	}
	for _, peer := range sortedRecordPeers(cp.AdjOut) {
		sp, err := addRecords(cp.AdjOut[peer])
		if err != nil {
			return nil, err
		}
		st.adjOut = append(st.adjOut, peerSpan{peer: peer, span: sp})
	}
	for _, ev := range cp.Events {
		p, err := bgp.ParsePrefix(ev.Prefix)
		if err != nil {
			return nil, fmt.Errorf("bird: restore %s: %w", cp.Name, err)
		}
		st.events = append(st.events, RouteEvent{
			At:     time.Duration(ev.AtNanos),
			Prefix: p,
			OldVia: ev.OldVia,
			NewVia: ev.NewVia,
		})
	}
	return st, nil
}

func sortedRecordPeers(m map[string][]RouteRecord) []string {
	peers := make([]string, 0, len(m))
	for peer := range m {
		peers = append(peers, peer)
	}
	sort.Strings(peers)
	return peers
}

// Restore builds a fresh router on the image and applies the state to it.
// The result is behaviorally identical to Restore(checkpoint) but skips all
// config cloning, validation and record parsing.
func (im *Image) Restore(st *State) (*Router, error) {
	r := &Router{
		cfg:      im.cfg,
		sessions: make(map[string]*session, len(im.cfg.Neighbors)),
		locRIB:   rib.NewLocRIB(),
		adjIn:    make(map[string]*rib.AdjRIBIn, len(im.cfg.Neighbors)),
		adjOut:   make(map[string]*rib.AdjRIBOut, len(im.cfg.Neighbors)),
	}
	if err := r.applyState(im, st); err != nil {
		return nil, err
	}
	return r, nil
}

// ResetTo returns the router to the snapshot described by (image, state) in
// place: every piece of mutable state — sessions, RIBs, counters, events,
// crash flags, armed explorations and injected fault hooks — is overwritten.
// This is the pooled-clone hot path: resetting an existing router is
// equivalent to (and much cheaper than) restoring a fresh one from the
// checkpoint. It implements node.Router, so the image and state arrive
// behind the neutral interfaces and must be this backend's own.
func (r *Router) ResetTo(nim node.Image, nst node.State) error {
	im, ok := nim.(*Image)
	if !ok {
		return fmt.Errorf("bird: reset %s: image is %T, not a bird image", r.cfg.Name, nim)
	}
	st, ok := nst.(*State)
	if !ok {
		return fmt.Errorf("bird: reset %s: state is %T, not a bird state", r.cfg.Name, nst)
	}
	r.cfg = im.cfg
	r.explore = exploration{}
	r.activeMachine = nil
	r.hook = nil
	return r.applyState(im, st)
}

// applyState overwrites the router's mutable state with a fresh
// instantiation of the decoded state. Each instantiation deep-copies every
// route, so concurrent clones sharing one State never alias mutable
// attributes; existing RIB structures are cleared and reused rather than
// reallocated.
func (r *Router) applyState(im *Image, st *State) error {
	for name := range r.sessions {
		if im.cfg.Neighbor(name) == nil {
			delete(r.sessions, name)
			delete(r.adjIn, name)
			delete(r.adjOut, name)
		}
	}
	for _, n := range im.cfg.Neighbors {
		s := r.sessions[n.Name]
		if s == nil {
			s = &session{}
			r.sessions[n.Name] = s
		}
		*s = session{
			peer:         n.Name,
			peerAS:       n.AS,
			state:        StateIdle,
			importPolicy: n.Import,
			exportPolicy: n.Export,
		}
		if in := r.adjIn[n.Name]; in != nil {
			in.Clear()
		} else {
			r.adjIn[n.Name] = rib.NewAdjRIBIn()
		}
		if out := r.adjOut[n.Name]; out != nil {
			out.Clear()
		} else {
			r.adjOut[n.Name] = rib.NewAdjRIBOut()
		}
	}
	for _, sr := range st.sessions {
		s := r.sessions[sr.Peer]
		if s == nil {
			return fmt.Errorf("bird: restore %s: unknown session %s", im.cfg.Name, sr.Peer)
		}
		s.state = SessionState(sr.State)
		s.peerRouterID = bgp.RouterID(sr.PeerRouterID)
		s.downCount = sr.DownCount
		s.notificationsSent = sr.NotificationsSent
		s.notificationsReceived = sr.NotificationsReceived
	}
	flat := st.tmpl.instantiate()
	if r.locRIB != nil {
		r.locRIB.Clear()
	} else {
		r.locRIB = rib.NewLocRIB()
	}
	for i := st.locRIB.from; i < st.locRIB.to; i++ {
		r.locRIB.InsertCandidate(&flat[i])
	}
	r.locRIB.ReselectAll()
	for _, ps := range st.adjIn {
		in := r.adjIn[ps.peer]
		if in == nil {
			return fmt.Errorf("bird: restore %s: unknown session %s", im.cfg.Name, ps.peer)
		}
		for i := ps.span.from; i < ps.span.to; i++ {
			in.Set(&flat[i])
		}
	}
	for _, ps := range st.adjOut {
		out := r.adjOut[ps.peer]
		if out == nil {
			return fmt.Errorf("bird: restore %s: unknown session %s", im.cfg.Name, ps.peer)
		}
		for i := ps.span.from; i < ps.span.to; i++ {
			out.Set(&flat[i])
		}
	}
	r.stats = st.stats
	r.panicked = st.panicked
	r.lastPanic = st.lastPanic
	r.started = st.started
	if len(st.events) > 0 {
		r.events = append(r.events[:0:0], st.events...)
	} else {
		r.events = nil
	}
	return nil
}
