package bird

import (
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/concolic"
)

// TestEBGPLocalPrefScrubbedSymbolically pins the instrumentation-fidelity
// rule the live runtime's cold-clone re-verification depends on: when an
// eBGP announcement carries LOCAL_PREF, the router discards it concretely
// AND scrubs the symbolic shadow, so an armed (explored) execution reasons
// about the same effective preference a concrete replay of the identical
// wire message would use. Before the scrub covered route.Sym, exploration
// could select a best route on the strength of a LOCAL_PREF the router
// never honors — a detection no replay could reproduce.
func TestEBGPLocalPrefScrubbedSymbolically(t *testing.T) {
	victim := prefixOf(2) // R2's own prefix; the hijack must NOT win
	mkBody := func() []byte {
		attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
		attrs.SetLocalPref(500) // would beat R2's local route if honored
		return (&bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{victim}}).EncodeBody()
	}
	wire := bgp.FrameUpdate

	check := func(t *testing.T, armed bool) {
		net, routers := buildLine(t, 2)
		net.RunQuiescent(0)
		r2 := routers["R2"]
		body := mkBody()
		if armed {
			m := concolic.NewMachine(concolic.NewInput("update", body), concolic.MachineOptions{})
			r2.ExploreNextUpdate(m, "R1")
		}
		net.InjectMessage("R1", "R2", wire(body), 0)
		net.RunQuiescent(0)

		best := r2.LocRIB().Best(victim)
		if best == nil {
			t.Fatalf("victim prefix lost entirely")
		}
		if !best.Local {
			t.Fatalf("armed=%v: eBGP LOCAL_PREF hijacked the selection: %v", armed, best)
		}
		for _, cand := range r2.LocRIB().Candidates(victim) {
			if cand.Local {
				continue
			}
			if cand.Attrs.LocalPref != nil {
				t.Errorf("armed=%v: received LOCAL_PREF survived concretely: %v", armed, cand)
			}
			if cand.Sym != nil && cand.Sym.HasLocalPref {
				t.Errorf("armed=%v: symbolic LOCAL_PREF shadow not scrubbed: %v", armed, cand)
			}
		}
	}
	t.Run("concrete", func(t *testing.T) { check(t, false) })
	t.Run("armed", func(t *testing.T) { check(t, true) })
}
