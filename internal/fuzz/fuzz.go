// Package fuzz implements the grammar-based fuzzer DiCE uses to produce a
// large number of valid BGP UPDATE messages (paper §2, insight iii: small
// inputs plus grammar-based fuzzing manage the path-explosion problem).
//
// The generator builds UPDATEs that are valid by construction — well-formed
// attribute TLVs, mandatory attributes present, prefixes with consistent mask
// lengths — drawing field values from configurable pools so the messages are
// plausible for the topology under test. An optional mutation stage flips a
// few bytes of the encoded message to also cover the malformed-input space.
// Generated messages become seed inputs of the concolic explorer, which then
// refines them by negating branch constraints.
package fuzz

import (
	"math/rand"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/concolic"
)

// Options configure a Generator.
type Options struct {
	// Seed makes generation deterministic.
	Seed int64
	// Prefixes is the pool of realistic prefixes (typically the prefixes
	// originated in the topology). Random prefixes are mixed in as well.
	Prefixes []bgp.Prefix
	// ASNs is the pool of realistic AS numbers for AS_PATH construction.
	ASNs []bgp.ASN
	// NextHops is the pool of next-hop addresses.
	NextHops []uint32
	// MaxNLRI bounds the number of announced prefixes per message (default 3).
	MaxNLRI int
	// MaxWithdrawn bounds the number of withdrawn prefixes (default 2).
	MaxWithdrawn int
	// MaxPathLen bounds the AS_PATH length (default 5).
	MaxPathLen int
	// MaxCommunities bounds the number of communities (default 3).
	MaxCommunities int
	// WithdrawProbability is the chance a generated message carries
	// withdrawals (default 0.2).
	WithdrawProbability float64
	// LocalPrefProbability is the chance LOCAL_PREF is attached (default 0.5).
	LocalPrefProbability float64
	// MEDProbability is the chance MED is attached (default 0.3).
	MEDProbability float64
	// MutationProbability is the chance the encoded message gets a few bytes
	// flipped after generation, producing a (likely) malformed input
	// (default 0, i.e. valid-only).
	MutationProbability float64
}

func (o Options) withDefaults() Options {
	if o.MaxNLRI <= 0 {
		o.MaxNLRI = 3
	}
	if o.MaxWithdrawn <= 0 {
		o.MaxWithdrawn = 2
	}
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = 5
	}
	if o.MaxCommunities <= 0 {
		o.MaxCommunities = 3
	}
	if o.WithdrawProbability == 0 {
		o.WithdrawProbability = 0.2
	}
	if o.LocalPrefProbability == 0 {
		o.LocalPrefProbability = 0.5
	}
	if o.MEDProbability == 0 {
		o.MEDProbability = 0.3
	}
	return o
}

// Generator produces BGP UPDATE messages from the grammar.
type Generator struct {
	opts Options
	rng  *rand.Rand

	generated int
	mutated   int
}

// New returns a Generator.
func New(opts Options) *Generator {
	opts = opts.withDefaults()
	return &Generator{opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Stats reports how many messages were generated and how many were mutated
// into (likely) invalid form.
func (g *Generator) Stats() (generated, mutated int) { return g.generated, g.mutated }

func (g *Generator) prefix() bgp.Prefix {
	if len(g.opts.Prefixes) > 0 && g.rng.Float64() < 0.7 {
		return g.opts.Prefixes[g.rng.Intn(len(g.opts.Prefixes))]
	}
	length := uint8(8 + g.rng.Intn(25)) // 8..32
	addr := g.rng.Uint32()
	return bgp.Prefix{Addr: addr, Len: length}.Canonical()
}

func (g *Generator) asn() bgp.ASN {
	if len(g.opts.ASNs) > 0 && g.rng.Float64() < 0.7 {
		return g.opts.ASNs[g.rng.Intn(len(g.opts.ASNs))]
	}
	return bgp.ASN(1 + g.rng.Intn(65534))
}

func (g *Generator) nextHop() uint32 {
	if len(g.opts.NextHops) > 0 && g.rng.Float64() < 0.7 {
		return g.opts.NextHops[g.rng.Intn(len(g.opts.NextHops))]
	}
	return g.rng.Uint32() | 1
}

// Update generates one structurally valid UPDATE message.
func (g *Generator) Update() *bgp.Update {
	g.generated++
	u := &bgp.Update{}
	if g.rng.Float64() < g.opts.WithdrawProbability {
		n := 1 + g.rng.Intn(g.opts.MaxWithdrawn)
		for i := 0; i < n; i++ {
			u.Withdrawn = append(u.Withdrawn, g.prefix())
		}
	}
	// Announcements (most messages carry some).
	if g.rng.Float64() < 0.9 || len(u.Withdrawn) == 0 {
		n := 1 + g.rng.Intn(g.opts.MaxNLRI)
		seen := make(map[bgp.Prefix]bool)
		for i := 0; i < n; i++ {
			p := g.prefix()
			if seen[p] {
				continue
			}
			seen[p] = true
			u.NLRI = append(u.NLRI, p)
		}
		attrs := &bgp.PathAttributes{
			Origin:  uint8(g.rng.Intn(3)),
			NextHop: g.nextHop(),
		}
		pathLen := 1 + g.rng.Intn(g.opts.MaxPathLen)
		for i := 0; i < pathLen; i++ {
			attrs.ASPath = append(attrs.ASPath, g.asn())
		}
		if g.rng.Float64() < g.opts.LocalPrefProbability {
			attrs.SetLocalPref(uint32(g.rng.Intn(400)))
		}
		if g.rng.Float64() < g.opts.MEDProbability {
			attrs.SetMED(uint32(g.rng.Intn(1000)))
		}
		nComm := g.rng.Intn(g.opts.MaxCommunities + 1)
		for i := 0; i < nComm; i++ {
			attrs.AddCommunity(bgp.NewCommunity(uint16(g.asn()), uint16(g.rng.Intn(1000))))
		}
		u.Attrs = attrs
	}
	return u
}

// Body generates the encoded body of one UPDATE, applying the mutation stage
// with the configured probability.
func (g *Generator) Body() []byte {
	body := g.Update().EncodeBody()
	if g.opts.MutationProbability > 0 && g.rng.Float64() < g.opts.MutationProbability {
		g.mutated++
		flips := 1 + g.rng.Intn(3)
		for i := 0; i < flips && len(body) > 0; i++ {
			pos := g.rng.Intn(len(body))
			body[pos] ^= byte(1 << uint(g.rng.Intn(8)))
		}
	}
	return body
}

// Corpus generates n seed inputs for the concolic explorer, each holding one
// UPDATE body in the "update" region.
func (g *Generator) Corpus(n int) []*concolic.Input {
	out := make([]*concolic.Input, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, concolic.NewInput("update", g.Body()))
	}
	return out
}

// ValidRatio generates n bodies and reports the fraction that parse as valid
// UPDATEs — the fuzzer-quality metric reported by experiment E6.
func (g *Generator) ValidRatio(n int) float64 {
	if n <= 0 {
		return 0
	}
	valid := 0
	for i := 0; i < n; i++ {
		if _, err := bgp.DecodeUpdate(g.Body()); err == nil {
			valid++
		}
	}
	return float64(valid) / float64(n)
}
