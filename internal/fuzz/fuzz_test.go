package fuzz

import (
	"testing"

	"github.com/dice-project/dice/internal/bgp"
)

func TestGeneratedUpdatesAreValid(t *testing.T) {
	g := New(Options{Seed: 1, Prefixes: []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")}, ASNs: []bgp.ASN{65001, 65002}})
	for i := 0; i < 500; i++ {
		body := g.Update().EncodeBody()
		if _, err := bgp.DecodeUpdate(body); err != nil {
			t.Fatalf("generated update %d does not decode: %v", i, err)
		}
	}
	if ratio := New(Options{Seed: 2}).ValidRatio(200); ratio != 1.0 {
		t.Errorf("unmutated generator should be 100%% valid, got %.2f", ratio)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := New(Options{Seed: 7}).Body()
	b := New(Options{Seed: 7}).Body()
	if string(a) != string(b) {
		t.Errorf("same seed must produce the same message")
	}
	c := New(Options{Seed: 8}).Body()
	if string(a) == string(c) {
		t.Errorf("different seeds should (very likely) differ")
	}
}

func TestGeneratorUsesPools(t *testing.T) {
	pool := []bgp.Prefix{bgp.MustParsePrefix("192.0.2.0/24")}
	g := New(Options{Seed: 3, Prefixes: pool})
	hits := 0
	for i := 0; i < 200; i++ {
		u := g.Update()
		for _, p := range u.NLRI {
			if p == pool[0] {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Errorf("generator never drew from the prefix pool")
	}
}

func TestMutationProducesInvalidInputs(t *testing.T) {
	g := New(Options{Seed: 4, MutationProbability: 0.9})
	ratio := g.ValidRatio(300)
	if ratio >= 1.0 {
		t.Errorf("mutation should produce some invalid messages, ratio=%.2f", ratio)
	}
	if ratio < 0.05 {
		t.Errorf("single-byte flips should not destroy every message, ratio=%.2f", ratio)
	}
	gen, mut := g.Stats()
	if gen == 0 || mut == 0 {
		t.Errorf("stats not tracked: %d %d", gen, mut)
	}
}

func TestCorpusShape(t *testing.T) {
	g := New(Options{Seed: 5})
	corpus := g.Corpus(10)
	if len(corpus) != 10 {
		t.Fatalf("corpus size = %d", len(corpus))
	}
	for _, in := range corpus {
		if len(in.Region("update")) == 0 {
			t.Errorf("corpus input missing update region")
		}
	}
}

func TestWithdrawalsGenerated(t *testing.T) {
	g := New(Options{Seed: 6, WithdrawProbability: 0.9})
	withdrawals := 0
	for i := 0; i < 200; i++ {
		if len(g.Update().Withdrawn) > 0 {
			withdrawals++
		}
	}
	if withdrawals == 0 {
		t.Errorf("no withdrawals generated despite high probability")
	}
}

func TestSmallInputs(t *testing.T) {
	// The paper's insight: keep inputs small. Generated bodies stay well
	// under the BGP maximum message size.
	g := New(Options{Seed: 9})
	for i := 0; i < 200; i++ {
		if n := len(g.Body()); n > 512 {
			t.Fatalf("generated body unexpectedly large: %d bytes", n)
		}
	}
}
