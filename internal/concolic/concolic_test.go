package concolic

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/dice-project/dice/internal/concolic/expr"
)

func TestValueConcreteOps(t *testing.T) {
	a := Const(10, 8)
	b := Const(3, 8)
	if got := Add(a, b); got.Uint() != 13 || got.IsSymbolic() {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(a, b); got.Uint() != 7 {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); got.Uint() != 30 {
		t.Errorf("Mul = %v", got)
	}
	if got := Eq(a, b); got.Bool() {
		t.Errorf("Eq(10,3) should be false")
	}
	if got := Lt(b, a); !got.Bool() {
		t.Errorf("Lt(3,10) should be true")
	}
	if got := Concat(Const(0xab, 8), Const(0xcd, 8)); got.Uint() != 0xabcd || got.Width != 16 {
		t.Errorf("Concat = %v", got)
	}
	if got := ZExt(a, 32); got.Uint() != 10 || got.Width != 32 {
		t.Errorf("ZExt = %v", got)
	}
}

func TestValueSymbolicPropagation(t *testing.T) {
	in := NewInput("in", []byte{5, 9})
	m := NewMachine(in, MachineOptions{})
	sb := m.Bytes("in", in.Region("in"))
	x := sb.Byte(0)
	y := sb.Byte(1)
	sum := Add(x, y)
	if !sum.IsSymbolic() {
		t.Fatalf("sum of symbolic bytes should be symbolic")
	}
	if sum.Uint() != 14 {
		t.Errorf("concrete sum = %d, want 14", sum.Uint())
	}
	// Symbolic side evaluates consistently with the concrete side.
	if got := sum.Sym.Eval(m.Assignment()); got != 14 {
		t.Errorf("symbolic eval = %d, want 14", got)
	}
	mixed := Add(x, Const(1, 8))
	if !mixed.IsSymbolic() || mixed.Uint() != 6 {
		t.Errorf("mixed add = %v", mixed)
	}
}

func TestValueBoolOps(t *testing.T) {
	tr := BoolValue(true)
	fa := BoolValue(false)
	if Not(tr).Bool() || !Not(fa).Bool() {
		t.Errorf("Not broken")
	}
	if !And(tr, tr).Bool() || And(tr, fa).Bool() {
		t.Errorf("And broken")
	}
	if !Or(fa, tr).Bool() || Or(fa, fa).Bool() {
		t.Errorf("Or broken")
	}
}

func TestValueWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic on width mismatch")
		}
	}()
	Add(Const(1, 8), Const(1, 16))
}

func TestNilMachineIsConcrete(t *testing.T) {
	var m *Machine
	if m.Tracing() {
		t.Errorf("nil machine must not trace")
	}
	sb := m.Bytes("in", []byte{7})
	v := sb.Byte(0)
	if v.IsSymbolic() || v.Uint() != 7 {
		t.Errorf("nil machine byte = %v", v)
	}
	if !m.Branch("site", GtConst(v, 3)) {
		t.Errorf("nil machine branch should return concrete truth")
	}
	if m.Path() != nil {
		t.Errorf("nil machine must not record a path")
	}
	if got := m.Choice("pref", true); !got.Bool() || got.IsSymbolic() {
		t.Errorf("nil machine choice = %v", got)
	}
}

func TestMachineBranchRecording(t *testing.T) {
	in := NewInput("in", []byte{10, 200})
	m := NewMachine(in, MachineOptions{})
	sb := m.Bytes("in", in.Region("in"))

	// Branch taken.
	if !m.Branch("lt", LtConst(sb.Byte(0), 50)) {
		t.Fatalf("10 < 50 should hold")
	}
	// Branch not taken.
	if m.Branch("eq", EqConst(sb.Byte(1), 5)) {
		t.Fatalf("200 == 5 should not hold")
	}
	path := m.Path()
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
	if !path[0].Taken || path[1].Taken {
		t.Errorf("taken flags wrong: %+v", path)
	}
	// Each recorded condition holds under the concrete assignment (the
	// fundamental concolic invariant).
	for i, b := range path {
		if !b.Cond.EvalBool(m.Assignment()) {
			t.Errorf("recorded condition %d does not hold on its own execution", i)
		}
	}
}

func TestMachineConcreteConditionsNotRecorded(t *testing.T) {
	in := NewInput("in", []byte{1})
	m := NewMachine(in, MachineOptions{})
	m.Branch("concrete", BoolValue(true))
	m.Branch("concrete2", EqConst(Const(4, 8), 4))
	if len(m.Path()) != 0 {
		t.Errorf("concrete conditions must not be recorded, path=%v", m.Path())
	}
}

func TestMachineBranchLimit(t *testing.T) {
	in := NewInput("in", []byte{1})
	m := NewMachine(in, MachineOptions{MaxBranches: 3})
	sb := m.Bytes("in", in.Region("in"))
	for i := 0; i < 10; i++ {
		m.Branch(fmt.Sprintf("b%d", i), EqConst(sb.Byte(0), uint64(i)))
	}
	if len(m.Path()) != 3 {
		t.Errorf("path length = %d, want 3", len(m.Path()))
	}
	if !m.Truncated() {
		t.Errorf("machine should report truncation")
	}
}

func TestMachineChoice(t *testing.T) {
	in := NewInput("in", nil)
	m := NewMachine(in, MachineOptions{})
	c := m.Choice("preferred", true)
	if !c.Bool() {
		t.Errorf("default choice value not honoured")
	}
	if !c.IsSymbolic() {
		t.Errorf("choice should be symbolic under a machine")
	}
	// Once the explorer flips the choice byte, a fresh machine sees false.
	flipped := in.Clone()
	flipped.SetRegion("choice/preferred", []byte{0})
	m2 := NewMachine(flipped, MachineOptions{})
	if m2.Choice("preferred", true).Bool() {
		t.Errorf("flipped choice should be false")
	}
}

func TestInputCloneAndHash(t *testing.T) {
	a := NewInput("in", []byte{1, 2, 3})
	b := a.Clone()
	if a.Hash() != b.Hash() {
		t.Errorf("clone must hash equal")
	}
	b.Region("in")[0] = 9
	if a.Hash() == b.Hash() {
		t.Errorf("mutated clone must hash differently")
	}
	if a.Region("in")[0] != 1 {
		t.Errorf("clone mutation leaked into original")
	}
	if a.Size() != 3 {
		t.Errorf("Size = %d, want 3", a.Size())
	}
}

func TestApplyModel(t *testing.T) {
	in := NewInput("in", []byte{1, 2, 3})
	m := NewMachine(in, MachineOptions{})
	m.Bytes("in", in.Region("in"))
	model := expr.Assignment{"in[1]": 77, "unrelated": 5}
	out := m.ApplyModel(in, model)
	want := []byte{1, 77, 3}
	got := out.Region("in")
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ApplyModel = %v, want %v", got, want)
		}
	}
	if in.Region("in")[1] != 2 {
		t.Errorf("ApplyModel must not mutate the base input")
	}
}

// exploreTarget is a small program with input-dependent branching: the
// explorer should discover the guarded "bug" without being given the magic
// values.
func exploreTarget(in *Input, m *Machine) error {
	sb := m.Bytes("msg", in.Region("msg"))
	if sb.Len() < 3 {
		return nil
	}
	if m.Branch("t0", EqConst(sb.Byte(0), 0x40)) {
		if m.Branch("t1", EqConst(sb.Byte(1), 5)) {
			if m.Branch("t2", GtConst(sb.Byte(2), 200)) {
				return errors.New("guarded bug reached")
			}
		}
	}
	return nil
}

func TestExplorerFindsGuardedBug(t *testing.T) {
	e := NewExplorer(exploreTarget, ExplorerOptions{MaxExecutions: 64, Seed: 1})
	e.AddSeed(NewInput("msg", []byte{0, 0, 0}))
	report, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !report.Failed() {
		t.Fatalf("explorer did not reach the guarded bug; stats=%+v", report.Stats)
	}
	bad := report.Errors[0].Input.Region("msg")
	if bad[0] != 0x40 || bad[1] != 5 || bad[2] <= 200 {
		t.Errorf("failing input %v does not satisfy the guard", bad)
	}
	if report.Stats.UniquePaths < 3 {
		t.Errorf("expected several unique paths, got %d", report.Stats.UniquePaths)
	}
}

func TestExplorerCoverageGrows(t *testing.T) {
	e := NewExplorer(exploreTarget, ExplorerOptions{MaxExecutions: 64, Seed: 2})
	e.AddSeed(NewInput("msg", []byte{1, 1, 1}))
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Both directions of t0 must eventually be covered.
	cov := e.Coverage()
	has := func(k string) bool {
		for _, c := range cov {
			if c == k {
				return true
			}
		}
		return false
	}
	if !has("t0+") || !has("t0-") {
		t.Errorf("coverage missing t0 directions: %v", cov)
	}
}

func TestExplorerNoSeeds(t *testing.T) {
	e := NewExplorer(exploreTarget, ExplorerOptions{})
	if _, err := e.Run(); !errors.Is(err, ErrNoSeeds) {
		t.Errorf("expected ErrNoSeeds, got %v", err)
	}
}

func TestExplorerDeterministic(t *testing.T) {
	run := func() Stats {
		e := NewExplorer(exploreTarget, ExplorerOptions{MaxExecutions: 40, Seed: 5})
		e.AddSeed(NewInput("msg", []byte{9, 9, 9}))
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("exploration not deterministic: %+v vs %+v", a, b)
	}
}

func TestExplorerRespectsBudget(t *testing.T) {
	e := NewExplorer(exploreTarget, ExplorerOptions{MaxExecutions: 5})
	e.AddSeed(NewInput("msg", []byte{0, 0, 0}))
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Executions > 5 {
		t.Errorf("executions %d exceeded budget", r.Stats.Executions)
	}
}

// choiceTarget exercises symbolic choices (the "locally most preferred"
// condition from the paper): flipping the choice reaches a different branch.
func choiceTarget(in *Input, m *Machine) error {
	pref := m.Choice("preferred", false)
	if m.Branch("pref", pref) {
		return errors.New("preferred branch reached")
	}
	return nil
}

func TestExplorerFlipsChoices(t *testing.T) {
	e := NewExplorer(choiceTarget, ExplorerOptions{MaxExecutions: 16, Seed: 3})
	e.AddSeed(NewInput("msg", nil))
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Failed() {
		t.Fatalf("explorer failed to flip the symbolic choice; stats=%+v", r.Stats)
	}
}

// Property: the concolic invariant — the symbolic expression of any value
// derived from input bytes evaluates (under the machine assignment) to the
// value's concrete part.
func TestQuickConcolicInvariant(t *testing.T) {
	f := func(b0, b1, b2 byte) bool {
		in := NewInput("in", []byte{b0, b1, b2})
		m := NewMachine(in, MachineOptions{})
		sb := m.Bytes("in", in.Region("in"))
		vals := []Value{
			Add(sb.Byte(0), sb.Byte(1)),
			Sub(sb.Byte(2), sb.Byte(0)),
			Mul(sb.Byte(1), Const(3, 8)),
			Concat(sb.Byte(0), sb.Byte(1)),
			BitAnd(sb.Byte(2), Const(0xf0, 8)),
			BitOr(sb.Byte(1), sb.Byte(2)),
			ZExt(sb.Byte(0), 32),
		}
		for _, v := range vals {
			if v.Sym.Eval(m.Assignment()) != v.Concrete {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every recorded branch condition holds under the assignment of the
// execution that recorded it, regardless of input.
func TestQuickPathConditionHolds(t *testing.T) {
	f := func(b0, b1, b2 byte) bool {
		in := NewInput("msg", []byte{b0, b1, b2})
		m := NewMachine(in, MachineOptions{})
		_ = exploreTarget(in, m)
		for _, br := range m.Path() {
			if !br.Cond.EvalBool(m.Assignment()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
