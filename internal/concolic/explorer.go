package concolic

import (
	"container/heap"
	"errors"
	"sort"

	"github.com/dice-project/dice/internal/concolic/expr"
	"github.com/dice-project/dice/internal/concolic/solver"
)

// ExecuteFunc runs the program under test on one input, using the machine for
// symbolic instrumentation. A non-nil error marks the execution as failing
// (a crash, an invariant violation, or a detected property violation); the
// explorer records it and keeps exploring.
type ExecuteFunc func(in *Input, m *Machine) error

// DefaultMaxBranchesPerPath is the recorded-path bound applied when
// ExplorerOptions.MaxBranchesPerPath is unset. It matches the machine-level
// default, so the limit is explicit in the explorer's resolved options
// instead of silently looking like "unlimited".
const DefaultMaxBranchesPerPath = 4096

// ExplorerOptions configure an Explorer.
type ExplorerOptions struct {
	// MaxExecutions bounds the total number of program executions. Zero
	// selects 256.
	MaxExecutions int
	// MaxBranchesPerPath bounds the recorded path length per execution.
	// Zero selects DefaultMaxBranchesPerPath.
	MaxBranchesPerPath int
	// MaxQueue bounds the number of pending candidate inputs. Zero selects
	// 4096.
	MaxQueue int
	// Solver configures constraint solving.
	Solver solver.Options
	// Seed makes exploration deterministic. Negative seeds are as valid as
	// positive ones.
	Seed int64
}

func (o ExplorerOptions) withDefaults() ExplorerOptions {
	if o.MaxExecutions <= 0 {
		o.MaxExecutions = 256
	}
	if o.MaxBranchesPerPath <= 0 {
		o.MaxBranchesPerPath = DefaultMaxBranchesPerPath
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4096
	}
	if o.Solver.Seed == 0 {
		// Derive the solver seed from the exploration seed, injectively and
		// never landing on the "unset" sentinel 0: non-negative seeds shift
		// by one (so the common Seed 0 default derives 1, as before) and
		// negative seeds map to themselves. The two ranges stay disjoint, so
		// distinct exploration seeds always drive distinct solver decisions,
		// and — since no derivation yields 0 — withDefaults is idempotent:
		// a later defaulting pass can never silently re-seed the solver
		// (the old Seed == -1 → 0 hole that broke determinism for negative
		// seeds).
		if o.Seed >= 0 {
			o.Solver.Seed = o.Seed + 1
		} else {
			o.Solver.Seed = o.Seed
		}
	}
	return o
}

// ExecError records a failing execution.
type ExecError struct {
	Input *Input
	Err   error
	Path  []Branch
}

// Stats aggregates exploration counters.
type Stats struct {
	Executions     int
	UniquePaths    int
	UniqueInputs   int
	BranchesSeen   int
	CoverageSites  int
	SolverQueries  int
	SolverSat      int
	SolverUnsat    int
	SolverUnknown  int
	QueueOverflows int
	Truncated      int
}

// Report is the result of an exploration run.
type Report struct {
	Stats  Stats
	Errors []ExecError
}

// Failed reports whether any execution returned an error.
func (r *Report) Failed() bool { return len(r.Errors) > 0 }

// candidate is a pending test input in the exploration frontier.
type candidate struct {
	input *Input
	// depth is the index of the first branch this candidate is allowed to
	// negate; branches before it were inherited from the parent path
	// (generational search, as in SAGE/Oasis).
	depth int
	// score orders the frontier: candidates expected to reach new coverage
	// first.
	score int
	seq   int
}

// frontier is a priority queue of candidates ordered by score (highest
// first), ties broken by insertion order (lowest seq first) so exploration
// stays deterministic. seq is unique per candidate, making the order total:
// the dequeue sequence is identical to a linear scan for the best candidate,
// but each operation is O(log n) instead of O(n).
type frontier []*candidate

func (f frontier) Len() int { return len(f) }
func (f frontier) Less(i, j int) bool {
	if f[i].score != f[j].score {
		return f[i].score > f[j].score
	}
	return f[i].seq < f[j].seq
}
func (f frontier) Swap(i, j int) { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x interface{}) {
	*f = append(*f, x.(*candidate))
}
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*f = old[:n-1]
	return c
}

// Explorer drives concolic exploration: it maintains a frontier of candidate
// inputs, executes them through the user-provided ExecuteFunc, and derives
// new candidates by negating recorded branch constraints and solving for
// inputs that realize the negation.
type Explorer struct {
	execute ExecuteFunc
	opts    ExplorerOptions

	queue      frontier
	seenInput  map[uint64]bool
	seenPath   map[uint64]bool
	coverage   map[string]bool
	nextSeq    int
	stats      Stats
	errorsList []ExecError
}

// NewExplorer returns an Explorer over the given program.
func NewExplorer(execute ExecuteFunc, opts ExplorerOptions) *Explorer {
	if execute == nil {
		panic("concolic: nil ExecuteFunc")
	}
	return &Explorer{
		execute:   execute,
		opts:      opts.withDefaults(),
		seenInput: make(map[uint64]bool),
		seenPath:  make(map[uint64]bool),
		coverage:  make(map[string]bool),
	}
}

// AddSeed adds an initial input to the frontier. Seeds typically come from
// observed live traffic or from the grammar-based fuzzer.
func (e *Explorer) AddSeed(in *Input) {
	e.enqueue(&candidate{input: in.Clone(), depth: 0, score: 1 << 20})
}

// enqueue adds a candidate unless its input was already scheduled.
func (e *Explorer) enqueue(c *candidate) {
	h := c.input.Hash()
	if e.seenInput[h] {
		return
	}
	if len(e.queue) >= e.opts.MaxQueue {
		e.stats.QueueOverflows++
		return
	}
	e.seenInput[h] = true
	e.stats.UniqueInputs++
	c.seq = e.nextSeq
	e.nextSeq++
	heap.Push(&e.queue, c)
}

// dequeue removes the best-scoring candidate (ties broken by insertion order
// for determinism) in O(log n).
func (e *Explorer) dequeue() *candidate {
	if len(e.queue) == 0 {
		return nil
	}
	return heap.Pop(&e.queue).(*candidate)
}

// Pending returns the number of candidates waiting to be executed.
func (e *Explorer) Pending() int { return len(e.queue) }

// Stats returns a snapshot of the exploration counters.
func (e *Explorer) Stats() Stats { return e.stats }

// Errors returns the failing executions recorded so far.
func (e *Explorer) Errors() []ExecError { return e.errorsList }

// ErrNoSeeds is returned by Run when the frontier is empty at the start.
var ErrNoSeeds = errors.New("concolic: exploration started with no seed inputs")

// Run executes candidates until the frontier is empty or the execution budget
// is exhausted, and returns a report.
func (e *Explorer) Run() (*Report, error) {
	return e.RunWhile(func() bool { return true })
}

// RunWhile is Run with a continuation predicate checked before every
// execution. The DiCE orchestrator uses it to honor context cancellation
// mid-exploration; the report covers whatever executed before the predicate
// turned false.
func (e *Explorer) RunWhile(keepGoing func() bool) (*Report, error) {
	if len(e.queue) == 0 {
		return nil, ErrNoSeeds
	}
	for e.stats.Executions < e.opts.MaxExecutions && keepGoing() {
		c := e.dequeue()
		if c == nil {
			break
		}
		e.Step(c.input, c.depth)
	}
	return &Report{Stats: e.stats, Errors: e.errorsList}, nil
}

// Step executes a single input (with the given generational depth), records
// its path, and derives new candidates from it. It is exported so that the
// DiCE orchestrator can interleave exploration with snapshot cloning and
// property checking.
func (e *Explorer) Step(in *Input, depth int) (m *Machine, err error) {
	m = NewMachine(in.Clone(), MachineOptions{MaxBranches: e.opts.MaxBranchesPerPath})
	err = e.execute(m.Input(), m)
	e.stats.Executions++
	if m.Truncated() {
		e.stats.Truncated++
	}
	path := m.Path()
	e.stats.BranchesSeen += len(path)
	if err != nil {
		e.errorsList = append(e.errorsList, ExecError{Input: in.Clone(), Err: err, Path: path})
	}
	sig := m.PathSignature()
	newPath := !e.seenPath[sig]
	if newPath {
		e.seenPath[sig] = true
		e.stats.UniquePaths++
	}
	newCover := 0
	for _, b := range path {
		key := b.Site
		if b.Taken {
			key += "+"
		} else {
			key += "-"
		}
		if !e.coverage[key] {
			e.coverage[key] = true
			newCover++
		}
	}
	e.stats.CoverageSites = len(e.coverage)

	// Generational search: negate each branch at or beyond the candidate's
	// depth and solve for an input realizing the flipped path prefix.
	for i := depth; i < len(path); i++ {
		constraints := make([]*expr.Expr, 0, i+1)
		for j := 0; j < i; j++ {
			constraints = append(constraints, path[j].Cond)
		}
		constraints = append(constraints, expr.Not(path[i].Cond))

		e.stats.SolverQueries++
		res := solver.Solve(constraints, m.Assignment(), e.opts.Solver)
		switch res.Status {
		case solver.StatusSat:
			e.stats.SolverSat++
			child := m.ApplyModel(m.Input(), res.Model)
			score := 0
			flippedKey := path[i].Site
			if path[i].Taken {
				flippedKey += "-"
			} else {
				flippedKey += "+"
			}
			if !e.coverage[flippedKey] {
				score = 1000
			}
			e.enqueue(&candidate{input: child, depth: i + 1, score: score + newCover})
		case solver.StatusUnsat:
			e.stats.SolverUnsat++
		default:
			e.stats.SolverUnknown++
		}
	}
	return m, err
}

// Coverage returns the sorted list of covered (site, direction) keys.
func (e *Explorer) Coverage() []string {
	keys := make([]string, 0, len(e.coverage))
	for k := range e.coverage {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
