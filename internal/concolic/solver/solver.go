// Package solver finds concrete variable assignments that satisfy path
// conditions produced by the concolic engine.
//
// Path conditions are conjunctions of boolean expressions from package expr
// over fixed-width bitvector variables (for DiCE, mostly the bytes of a BGP
// UPDATE message). The solver is purpose-built for that shape of formula:
//
//  1. interval and equality propagation over constraints that relate a single
//     variable to constants establishes tight per-variable domains and can
//     prove many conjunctions unsatisfiable outright;
//  2. candidate-set enumeration: for small residual search spaces the solver
//     enumerates combinations of "interesting" values (domain bounds,
//     constants mentioned by the constraints, the seed value, and nearby
//     values), which is complete for the byte-level comparisons produced by
//     protocol handlers;
//  3. greedy local search seeded with the previous concrete input handles
//     larger spaces within a configurable step budget.
//
// The solver is deterministic for a given seed, which keeps concolic
// exploration reproducible.
package solver

import (
	"math/rand"
	"sort"

	"github.com/dice-project/dice/internal/concolic/expr"
)

// Options configure a Solve call.
type Options struct {
	// MaxSteps bounds the number of candidate assignments evaluated during
	// the search phases. Zero selects a default of 4096.
	MaxSteps int
	// MaxEnumerate bounds the size of the cartesian candidate product that
	// the exhaustive phase is willing to enumerate. Zero selects 65536.
	MaxEnumerate int
	// Seed seeds the deterministic pseudo-random generator used to break
	// ties and to sample values inside large domains.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 4096
	}
	if o.MaxEnumerate <= 0 {
		o.MaxEnumerate = 65536
	}
	return o
}

// Status describes the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	// StatusSat means a satisfying model was found.
	StatusSat Status = iota
	// StatusUnsat means the conjunction was proven unsatisfiable.
	StatusUnsat
	// StatusUnknown means the budget was exhausted without a verdict.
	StatusUnknown
)

// String returns a human-readable form of the status.
func (s Status) String() string {
	switch s {
	case StatusSat:
		return "sat"
	case StatusUnsat:
		return "unsat"
	case StatusUnknown:
		return "unknown"
	}
	return "invalid"
}

// Result is the outcome of a Solve call.
type Result struct {
	Status Status
	// Model is a satisfying assignment when Status == StatusSat.
	Model expr.Assignment
	// Steps is the number of candidate assignments that were evaluated.
	Steps int
}

// Sat reports whether the result carries a model.
func (r Result) Sat() bool { return r.Status == StatusSat }

// interval is an inclusive unsigned range.
type interval struct {
	lo, hi uint64
}

func fullInterval(width uint8) interval {
	if width >= 64 {
		return interval{0, ^uint64(0)}
	}
	return interval{0, (uint64(1) << width) - 1}
}

func (iv interval) empty() bool { return iv.lo > iv.hi }

// varInfo aggregates what propagation learned about a variable.
type varInfo struct {
	width    uint8
	dom      interval
	excluded map[uint64]bool
	// interesting holds constants that appear in constraints mentioning the
	// variable; they (and their neighbours) are prime candidate values.
	interesting map[uint64]bool
}

// Solve searches for an assignment satisfying the conjunction of constraints.
// The seed assignment (typically the concrete values observed on the previous
// execution) guides the search; it may be nil.
func Solve(constraints []*expr.Expr, seed expr.Assignment, opts Options) Result {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Constant-fold trivial cases.
	pending := make([]*expr.Expr, 0, len(constraints))
	for _, c := range constraints {
		if c == nil {
			continue
		}
		if c.Kind == expr.KindBool {
			if c.Val == 0 {
				return Result{Status: StatusUnsat}
			}
			continue
		}
		pending = append(pending, c)
	}
	if len(pending) == 0 {
		model := expr.Assignment{}
		if seed != nil {
			model = seed.Clone()
		}
		return Result{Status: StatusSat, Model: model}
	}

	vars := collectVars(pending)
	if len(vars) == 0 {
		// Non-constant constraints with no variables cannot occur; treat as
		// unknown defensively.
		return Result{Status: StatusUnknown}
	}

	info := propagate(pending, vars)
	for _, vi := range info {
		if vi.dom.empty() {
			return Result{Status: StatusUnsat}
		}
	}

	names := sortedNames(vars)
	base := buildBase(names, info, seed)

	steps := 0
	if satisfiesAll(pending, base) {
		return Result{Status: StatusSat, Model: base, Steps: steps}
	}

	// Phase 2: exhaustive enumeration over candidate sets when feasible.
	cands := candidateSets(names, info, seed, rng)
	product := 1
	feasible := true
	for _, cs := range cands {
		if len(cs) == 0 {
			feasible = false
			break
		}
		product *= len(cs)
		if product > opts.MaxEnumerate {
			feasible = false
			break
		}
	}
	if feasible {
		model, n := enumerate(pending, names, cands, base, opts.MaxEnumerate)
		steps += n
		if model != nil {
			return Result{Status: StatusSat, Model: model, Steps: steps}
		}
		// Enumeration over candidate sets is not complete in general (the
		// sets are samples of large domains), so fall through to search
		// unless every domain was fully covered by its candidate set.
		if fullCoverage(names, info, cands) {
			return Result{Status: StatusUnsat, Steps: steps}
		}
	}

	// Phase 3: greedy local search from the base assignment.
	model, n := localSearch(pending, names, info, cands, base, opts.MaxSteps-steps, rng)
	steps += n
	if model != nil {
		return Result{Status: StatusSat, Model: model, Steps: steps}
	}
	return Result{Status: StatusUnknown, Steps: steps}
}

func collectVars(constraints []*expr.Expr) map[string]uint8 {
	vars := make(map[string]uint8)
	for _, c := range constraints {
		c.Vars(vars)
	}
	return vars
}

func sortedNames(vars map[string]uint8) []string {
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// propagate runs interval/equality/exclusion propagation for constraints of
// the shape (op var const) or (op const var), possibly through ZExt.
func propagate(constraints []*expr.Expr, vars map[string]uint8) map[string]*varInfo {
	info := make(map[string]*varInfo, len(vars))
	for name, width := range vars {
		info[name] = &varInfo{
			width:       width,
			dom:         fullInterval(width),
			excluded:    make(map[uint64]bool),
			interesting: make(map[uint64]bool),
		}
	}
	for _, c := range constraints {
		applyConstraint(c, info)
	}
	// Shrink domains that exclude their endpoints.
	for _, vi := range info {
		for vi.excluded[vi.dom.lo] && !vi.dom.empty() {
			vi.dom.lo++
		}
		for !vi.dom.empty() && vi.excluded[vi.dom.hi] && vi.dom.hi > 0 {
			vi.dom.hi--
		}
	}
	return info
}

// stripZExt unwraps zero extensions: the value of ZExt(x) equals the value of
// x, so comparisons against constants transfer directly.
func stripZExt(e *expr.Expr) *expr.Expr {
	for e.Kind == expr.KindZExt {
		e = e.Args[0]
	}
	return e
}

// varConst matches the pattern (var, const) or (const, var) modulo ZExt and
// returns the variable name, the constant, and whether the variable was the
// left operand.
func varConst(a, b *expr.Expr) (name string, c uint64, varLeft, ok bool) {
	a, b = stripZExt(a), stripZExt(b)
	if a.Kind == expr.KindVar && b.IsConst() {
		return a.Name, b.Val, true, true
	}
	if b.Kind == expr.KindVar && a.IsConst() {
		return b.Name, a.Val, false, true
	}
	return "", 0, false, false
}

func applyConstraint(c *expr.Expr, info map[string]*varInfo) {
	// Record interesting constants for all variables mentioned together with
	// constants anywhere inside the constraint.
	recordInteresting(c, info)

	if len(c.Args) != 2 {
		return
	}
	name, k, varLeft, ok := varConst(c.Args[0], c.Args[1])
	if !ok {
		return
	}
	vi, ok := info[name]
	if !ok {
		return
	}
	switch c.Kind {
	case expr.KindEq:
		if k > vi.dom.hi || k < vi.dom.lo {
			vi.dom = interval{1, 0} // empty
			return
		}
		vi.dom = interval{k, k}
	case expr.KindNe:
		vi.excluded[k] = true
	case expr.KindUlt:
		if varLeft { // var < k
			if k == 0 {
				vi.dom = interval{1, 0}
				return
			}
			vi.dom.hi = minU64(vi.dom.hi, k-1)
		} else { // k < var
			vi.dom.lo = maxU64(vi.dom.lo, k+1)
		}
	case expr.KindUle:
		if varLeft {
			vi.dom.hi = minU64(vi.dom.hi, k)
		} else {
			vi.dom.lo = maxU64(vi.dom.lo, k)
		}
	case expr.KindUgt:
		if varLeft { // var > k
			vi.dom.lo = maxU64(vi.dom.lo, k+1)
		} else { // k > var
			if k == 0 {
				vi.dom = interval{1, 0}
				return
			}
			vi.dom.hi = minU64(vi.dom.hi, k-1)
		}
	case expr.KindUge:
		if varLeft {
			vi.dom.lo = maxU64(vi.dom.lo, k)
		} else {
			vi.dom.hi = minU64(vi.dom.hi, k)
		}
	}
}

// recordInteresting walks the constraint once, collecting every constant it
// mentions, and attributes those constants to every variable it mentions.
func recordInteresting(c *expr.Expr, info map[string]*varInfo) {
	var consts []uint64
	var names []string
	var walk func(e *expr.Expr)
	walk = func(e *expr.Expr) {
		switch e.Kind {
		case expr.KindConst:
			consts = append(consts, e.Val)
		case expr.KindVar:
			names = append(names, e.Name)
		}
		for _, arg := range e.Args {
			walk(arg)
		}
	}
	walk(c)
	for _, name := range names {
		vi, ok := info[name]
		if !ok {
			continue
		}
		for _, k := range consts {
			vi.interesting[k] = true
		}
	}
}

func buildBase(names []string, info map[string]*varInfo, seed expr.Assignment) expr.Assignment {
	base := make(expr.Assignment, len(names))
	for _, name := range names {
		vi := info[name]
		v := vi.dom.lo
		if seed != nil {
			if sv, ok := seed[name]; ok && sv >= vi.dom.lo && sv <= vi.dom.hi && !vi.excluded[sv] {
				v = sv
			}
		}
		base[name] = v
	}
	// Carry over seed values for variables not mentioned by the constraints
	// so that the model stays close to the original input.
	for name, v := range seed {
		if _, ok := base[name]; !ok {
			base[name] = v
		}
	}
	return base
}

func satisfiesAll(constraints []*expr.Expr, a expr.Assignment) bool {
	for _, c := range constraints {
		if !c.EvalBool(a) {
			return false
		}
	}
	return true
}

func countSatisfied(constraints []*expr.Expr, a expr.Assignment) int {
	n := 0
	for _, c := range constraints {
		if c.EvalBool(a) {
			n++
		}
	}
	return n
}

// candidateSets builds, for each variable, an ordered list of candidate
// values drawn from its domain, the constants mentioned alongside it, the
// seed value, and a few pseudo-random samples.
func candidateSets(names []string, info map[string]*varInfo, seed expr.Assignment, rng *rand.Rand) [][]uint64 {
	sets := make([][]uint64, len(names))
	for i, name := range names {
		vi := info[name]
		seen := make(map[uint64]bool)
		var cs []uint64
		add := func(v uint64) {
			if v < vi.dom.lo || v > vi.dom.hi || vi.excluded[v] || seen[v] {
				return
			}
			seen[v] = true
			cs = append(cs, v)
		}
		if seed != nil {
			if sv, ok := seed[name]; ok {
				add(sv)
			}
		}
		add(vi.dom.lo)
		add(vi.dom.hi)
		for k := range vi.interesting {
			add(k)
			add(k + 1)
			if k > 0 {
				add(k - 1)
			}
		}
		add(0)
		add(1)
		// If the domain is small, cover it completely.
		if vi.dom.hi-vi.dom.lo < 64 {
			for v := vi.dom.lo; ; v++ {
				add(v)
				if v == vi.dom.hi {
					break
				}
			}
		} else {
			span := vi.dom.hi - vi.dom.lo
			for j := 0; j < 8; j++ {
				add(vi.dom.lo + uint64(rng.Int63())%span)
			}
		}
		sort.Slice(cs, func(a, b int) bool { return cs[a] < cs[b] })
		sets[i] = cs
	}
	return sets
}

func fullCoverage(names []string, info map[string]*varInfo, cands [][]uint64) bool {
	for i, name := range names {
		vi := info[name]
		span := vi.dom.hi - vi.dom.lo + 1
		covered := uint64(len(cands[i]))
		for v := vi.dom.lo; v <= vi.dom.hi && v >= vi.dom.lo; v++ {
			if vi.excluded[v] {
				span--
			}
			if v == vi.dom.hi {
				break
			}
		}
		if covered < span {
			return false
		}
	}
	return true
}

// enumerate exhaustively tries every combination from the candidate sets,
// bounded by budget assignments.
func enumerate(constraints []*expr.Expr, names []string, cands [][]uint64, base expr.Assignment, budget int) (expr.Assignment, int) {
	idx := make([]int, len(names))
	cur := base.Clone()
	steps := 0
	for {
		for i, name := range names {
			cur[name] = cands[i][idx[i]]
		}
		steps++
		if satisfiesAll(constraints, cur) {
			return cur, steps
		}
		if steps >= budget {
			return nil, steps
		}
		// Advance the mixed-radix counter.
		pos := 0
		for pos < len(idx) {
			idx[pos]++
			if idx[pos] < len(cands[pos]) {
				break
			}
			idx[pos] = 0
			pos++
		}
		if pos == len(idx) {
			return nil, steps
		}
	}
}

// localSearch performs a greedy hill-climb: repeatedly pick a violated
// constraint and try candidate values for each of its variables, keeping the
// change that satisfies the most constraints. Random restarts escape local
// optima.
func localSearch(constraints []*expr.Expr, names []string, info map[string]*varInfo, cands [][]uint64, base expr.Assignment, budget int, rng *rand.Rand) (expr.Assignment, int) {
	if budget <= 0 {
		return nil, 0
	}
	candByName := make(map[string][]uint64, len(names))
	for i, name := range names {
		candByName[name] = cands[i]
	}
	// searchValues returns the values worth trying for a variable: the full
	// domain when it is byte-sized (complete and cheap), otherwise the
	// candidate set plus an exponential neighbourhood of the current value,
	// which lets arithmetic relations over wide variables converge.
	searchValues := func(name string, current uint64) []uint64 {
		vi := info[name]
		if vi.dom.hi-vi.dom.lo <= 256 {
			vals := make([]uint64, 0, vi.dom.hi-vi.dom.lo+1)
			for v := vi.dom.lo; ; v++ {
				if !vi.excluded[v] {
					vals = append(vals, v)
				}
				if v == vi.dom.hi {
					break
				}
			}
			return vals
		}
		vals := append([]uint64(nil), candByName[name]...)
		for delta := uint64(1); delta != 0 && delta <= vi.dom.hi-vi.dom.lo; delta <<= 1 {
			if current+delta >= current && current+delta <= vi.dom.hi {
				vals = append(vals, current+delta)
			}
			if current >= delta && current-delta >= vi.dom.lo {
				vals = append(vals, current-delta)
			}
		}
		return vals
	}
	cur := base.Clone()
	best := countSatisfied(constraints, cur)
	steps := 0
	for steps < budget {
		if best == len(constraints) {
			return cur, steps
		}
		// Find a violated constraint.
		var violated *expr.Expr
		for _, c := range constraints {
			if !c.EvalBool(cur) {
				violated = c
				break
			}
		}
		if violated == nil {
			return cur, steps
		}
		improved := false
		for _, name := range violated.VarNames() {
			if _, ok := info[name]; !ok {
				continue
			}
			for _, v := range searchValues(name, cur[name]) {
				if v == cur[name] {
					continue
				}
				steps++
				old := cur[name]
				cur[name] = v
				score := countSatisfied(constraints, cur)
				if score > best {
					best = score
					improved = true
					break
				}
				cur[name] = old
				if steps >= budget {
					return nil, steps
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			// Random restart: perturb one variable of the violated constraint.
			vnames := violated.VarNames()
			if len(vnames) == 0 {
				return nil, steps
			}
			name := vnames[rng.Intn(len(vnames))]
			cs := candByName[name]
			if len(cs) == 0 {
				return nil, steps
			}
			cur[name] = cs[rng.Intn(len(cs))]
			best = countSatisfied(constraints, cur)
			steps++
		}
	}
	if satisfiesAll(constraints, cur) {
		return cur, steps
	}
	return nil, steps
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
