package solver

import (
	"testing"
	"testing/quick"

	"github.com/dice-project/dice/internal/concolic/expr"
)

func mustSat(t *testing.T, constraints []*expr.Expr, seed expr.Assignment) expr.Assignment {
	t.Helper()
	res := Solve(constraints, seed, Options{})
	if !res.Sat() {
		t.Fatalf("expected sat, got %v after %d steps", res.Status, res.Steps)
	}
	for i, c := range constraints {
		if !c.EvalBool(res.Model) {
			t.Fatalf("model %v does not satisfy constraint %d: %v", res.Model, i, c)
		}
	}
	return res.Model
}

func TestSolveEmpty(t *testing.T) {
	res := Solve(nil, expr.Assignment{"x": 7}, Options{})
	if !res.Sat() {
		t.Fatalf("empty conjunction should be sat")
	}
	if res.Model["x"] != 7 {
		t.Errorf("seed values should be preserved, got %v", res.Model)
	}
}

func TestSolveSingleEquality(t *testing.T) {
	x := expr.Var("x", 8)
	model := mustSat(t, []*expr.Expr{expr.Eq(x, expr.Const(42, 8))}, nil)
	if model["x"] != 42 {
		t.Errorf("x = %d, want 42", model["x"])
	}
}

func TestSolveRangeConstraints(t *testing.T) {
	x := expr.Var("x", 8)
	model := mustSat(t, []*expr.Expr{
		expr.Ugt(x, expr.Const(10, 8)),
		expr.Ult(x, expr.Const(13, 8)),
		expr.Ne(x, expr.Const(11, 8)),
	}, nil)
	if model["x"] != 12 {
		t.Errorf("x = %d, want 12", model["x"])
	}
}

func TestSolveUnsatByIntervals(t *testing.T) {
	x := expr.Var("x", 8)
	res := Solve([]*expr.Expr{
		expr.Ult(x, expr.Const(5, 8)),
		expr.Ugt(x, expr.Const(10, 8)),
	}, nil, Options{})
	if res.Status != StatusUnsat {
		t.Fatalf("expected unsat, got %v", res.Status)
	}
}

func TestSolveUnsatFalseConstant(t *testing.T) {
	res := Solve([]*expr.Expr{expr.False}, nil, Options{})
	if res.Status != StatusUnsat {
		t.Fatalf("expected unsat, got %v", res.Status)
	}
}

func TestSolveTwoVariableEquality(t *testing.T) {
	x := expr.Var("x", 8)
	y := expr.Var("y", 8)
	model := mustSat(t, []*expr.Expr{
		expr.Eq(expr.Add(x, y), expr.Const(10, 8)),
		expr.Eq(x, expr.Const(3, 8)),
	}, nil)
	if model["x"] != 3 || model["y"] != 7 {
		t.Errorf("model = %v, want x=3 y=7", model)
	}
}

func TestSolveArithmeticRelation(t *testing.T) {
	// 2*x + 1 == 21, so x == 10.
	x := expr.Var("x", 8)
	lhs := expr.Add(expr.Mul(x, expr.Const(2, 8)), expr.Const(1, 8))
	model := mustSat(t, []*expr.Expr{expr.Eq(lhs, expr.Const(21, 8))}, nil)
	if got := (2*model["x"] + 1) & 0xff; got != 21 {
		t.Errorf("2x+1 = %d, want 21 (x=%d)", got, model["x"])
	}
}

func TestSolveSeedGuidance(t *testing.T) {
	// The seed already satisfies the constraints; the solver must keep it.
	x := expr.Var("x", 16)
	y := expr.Var("y", 16)
	seed := expr.Assignment{"x": 179, "y": 65000}
	model := mustSat(t, []*expr.Expr{
		expr.Ugt(x, expr.Const(100, 16)),
		expr.Ugt(y, expr.Const(60000, 16)),
	}, seed)
	if model["x"] != 179 || model["y"] != 65000 {
		t.Errorf("solver should preserve satisfying seed, got %v", model)
	}
}

func TestSolveNegatedBranchTypical(t *testing.T) {
	// The typical concolic query: keep a prefix of constraints that the seed
	// satisfies and flip the last one.
	b0 := expr.Var("in[0]", 8)
	b1 := expr.Var("in[1]", 8)
	seed := expr.Assignment{"in[0]": 2, "in[1]": 0}
	constraints := []*expr.Expr{
		expr.Eq(b0, expr.Const(2, 8)),           // message type stays 2
		expr.Not(expr.Eq(b1, expr.Const(0, 8))), // flip: attr flags != 0
		expr.Ult(b1, expr.Const(0x80, 8)),       // but stay below 0x80
	}
	model := mustSat(t, constraints, seed)
	if model["in[0]"] != 2 {
		t.Errorf("prefix constraint violated: %v", model)
	}
	if model["in[1]"] == 0 || model["in[1]"] >= 0x80 {
		t.Errorf("negated branch not honoured: %v", model)
	}
}

func TestSolveZExtComparison(t *testing.T) {
	b := expr.Var("len", 8)
	wide := expr.ZExt(b, 16)
	model := mustSat(t, []*expr.Expr{
		expr.Ugt(wide, expr.Const(24, 16)),
		expr.Ule(wide, expr.Const(32, 16)),
	}, nil)
	if model["len"] <= 24 || model["len"] > 32 {
		t.Errorf("len = %d, want in (24,32]", model["len"])
	}
}

func TestSolveManyByteVariables(t *testing.T) {
	// Model a 16-byte symbolic region where a handful of bytes are
	// constrained, as happens for BGP UPDATE attribute parsing.
	var constraints []*expr.Expr
	seed := expr.Assignment{}
	for i := 0; i < 16; i++ {
		seed[byteVar(i).Name] = 0
	}
	constraints = append(constraints,
		expr.Eq(byteVar(0), expr.Const(0x40, 8)), // attr flags
		expr.Eq(byteVar(1), expr.Const(5, 8)),    // attr type LOCAL_PREF
		expr.Eq(byteVar(2), expr.Const(4, 8)),    // length
		expr.Ugt(byteVar(6), expr.Const(100, 8)), // low byte of pref > 100
		expr.Ult(byteVar(6), expr.Const(200, 8)), // and < 200
	)
	model := mustSat(t, constraints, seed)
	if model["in[0]"] != 0x40 || model["in[1]"] != 5 || model["in[2]"] != 4 {
		t.Errorf("fixed bytes wrong: %v", model)
	}
	if model["in[6]"] <= 100 || model["in[6]"] >= 200 {
		t.Errorf("in[6] = %d, want in (100,200)", model["in[6]"])
	}
	// Unconstrained bytes keep their seed value.
	if model["in[9]"] != 0 {
		t.Errorf("unconstrained byte drifted from seed: %v", model["in[9]"])
	}
}

func byteVar(i int) *expr.Expr {
	return expr.Var("in["+itoa(i)+"]", 8)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestSolveDeterministic(t *testing.T) {
	x := expr.Var("x", 8)
	y := expr.Var("y", 8)
	cs := []*expr.Expr{
		expr.Ugt(expr.Add(x, y), expr.Const(50, 8)),
		expr.Ult(x, expr.Const(100, 8)),
	}
	a := Solve(cs, nil, Options{Seed: 7})
	b := Solve(cs, nil, Options{Seed: 7})
	if !a.Sat() || !b.Sat() {
		t.Fatalf("expected sat")
	}
	if a.Model["x"] != b.Model["x"] || a.Model["y"] != b.Model["y"] {
		t.Errorf("solver not deterministic: %v vs %v", a.Model, b.Model)
	}
}

func TestSolveBudgetExhaustionReportsUnknown(t *testing.T) {
	// A hard constraint with a tiny budget should report unknown, not hang.
	x := expr.Var("x", 32)
	y := expr.Var("y", 32)
	cs := []*expr.Expr{
		expr.Eq(expr.Mul(x, y), expr.Const(7919*7907, 32)),
		expr.Ugt(x, expr.Const(1, 32)),
		expr.Ugt(y, expr.Const(1, 32)),
		expr.Ult(x, expr.Const(7919*7907, 32)),
	}
	res := Solve(cs, nil, Options{MaxSteps: 16, MaxEnumerate: 16})
	if res.Status == StatusUnsat {
		t.Fatalf("must not claim unsat for a satisfiable formula")
	}
}

// Property: whenever the solver claims SAT, the model really satisfies every
// constraint (checked for randomly generated interval constraints).
func TestQuickSatModelsAreValid(t *testing.T) {
	f := func(lo, hi, other uint8) bool {
		x := expr.Var("x", 8)
		y := expr.Var("y", 8)
		cs := []*expr.Expr{
			expr.Uge(x, expr.Const(uint64(minU8(lo, hi)), 8)),
			expr.Ule(x, expr.Const(uint64(maxU8(lo, hi)), 8)),
			expr.Eq(y, expr.Const(uint64(other), 8)),
		}
		res := Solve(cs, nil, Options{})
		if !res.Sat() {
			return false
		}
		for _, c := range cs {
			if !c.EvalBool(res.Model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: contradictory equalities are always reported unsat.
func TestQuickContradictionUnsat(t *testing.T) {
	f := func(a, b uint8) bool {
		if a == b {
			return true
		}
		x := expr.Var("x", 8)
		cs := []*expr.Expr{
			expr.Eq(x, expr.Const(uint64(a), 8)),
			expr.Eq(x, expr.Const(uint64(b), 8)),
		}
		res := Solve(cs, nil, Options{})
		return res.Status == StatusUnsat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func minU8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

func maxU8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}
