package concolic

import (
	"reflect"
	"testing"
)

// traceMachine builds a machine over a two-byte input region and records two
// symbolic branches, the minimal execution worth splitting across a process
// boundary.
func traceMachine(t *testing.T) *Machine {
	t.Helper()
	m := NewMachine(NewInput("update", []byte{0x07, 0x00}), MachineOptions{})
	sb := m.Bytes("update", nil)
	if !m.Branch("site/a", EqConst(sb.Byte(0), 7)) {
		t.Fatal("branch a should concretely hold")
	}
	if m.Branch("site/b", EqConst(sb.Byte(1), 7)) {
		t.Fatal("branch b should concretely fail")
	}
	return m
}

func TestExportTraceIncrement(t *testing.T) {
	m := traceMachine(t)

	full := m.ExportTrace(0)
	if len(full.Branches) != 2 {
		t.Fatalf("ExportTrace(0) carries %d branches, want 2", len(full.Branches))
	}
	inc := m.ExportTrace(1)
	if len(inc.Branches) != 1 || inc.Branches[0].Site != "site/b" {
		t.Fatalf("ExportTrace(1) = %+v, want only site/b", inc.Branches)
	}
	// The assignment, variable mapping and regions are always complete, even
	// on an incremental export.
	for _, tr := range []*Trace{full, inc} {
		if tr.Assignment["update[0]"] != 7 || tr.Assignment["update[1]"] != 0 {
			t.Errorf("assignment incomplete: %v", tr.Assignment)
		}
		if tr.Vars["update[0]"] != (VarRef{Region: "update", Index: 0}) {
			t.Errorf("vars incomplete: %v", tr.Vars)
		}
		if !reflect.DeepEqual(tr.Regions["update"], []byte{0x07, 0x00}) {
			t.Errorf("regions incomplete: %v", tr.Regions)
		}
	}
	// Out-of-range indices clamp instead of panicking.
	if got := m.ExportTrace(99); len(got.Branches) != 0 {
		t.Errorf("ExportTrace past end carries %d branches", len(got.Branches))
	}
	if got := m.ExportTrace(-3); len(got.Branches) != 2 {
		t.Errorf("ExportTrace(-3) carries %d branches, want 2", len(got.Branches))
	}

	// The export is a deep copy: branches recorded afterwards don't leak in.
	sb := m.Bytes("update", nil)
	m.Branch("site/c", EqConst(sb.Byte(0), 7))
	if len(full.Branches) != 2 {
		t.Errorf("exported trace grew with the machine")
	}

	if m.ExportTrace(0).Truncated {
		t.Errorf("trace reports truncation, machine is not truncated")
	}
	if (*Machine)(nil).ExportTrace(0) != nil {
		t.Errorf("nil machine must export a nil trace")
	}
}

// TestImportTraceMerge is the cross-process contract: a fresh machine over the
// same input that imports the exported trace must be indistinguishable from
// the machine that executed locally.
func TestImportTraceMerge(t *testing.T) {
	src := traceMachine(t)
	tr := src.ExportTrace(0)

	dst := NewMachine(NewInput("seed", []byte{1}), MachineOptions{})
	dst.ImportTrace(tr)

	if !reflect.DeepEqual(dst.Path(), src.Path()) {
		t.Errorf("imported path differs:\n got %+v\nwant %+v", dst.Path(), src.Path())
	}
	if !reflect.DeepEqual(dst.Assignment(), src.Assignment()) {
		t.Errorf("imported assignment differs: got %v want %v", dst.Assignment(), src.Assignment())
	}
	if !reflect.DeepEqual(dst.in.Region("update"), []byte{0x07, 0x00}) {
		t.Errorf("imported region not installed: %v", dst.in.Regions)
	}
	if dst.varRegion["update[0]"] != (regionRef{region: "update", index: 0}) {
		t.Errorf("imported var mapping wrong: %+v", dst.varRegion["update[0]"])
	}

	// Importing the same complete trace again must not duplicate anything but
	// the branch increment (which the exporter never resends in practice).
	dst.ImportTrace(src.ExportTrace(2))
	if got := len(dst.Path()); got != 2 {
		t.Errorf("re-import of empty increment changed path to %d branches", got)
	}
}

func TestImportTraceExistingWins(t *testing.T) {
	dst := NewMachine(NewInput("update", []byte{0xAA}), MachineOptions{})
	dst.Bytes("update", nil) // binds update[0]=0xAA

	tr := &Trace{
		Assignment: map[string]uint64{"update[0]": 1, "fresh": 2},
		Vars:       map[string]VarRef{"update[0]": {Region: "other", Index: 9}, "fresh": {Region: "f", Index: 0}},
		Regions:    map[string][]byte{"update": {0x55}, "extra": {0x01}},
		Truncated:  true,
	}
	dst.ImportTrace(tr)

	if dst.asn["update[0]"] != 0xAA {
		t.Errorf("import overwrote existing assignment: %v", dst.asn["update[0]"])
	}
	if dst.asn["fresh"] != 2 {
		t.Errorf("import dropped new assignment entry")
	}
	if dst.varRegion["update[0]"].region != "update" {
		t.Errorf("import overwrote existing var mapping: %+v", dst.varRegion["update[0]"])
	}
	if !reflect.DeepEqual(dst.in.Region("update"), []byte{0xAA}) {
		t.Errorf("import overwrote existing region bytes")
	}
	if !reflect.DeepEqual(dst.in.Region("extra"), []byte{0x01}) {
		t.Errorf("import did not install unknown region")
	}
	if !dst.Truncated() {
		t.Errorf("truncation must be sticky across import")
	}

	// Nil handling on both sides is a no-op, matching the concrete path.
	dst.ImportTrace(nil)
	(*Machine)(nil).ImportTrace(tr)
}
