package expr

import (
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	tests := []struct {
		name string
		got  *Expr
		want uint64
	}{
		{"add", Add(Const(3, 8), Const(4, 8)), 7},
		{"add-wrap", Add(Const(255, 8), Const(2, 8)), 1},
		{"sub", Sub(Const(10, 16), Const(3, 16)), 7},
		{"sub-wrap", Sub(Const(0, 8), Const(1, 8)), 255},
		{"mul", Mul(Const(6, 8), Const(7, 8)), 42},
		{"udiv", UDiv(Const(20, 8), Const(3, 8)), 6},
		{"udiv-zero", UDiv(Const(20, 8), Const(0, 8)), 255},
		{"urem", URem(Const(20, 8), Const(3, 8)), 2},
		{"urem-zero", URem(Const(20, 8), Const(0, 8)), 20},
		{"and", BVAnd(Const(0xf0, 8), Const(0x3c, 8)), 0x30},
		{"or", BVOr(Const(0xf0, 8), Const(0x0c, 8)), 0xfc},
		{"xor", BVXor(Const(0xff, 8), Const(0x0f, 8)), 0xf0},
		{"not", BVNot(Const(0x0f, 8)), 0xf0},
		{"shl", Shl(Const(1, 8), 3), 8},
		{"lshr", LShr(Const(0x80, 8), 4), 8},
		{"zext", ZExt(Const(0xff, 8), 16), 0xff},
		{"extract", Extract(Const(0xabcd, 16), 8, 8), 0xab},
		{"concat", Concat(Const(0xab, 8), Const(0xcd, 8)), 0xabcd},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.IsConst() {
				t.Fatalf("expected constant result, got %v", tt.got)
			}
			if tt.got.Val != tt.want {
				t.Errorf("got %d, want %d", tt.got.Val, tt.want)
			}
		})
	}
}

func TestComparisonFolding(t *testing.T) {
	tests := []struct {
		name string
		got  *Expr
		want bool
	}{
		{"eq-true", Eq(Const(5, 8), Const(5, 8)), true},
		{"eq-false", Eq(Const(5, 8), Const(6, 8)), false},
		{"ne", Ne(Const(5, 8), Const(6, 8)), true},
		{"ult", Ult(Const(5, 8), Const(6, 8)), true},
		{"ule", Ule(Const(6, 8), Const(6, 8)), true},
		{"ugt", Ugt(Const(7, 8), Const(6, 8)), true},
		{"uge", Uge(Const(5, 8), Const(6, 8)), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got.Kind != KindBool {
				t.Fatalf("expected folded boolean, got %v", tt.got)
			}
			if (tt.got.Val != 0) != tt.want {
				t.Errorf("got %v, want %v", tt.got.Val != 0, tt.want)
			}
		})
	}
}

func TestIdentitySimplifications(t *testing.T) {
	x := Var("x", 8)
	if got := Add(x, Const(0, 8)); got != x {
		t.Errorf("x+0 not simplified to x: %v", got)
	}
	if got := Mul(x, Const(1, 8)); got != x {
		t.Errorf("x*1 not simplified to x: %v", got)
	}
	if got := Mul(x, Const(0, 8)); !got.IsConst() || got.Val != 0 {
		t.Errorf("x*0 not simplified to 0: %v", got)
	}
	if got := BVAnd(x, Const(0xff, 8)); got != x {
		t.Errorf("x&0xff not simplified to x: %v", got)
	}
	if got := BVOr(x, Const(0, 8)); got != x {
		t.Errorf("x|0 not simplified to x: %v", got)
	}
	if got := And(Eq(x, Const(1, 8)), True); got.Kind != KindEq {
		t.Errorf("p && true not simplified: %v", got)
	}
	if got := Or(Eq(x, Const(1, 8)), True); got != True {
		t.Errorf("p || true not simplified: %v", got)
	}
	if got := Not(Not(Eq(x, Const(1, 8)))); got.Kind != KindEq {
		t.Errorf("double negation not simplified: %v", got)
	}
	if got := Not(Ult(x, Const(3, 8))); got.Kind != KindUge {
		t.Errorf("not(<) should become >=: %v", got)
	}
}

func TestEval(t *testing.T) {
	x := Var("x", 8)
	y := Var("y", 8)
	a := Assignment{"x": 10, "y": 3}

	e := Add(Mul(x, Const(2, 8)), y) // 2x + y = 23
	if got := e.Eval(a); got != 23 {
		t.Errorf("eval 2x+y = %d, want 23", got)
	}
	cond := And(Ult(x, Const(20, 8)), Eq(y, Const(3, 8)))
	if !cond.EvalBool(a) {
		t.Errorf("condition should hold under %v", a)
	}
	ite := Ite(Ugt(x, y), x, y)
	if got := ite.Eval(a); got != 10 {
		t.Errorf("ite = %d, want 10", got)
	}
}

func TestEvalUnboundVariableIsZero(t *testing.T) {
	x := Var("x", 8)
	if got := Add(x, Const(5, 8)).Eval(Assignment{}); got != 5 {
		t.Errorf("unbound var should evaluate to 0, got sum %d", got)
	}
}

func TestVarCollection(t *testing.T) {
	x := Var("x", 8)
	y := Var("y", 16)
	e := And(Eq(ZExt(x, 16), y), Ult(y, Const(100, 16)))
	names := e.VarNames()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Errorf("VarNames = %v, want [x y]", names)
	}
	set := make(map[string]uint8)
	e.Vars(set)
	if set["x"] != 8 || set["y"] != 16 {
		t.Errorf("Vars widths = %v", set)
	}
}

func TestSubstitute(t *testing.T) {
	x := Var("x", 8)
	y := Var("y", 8)
	e := Add(x, y)
	got := Substitute(e, map[string]*Expr{"x": Const(4, 8)})
	val := got.Eval(Assignment{"y": 6})
	if val != 10 {
		t.Errorf("substituted expr evaluates to %d, want 10", val)
	}
	// Original is unchanged.
	if e.Args[0].Kind != KindVar {
		t.Errorf("substitute mutated the original expression")
	}
}

func TestEqualStructural(t *testing.T) {
	a := Add(Var("x", 8), Const(1, 8))
	b := Add(Var("x", 8), Const(1, 8))
	c := Add(Var("x", 8), Const(2, 8))
	if !Equal(a, b) {
		t.Errorf("structurally equal expressions reported unequal")
	}
	if Equal(a, c) {
		t.Errorf("different expressions reported equal")
	}
}

func TestString(t *testing.T) {
	e := Eq(Add(Var("x", 8), Const(1, 8)), Const(5, 8))
	s := e.String()
	if s == "" {
		t.Fatal("empty string rendering")
	}
}

func TestInvalidConstructionPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero-width const", func() { Const(1, 0) })
	mustPanic("wide const", func() { Const(1, 65) })
	mustPanic("empty var name", func() { Var("", 8) })
	mustPanic("width mismatch", func() { Add(Var("x", 8), Var("y", 16)) })
	mustPanic("not non-bool", func() { Not(Var("x", 8)) })
	mustPanic("extract out of range", func() { Extract(Var("x", 8), 4, 8) })
	mustPanic("concat too wide", func() { Concat(Var("x", 40), Var("y", 32)) })
}

// Property: constant folding of Add agrees with Eval of the unfolded form.
func TestQuickAddFoldMatchesEval(t *testing.T) {
	f := func(a, b uint8) bool {
		folded := Add(Const(uint64(a), 8), Const(uint64(b), 8))
		viaVars := Add(Var("a", 8), Var("b", 8)).Eval(Assignment{"a": uint64(a), "b": uint64(b)})
		return folded.Val == viaVars
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Not(e) always evaluates to the negation of e.
func TestQuickNotNegates(t *testing.T) {
	f := func(a, b uint8) bool {
		x := Var("x", 8)
		y := Var("y", 8)
		asn := Assignment{"x": uint64(a), "y": uint64(b)}
		for _, e := range []*Expr{Eq(x, y), Ult(x, y), Ule(x, y), Ugt(x, y), Uge(x, y), Ne(x, y)} {
			if Not(e).EvalBool(asn) == e.EvalBool(asn) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Concat then Extract recovers the original parts.
func TestQuickConcatExtractRoundTrip(t *testing.T) {
	f := func(hi, lo uint8) bool {
		c := Concat(Const(uint64(hi), 8), Const(uint64(lo), 8))
		gotHi := Extract(c, 8, 8).Val
		gotLo := Extract(c, 0, 8).Val
		return gotHi == uint64(hi) && gotLo == uint64(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: evaluation is deterministic and bounded by the width mask.
func TestQuickEvalWithinWidth(t *testing.T) {
	f := func(a, b uint16) bool {
		x := Var("x", 12)
		y := Var("y", 12)
		asn := Assignment{"x": uint64(a), "y": uint64(b)}
		for _, e := range []*Expr{Add(x, y), Sub(x, y), Mul(x, y), BVXor(x, y), BVNot(x)} {
			if e.Eval(asn) > 0xfff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
