// Package expr implements the symbolic expression language used by the
// concolic execution engine.
//
// Expressions form an immutable DAG. Every expression has a sort: either a
// boolean or a fixed-width bitvector of 1 to 64 bits. The package provides
// smart constructors that perform light-weight simplification (constant
// folding, identity and absorption rules), evaluation of an expression under
// a concrete assignment of its variables, and utilities to collect the free
// variables of an expression.
//
// The engine marks program inputs (for DiCE, the bytes of a BGP UPDATE
// message and the route-preference condition) as symbolic variables. The
// instrumented code then combines those variables into expressions as it
// computes on them, and records boolean expressions as branch constraints.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the expression node kinds.
type Kind uint8

// Expression node kinds.
const (
	KindInvalid Kind = iota

	// Leaves.
	KindConst // bitvector constant (Width, Val)
	KindBool  // boolean constant (Val is 0 or 1)
	KindVar   // bitvector variable (Name, Width)

	// Bitvector arithmetic.
	KindAdd
	KindSub
	KindMul
	KindUDiv
	KindURem

	// Bitvector bitwise operations.
	KindBVAnd
	KindBVOr
	KindBVXor
	KindBVNot
	KindShl
	KindLShr

	// Width changing operations.
	KindZExt    // zero extend Args[0] to Width
	KindExtract // extract bits [Lo, Lo+Width) from Args[0]
	KindConcat  // Args[0] is the high part, Args[1] the low part

	// Comparisons (boolean result).
	KindEq
	KindNe
	KindUlt
	KindUle
	KindUgt
	KindUge

	// Boolean connectives.
	KindNot
	KindAnd
	KindOr
	KindXor

	// If-then-else over bitvectors: Args[0] is the boolean condition,
	// Args[1] the "then" value and Args[2] the "else" value.
	KindIte
)

var kindNames = map[Kind]string{
	KindConst:   "const",
	KindBool:    "bool",
	KindVar:     "var",
	KindAdd:     "add",
	KindSub:     "sub",
	KindMul:     "mul",
	KindUDiv:    "udiv",
	KindURem:    "urem",
	KindBVAnd:   "bvand",
	KindBVOr:    "bvor",
	KindBVXor:   "bvxor",
	KindBVNot:   "bvnot",
	KindShl:     "shl",
	KindLShr:    "lshr",
	KindZExt:    "zext",
	KindExtract: "extract",
	KindConcat:  "concat",
	KindEq:      "=",
	KindNe:      "!=",
	KindUlt:     "<",
	KindUle:     "<=",
	KindUgt:     ">",
	KindUge:     ">=",
	KindNot:     "not",
	KindAnd:     "and",
	KindOr:      "or",
	KindXor:     "xor",
	KindIte:     "ite",
}

// String returns the mnemonic for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Expr is a node of the immutable expression DAG. Expressions must be built
// through the package constructors; the zero value is not a valid expression.
type Expr struct {
	Kind  Kind
	Width uint8  // result width in bits for bitvector sorts; 0 for booleans
	Val   uint64 // constant value for KindConst/KindBool; Lo for KindExtract
	Name  string // variable name for KindVar
	Args  []*Expr
}

// IsBool reports whether the expression has boolean sort.
func (e *Expr) IsBool() bool {
	switch e.Kind {
	case KindBool, KindEq, KindNe, KindUlt, KindUle, KindUgt, KindUge,
		KindNot, KindAnd, KindOr, KindXor:
		return true
	}
	return false
}

// IsConst reports whether the expression is a constant (bitvector or boolean).
func (e *Expr) IsConst() bool {
	return e.Kind == KindConst || e.Kind == KindBool
}

// mask returns the bitmask for a width in bits.
func mask(width uint8) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// Const returns a bitvector constant of the given width. The value is
// truncated to the width.
func Const(val uint64, width uint8) *Expr {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("expr: invalid constant width %d", width))
	}
	return &Expr{Kind: KindConst, Width: width, Val: val & mask(width)}
}

// Bool returns a boolean constant.
func Bool(v bool) *Expr {
	val := uint64(0)
	if v {
		val = 1
	}
	return &Expr{Kind: KindBool, Val: val}
}

// True and False are the boolean constants.
var (
	True  = Bool(true)
	False = Bool(false)
)

// Var returns a bitvector variable with the given name and width.
func Var(name string, width uint8) *Expr {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("expr: invalid variable width %d", width))
	}
	if name == "" {
		panic("expr: empty variable name")
	}
	return &Expr{Kind: KindVar, Width: width, Name: name}
}

func checkSameWidth(op string, a, b *Expr) {
	if a.Width != b.Width {
		panic(fmt.Sprintf("expr: %s operand width mismatch: %d vs %d", op, a.Width, b.Width))
	}
}

func binaryBV(kind Kind, a, b *Expr) *Expr {
	checkSameWidth(kind.String(), a, b)
	return &Expr{Kind: kind, Width: a.Width, Args: []*Expr{a, b}}
}

// Add returns a+b (modular, width of the operands).
func Add(a, b *Expr) *Expr {
	checkSameWidth("add", a, b)
	if a.IsConst() && b.IsConst() {
		return Const(a.Val+b.Val, a.Width)
	}
	if a.IsConst() && a.Val == 0 {
		return b
	}
	if b.IsConst() && b.Val == 0 {
		return a
	}
	return binaryBV(KindAdd, a, b)
}

// Sub returns a-b (modular).
func Sub(a, b *Expr) *Expr {
	checkSameWidth("sub", a, b)
	if a.IsConst() && b.IsConst() {
		return Const(a.Val-b.Val, a.Width)
	}
	if b.IsConst() && b.Val == 0 {
		return a
	}
	return binaryBV(KindSub, a, b)
}

// Mul returns a*b (modular).
func Mul(a, b *Expr) *Expr {
	checkSameWidth("mul", a, b)
	if a.IsConst() && b.IsConst() {
		return Const(a.Val*b.Val, a.Width)
	}
	if a.IsConst() && a.Val == 1 {
		return b
	}
	if b.IsConst() && b.Val == 1 {
		return a
	}
	if (a.IsConst() && a.Val == 0) || (b.IsConst() && b.Val == 0) {
		return Const(0, a.Width)
	}
	return binaryBV(KindMul, a, b)
}

// UDiv returns the unsigned quotient a/b. Division by zero evaluates to the
// all-ones value of the operand width, matching SMT-LIB bitvector semantics.
func UDiv(a, b *Expr) *Expr {
	checkSameWidth("udiv", a, b)
	if a.IsConst() && b.IsConst() {
		if b.Val == 0 {
			return Const(mask(a.Width), a.Width)
		}
		return Const(a.Val/b.Val, a.Width)
	}
	return binaryBV(KindUDiv, a, b)
}

// URem returns the unsigned remainder a%b. Remainder by zero evaluates to a.
func URem(a, b *Expr) *Expr {
	checkSameWidth("urem", a, b)
	if a.IsConst() && b.IsConst() {
		if b.Val == 0 {
			return a
		}
		return Const(a.Val%b.Val, a.Width)
	}
	return binaryBV(KindURem, a, b)
}

// BVAnd returns the bitwise AND of a and b.
func BVAnd(a, b *Expr) *Expr {
	checkSameWidth("bvand", a, b)
	if a.IsConst() && b.IsConst() {
		return Const(a.Val&b.Val, a.Width)
	}
	if a.IsConst() && a.Val == mask(a.Width) {
		return b
	}
	if b.IsConst() && b.Val == mask(b.Width) {
		return a
	}
	if (a.IsConst() && a.Val == 0) || (b.IsConst() && b.Val == 0) {
		return Const(0, a.Width)
	}
	return binaryBV(KindBVAnd, a, b)
}

// BVOr returns the bitwise OR of a and b.
func BVOr(a, b *Expr) *Expr {
	checkSameWidth("bvor", a, b)
	if a.IsConst() && b.IsConst() {
		return Const(a.Val|b.Val, a.Width)
	}
	if a.IsConst() && a.Val == 0 {
		return b
	}
	if b.IsConst() && b.Val == 0 {
		return a
	}
	return binaryBV(KindBVOr, a, b)
}

// BVXor returns the bitwise XOR of a and b.
func BVXor(a, b *Expr) *Expr {
	checkSameWidth("bvxor", a, b)
	if a.IsConst() && b.IsConst() {
		return Const(a.Val^b.Val, a.Width)
	}
	return binaryBV(KindBVXor, a, b)
}

// BVNot returns the bitwise complement of a.
func BVNot(a *Expr) *Expr {
	if a.IsConst() {
		return Const(^a.Val, a.Width)
	}
	return &Expr{Kind: KindBVNot, Width: a.Width, Args: []*Expr{a}}
}

// Shl returns a shifted left by the constant amount of bits.
func Shl(a *Expr, amount uint8) *Expr {
	if amount == 0 {
		return a
	}
	if a.IsConst() {
		return Const(a.Val<<amount, a.Width)
	}
	return &Expr{Kind: KindShl, Width: a.Width, Val: uint64(amount), Args: []*Expr{a}}
}

// LShr returns a logically shifted right by the constant amount of bits.
func LShr(a *Expr, amount uint8) *Expr {
	if amount == 0 {
		return a
	}
	if a.IsConst() {
		return Const(a.Val>>amount, a.Width)
	}
	return &Expr{Kind: KindLShr, Width: a.Width, Val: uint64(amount), Args: []*Expr{a}}
}

// ZExt zero-extends a to the given width. Extending to the same width
// returns a unchanged.
func ZExt(a *Expr, width uint8) *Expr {
	if width < a.Width {
		panic(fmt.Sprintf("expr: zext to smaller width %d < %d", width, a.Width))
	}
	if width == a.Width {
		return a
	}
	if a.IsConst() {
		return Const(a.Val, width)
	}
	return &Expr{Kind: KindZExt, Width: width, Args: []*Expr{a}}
}

// Extract returns bits [lo, lo+width) of a.
func Extract(a *Expr, lo, width uint8) *Expr {
	if lo+width > a.Width {
		panic(fmt.Sprintf("expr: extract [%d,%d) out of range for width %d", lo, lo+width, a.Width))
	}
	if lo == 0 && width == a.Width {
		return a
	}
	if a.IsConst() {
		return Const(a.Val>>lo, width)
	}
	return &Expr{Kind: KindExtract, Width: width, Val: uint64(lo), Args: []*Expr{a}}
}

// Concat concatenates hi and lo, with hi occupying the most significant bits.
func Concat(hi, lo *Expr) *Expr {
	total := hi.Width + lo.Width
	if total > 64 {
		panic(fmt.Sprintf("expr: concat result width %d exceeds 64", total))
	}
	if hi.IsConst() && lo.IsConst() {
		return Const(hi.Val<<lo.Width|lo.Val, total)
	}
	return &Expr{Kind: KindConcat, Width: total, Args: []*Expr{hi, lo}}
}

func comparison(kind Kind, a, b *Expr, fold func(x, y uint64) bool) *Expr {
	checkSameWidth(kind.String(), a, b)
	if a.IsConst() && b.IsConst() {
		return Bool(fold(a.Val, b.Val))
	}
	return &Expr{Kind: kind, Args: []*Expr{a, b}}
}

// Eq returns the boolean a == b.
func Eq(a, b *Expr) *Expr {
	return comparison(KindEq, a, b, func(x, y uint64) bool { return x == y })
}

// Ne returns the boolean a != b.
func Ne(a, b *Expr) *Expr {
	return comparison(KindNe, a, b, func(x, y uint64) bool { return x != y })
}

// Ult returns the boolean a < b (unsigned).
func Ult(a, b *Expr) *Expr {
	return comparison(KindUlt, a, b, func(x, y uint64) bool { return x < y })
}

// Ule returns the boolean a <= b (unsigned).
func Ule(a, b *Expr) *Expr {
	return comparison(KindUle, a, b, func(x, y uint64) bool { return x <= y })
}

// Ugt returns the boolean a > b (unsigned).
func Ugt(a, b *Expr) *Expr {
	return comparison(KindUgt, a, b, func(x, y uint64) bool { return x > y })
}

// Uge returns the boolean a >= b (unsigned).
func Uge(a, b *Expr) *Expr {
	return comparison(KindUge, a, b, func(x, y uint64) bool { return x >= y })
}

// Not returns the boolean negation of a. Double negation and negation of
// comparisons are simplified structurally.
func Not(a *Expr) *Expr {
	if !a.IsBool() {
		panic("expr: not applied to non-boolean")
	}
	switch a.Kind {
	case KindBool:
		return Bool(a.Val == 0)
	case KindNot:
		return a.Args[0]
	case KindEq:
		return &Expr{Kind: KindNe, Args: a.Args}
	case KindNe:
		return &Expr{Kind: KindEq, Args: a.Args}
	case KindUlt:
		return &Expr{Kind: KindUge, Args: a.Args}
	case KindUle:
		return &Expr{Kind: KindUgt, Args: a.Args}
	case KindUgt:
		return &Expr{Kind: KindUle, Args: a.Args}
	case KindUge:
		return &Expr{Kind: KindUlt, Args: a.Args}
	}
	return &Expr{Kind: KindNot, Args: []*Expr{a}}
}

func boolBinary(kind Kind, a, b *Expr) *Expr {
	if !a.IsBool() || !b.IsBool() {
		panic("expr: boolean connective applied to non-boolean")
	}
	return &Expr{Kind: kind, Args: []*Expr{a, b}}
}

// And returns the boolean conjunction a && b.
func And(a, b *Expr) *Expr {
	if a.Kind == KindBool {
		if a.Val == 0 {
			return False
		}
		return b
	}
	if b.Kind == KindBool {
		if b.Val == 0 {
			return False
		}
		return a
	}
	return boolBinary(KindAnd, a, b)
}

// Or returns the boolean disjunction a || b.
func Or(a, b *Expr) *Expr {
	if a.Kind == KindBool {
		if a.Val != 0 {
			return True
		}
		return b
	}
	if b.Kind == KindBool {
		if b.Val != 0 {
			return True
		}
		return a
	}
	return boolBinary(KindOr, a, b)
}

// Xor returns the boolean exclusive-or of a and b.
func Xor(a, b *Expr) *Expr {
	if a.Kind == KindBool && b.Kind == KindBool {
		return Bool((a.Val ^ b.Val) != 0)
	}
	return boolBinary(KindXor, a, b)
}

// Ite returns the bitvector "if cond then a else b".
func Ite(cond, a, b *Expr) *Expr {
	if !cond.IsBool() {
		panic("expr: ite condition must be boolean")
	}
	checkSameWidth("ite", a, b)
	if cond.Kind == KindBool {
		if cond.Val != 0 {
			return a
		}
		return b
	}
	return &Expr{Kind: KindIte, Width: a.Width, Args: []*Expr{cond, a, b}}
}

// Assignment maps variable names to concrete values.
type Assignment map[string]uint64

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Eval evaluates the expression under the assignment. Unbound variables
// evaluate to zero. Boolean results are 0 or 1.
func (e *Expr) Eval(a Assignment) uint64 {
	switch e.Kind {
	case KindConst, KindBool:
		return e.Val
	case KindVar:
		return a[e.Name] & mask(e.Width)
	case KindAdd:
		return (e.Args[0].Eval(a) + e.Args[1].Eval(a)) & mask(e.Width)
	case KindSub:
		return (e.Args[0].Eval(a) - e.Args[1].Eval(a)) & mask(e.Width)
	case KindMul:
		return (e.Args[0].Eval(a) * e.Args[1].Eval(a)) & mask(e.Width)
	case KindUDiv:
		d := e.Args[1].Eval(a)
		if d == 0 {
			return mask(e.Width)
		}
		return e.Args[0].Eval(a) / d
	case KindURem:
		d := e.Args[1].Eval(a)
		if d == 0 {
			return e.Args[0].Eval(a)
		}
		return e.Args[0].Eval(a) % d
	case KindBVAnd:
		return e.Args[0].Eval(a) & e.Args[1].Eval(a)
	case KindBVOr:
		return e.Args[0].Eval(a) | e.Args[1].Eval(a)
	case KindBVXor:
		return e.Args[0].Eval(a) ^ e.Args[1].Eval(a)
	case KindBVNot:
		return ^e.Args[0].Eval(a) & mask(e.Width)
	case KindShl:
		return (e.Args[0].Eval(a) << e.Val) & mask(e.Width)
	case KindLShr:
		return e.Args[0].Eval(a) >> e.Val
	case KindZExt:
		return e.Args[0].Eval(a)
	case KindExtract:
		return (e.Args[0].Eval(a) >> e.Val) & mask(e.Width)
	case KindConcat:
		return (e.Args[0].Eval(a)<<e.Args[1].Width | e.Args[1].Eval(a)) & mask(e.Width)
	case KindEq:
		return boolVal(e.Args[0].Eval(a) == e.Args[1].Eval(a))
	case KindNe:
		return boolVal(e.Args[0].Eval(a) != e.Args[1].Eval(a))
	case KindUlt:
		return boolVal(e.Args[0].Eval(a) < e.Args[1].Eval(a))
	case KindUle:
		return boolVal(e.Args[0].Eval(a) <= e.Args[1].Eval(a))
	case KindUgt:
		return boolVal(e.Args[0].Eval(a) > e.Args[1].Eval(a))
	case KindUge:
		return boolVal(e.Args[0].Eval(a) >= e.Args[1].Eval(a))
	case KindNot:
		return 1 - e.Args[0].Eval(a)
	case KindAnd:
		return e.Args[0].Eval(a) & e.Args[1].Eval(a)
	case KindOr:
		return e.Args[0].Eval(a) | e.Args[1].Eval(a)
	case KindXor:
		return e.Args[0].Eval(a) ^ e.Args[1].Eval(a)
	case KindIte:
		if e.Args[0].Eval(a) != 0 {
			return e.Args[1].Eval(a)
		}
		return e.Args[2].Eval(a)
	}
	panic(fmt.Sprintf("expr: eval of invalid kind %v", e.Kind))
}

// EvalBool evaluates a boolean expression under the assignment.
func (e *Expr) EvalBool(a Assignment) bool {
	return e.Eval(a) != 0
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Vars appends the names of the free variables of e to the set.
func (e *Expr) Vars(set map[string]uint8) {
	switch e.Kind {
	case KindVar:
		set[e.Name] = e.Width
	default:
		for _, arg := range e.Args {
			arg.Vars(set)
		}
	}
}

// VarNames returns the sorted names of the free variables of e.
func (e *Expr) VarNames() []string {
	set := make(map[string]uint8)
	e.Vars(set)
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Size returns the number of nodes of the expression tree (not the DAG).
func (e *Expr) Size() int {
	n := 1
	for _, arg := range e.Args {
		n += arg.Size()
	}
	return n
}

// String renders the expression in a compact prefix syntax for debugging.
func (e *Expr) String() string {
	switch e.Kind {
	case KindConst:
		return fmt.Sprintf("%d:bv%d", e.Val, e.Width)
	case KindBool:
		if e.Val != 0 {
			return "true"
		}
		return "false"
	case KindVar:
		return fmt.Sprintf("%s:bv%d", e.Name, e.Width)
	case KindShl, KindLShr, KindExtract:
		return fmt.Sprintf("(%s %s %d)", e.Kind, e.Args[0], e.Val)
	}
	parts := make([]string, 0, len(e.Args)+1)
	parts = append(parts, e.Kind.String())
	for _, arg := range e.Args {
		parts = append(parts, arg.String())
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// Equal reports structural equality of two expressions.
func Equal(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Kind != b.Kind || a.Width != b.Width || a.Val != b.Val || a.Name != b.Name {
		return false
	}
	if len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !Equal(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// Substitute returns a copy of e with every occurrence of the named variables
// replaced by the given expressions. Variables not present in the map are
// left unchanged.
func Substitute(e *Expr, repl map[string]*Expr) *Expr {
	switch e.Kind {
	case KindConst, KindBool:
		return e
	case KindVar:
		if r, ok := repl[e.Name]; ok {
			return r
		}
		return e
	}
	args := make([]*Expr, len(e.Args))
	changed := false
	for i, arg := range e.Args {
		args[i] = Substitute(arg, repl)
		if args[i] != arg {
			changed = true
		}
	}
	if !changed {
		return e
	}
	out := *e
	out.Args = args
	return &out
}
