package concolic

import (
	"testing"
)

// drainOrder enqueues n candidates with the given scores and returns the seq
// order in which the frontier hands them back.
func drainOrder(t testing.TB, scores []int) []int {
	e := NewExplorer(func(in *Input, m *Machine) error { return nil }, ExplorerOptions{MaxQueue: len(scores) + 1})
	for i, s := range scores {
		e.enqueue(&candidate{input: NewInput("in", []byte{byte(i), byte(i >> 8), byte(i >> 16)}), score: s})
	}
	var out []int
	for c := e.dequeue(); c != nil; c = e.dequeue() {
		out = append(out, c.seq)
	}
	return out
}

// TestFrontierOrderDeterministic pins the frontier's contract: highest score
// first, ties broken by insertion order. The heap-based frontier must hand
// candidates back in exactly the sequence the old linear scan did.
func TestFrontierOrderDeterministic(t *testing.T) {
	scores := []int{5, 1, 5, 9, 1, 9, 9, 0, 5}
	want := []int{3, 5, 6, 0, 2, 8, 1, 4, 7} // score desc, seq asc within ties
	got := drainOrder(t, scores)
	if len(got) != len(want) {
		t.Fatalf("drained %d candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

// BenchmarkFrontierEnqueueDequeue measures frontier maintenance on a large
// frontier: fill to size, then interleave enqueue/dequeue as generational
// search does. The linear-scan dequeue this replaced was O(n) per pop (plus
// an O(n) splice); the heap is O(log n).
func BenchmarkFrontierEnqueueDequeue(b *testing.B) {
	const size = 4096
	e := NewExplorer(func(in *Input, m *Machine) error { return nil }, ExplorerOptions{MaxQueue: size * 2})
	mk := func(i int) *candidate {
		return &candidate{
			input: NewInput("in", []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)}),
			score: (i * 2654435761) % 1009, // varied, deterministic scores
		}
	}
	for i := 0; i < size; i++ {
		e.enqueue(mk(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := e.dequeue()
		if c == nil {
			b.Fatal("frontier drained")
		}
		// Re-insert a fresh candidate so the frontier stays at steady-state
		// size, as during exploration.
		e.enqueue(mk(size + i))
	}
}
