package concolic

import (
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/dice-project/dice/internal/concolic/expr"
)

// Input is the concrete test input fed to an instrumented program. It is a
// set of named byte regions: for DiCE the main region is the raw BGP UPDATE
// message, and single-byte "choice/..." regions model symbolic decisions such
// as the "is this route locally most preferred" condition from the paper.
type Input struct {
	Regions map[string][]byte
}

// NewInput returns an Input with the given primary region.
func NewInput(region string, data []byte) *Input {
	return &Input{Regions: map[string][]byte{region: append([]byte(nil), data...)}}
}

// Clone returns a deep copy of the input.
func (in *Input) Clone() *Input {
	out := &Input{Regions: make(map[string][]byte, len(in.Regions))}
	for name, data := range in.Regions {
		out.Regions[name] = append([]byte(nil), data...)
	}
	return out
}

// Region returns the named region, or nil when absent.
func (in *Input) Region(name string) []byte { return in.Regions[name] }

// SetRegion replaces the named region.
func (in *Input) SetRegion(name string, data []byte) {
	if in.Regions == nil {
		in.Regions = make(map[string][]byte)
	}
	in.Regions[name] = append([]byte(nil), data...)
}

// Hash returns a stable hash of the input contents, used for deduplication.
func (in *Input) Hash() uint64 {
	h := fnv.New64a()
	names := make([]string, 0, len(in.Regions))
	for name := range in.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write(in.Regions[name])
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

// Size returns the total number of input bytes across regions.
func (in *Input) Size() int {
	n := 0
	for _, data := range in.Regions {
		n += len(data)
	}
	return n
}

// Branch records one conditional decision taken during an execution.
type Branch struct {
	// Site identifies the program location (e.g. "bgp/update.localpref.cmp").
	Site string
	// Cond is the symbolic condition in the direction it was taken: it holds
	// on the current execution.
	Cond *expr.Expr
	// Taken is the concrete truth value that was observed.
	Taken bool
}

// Machine is the per-execution concolic state: the input, the mapping from
// symbolic variable names to their concrete values, and the path condition
// recorded so far. A nil *Machine is valid and behaves as a pure concrete
// execution environment with no recording, which is how the live (deployed)
// node runs.
type Machine struct {
	in          *Input
	asn         expr.Assignment
	path        []Branch
	varRegion   map[string]regionRef
	maxBranches int
	truncated   bool
}

type regionRef struct {
	region string
	index  int
}

// MachineOptions configure a Machine.
type MachineOptions struct {
	// MaxBranches bounds the number of recorded branches per execution to
	// keep path conditions manageable (the paper's "small inputs" insight
	// keeps paths short; this is a backstop). Zero selects 4096.
	MaxBranches int
}

// NewMachine returns a Machine for one concolic execution over the input.
func NewMachine(in *Input, opts MachineOptions) *Machine {
	if opts.MaxBranches <= 0 {
		opts.MaxBranches = 4096
	}
	return &Machine{
		in:          in,
		asn:         make(expr.Assignment),
		varRegion:   make(map[string]regionRef),
		maxBranches: opts.MaxBranches,
	}
}

// Input returns the input this machine executes on (nil for a nil machine).
func (m *Machine) Input() *Input {
	if m == nil {
		return nil
	}
	return m.in
}

// Tracing reports whether the machine records symbolic state. It is false
// for a nil machine, letting instrumented code skip work on the live path.
func (m *Machine) Tracing() bool { return m != nil }

// SymBytes provides symbolic access to a marked input region.
type SymBytes struct {
	m      *Machine
	region string
	data   []byte
}

// Bytes marks the named input region as symbolic and returns an accessor for
// it. Each byte becomes an 8-bit symbolic variable named "region[i]".
// Marking the same region twice returns accessors over the same variables.
// On a nil machine, Bytes returns a concrete accessor over data.
func (m *Machine) Bytes(region string, data []byte) *SymBytes {
	if m == nil {
		return &SymBytes{data: data}
	}
	if existing := m.in.Region(region); existing != nil {
		data = existing
	} else {
		m.in.SetRegion(region, data)
		data = m.in.Region(region)
	}
	for i, b := range data {
		name := varName(region, i)
		if _, ok := m.asn[name]; !ok {
			m.asn[name] = uint64(b)
			m.varRegion[name] = regionRef{region: region, index: i}
		}
	}
	return &SymBytes{m: m, region: region, data: data}
}

func varName(region string, index int) string {
	return fmt.Sprintf("%s[%d]", region, index)
}

// Len returns the number of bytes in the region.
func (s *SymBytes) Len() int { return len(s.data) }

// Byte returns the i-th byte as a (possibly symbolic) 8-bit value.
func (s *SymBytes) Byte(i int) Value {
	v := Const(uint64(s.data[i]), 8)
	if s.m != nil {
		v.Sym = expr.Var(varName(s.region, i), 8)
	}
	return v
}

// U16 returns the big-endian 16-bit value at offset i.
func (s *SymBytes) U16(i int) Value {
	return Concat(s.Byte(i), s.Byte(i+1))
}

// U32 returns the big-endian 32-bit value at offset i.
func (s *SymBytes) U32(i int) Value {
	return Concat(Concat(s.Byte(i), s.Byte(i+1)), Concat(s.Byte(i+2), s.Byte(i+3)))
}

// Concrete returns the raw concrete bytes of the region.
func (s *SymBytes) Concrete() []byte { return s.data }

// Choice models a symbolic boolean decision that is not derived from message
// bytes — the paper's example is "is this route the locally most preferred
// one". The concrete value comes from a one-byte input region named
// "choice/<name>" when present (so the explorer can flip it), otherwise from
// def. On a nil machine the default is returned unchanged.
func (m *Machine) Choice(name string, def bool) Value {
	if m == nil {
		return BoolValue(def)
	}
	region := "choice/" + name
	data := m.in.Region(region)
	if data == nil {
		b := byte(0)
		if def {
			b = 1
		}
		m.in.SetRegion(region, []byte{b})
		data = m.in.Region(region)
	}
	sb := m.Bytes(region, data)
	return Ne(sb.Byte(0), Const(0, 8))
}

// Branch records the condition in the direction it concretely evaluates and
// returns that concrete truth value. Instrumented code uses it in place of a
// plain if condition:
//
//	if m.Branch("policy.localpref.cmp", concolic.Gt(pref, limit)) { ... }
//
// On a nil machine no recording happens. Purely concrete conditions are
// returned without recording, because they cannot be negated by the solver.
func (m *Machine) Branch(site string, cond Value) bool {
	if !cond.IsBool() {
		panic("concolic: Branch condition must be boolean")
	}
	taken := cond.Concrete != 0
	if m == nil || cond.Sym == nil || cond.Sym.IsConst() {
		return taken
	}
	if len(m.path) >= m.maxBranches {
		m.truncated = true
		return taken
	}
	recorded := cond.Sym
	if !taken {
		recorded = expr.Not(recorded)
	}
	m.path = append(m.path, Branch{Site: site, Cond: recorded, Taken: taken})
	return taken
}

// Assert records a condition that must hold for the execution to remain on
// this path but is not a candidate for negation (e.g. structural validity the
// fuzzer guarantees). It returns the concrete truth value.
func (m *Machine) Assert(site string, cond Value) bool {
	// Recorded exactly like a branch: keeping it in the path condition makes
	// negated-branch queries sound. The explorer distinguishes negatable
	// branches by site prefix if needed; for now all are negatable.
	return m.Branch(site, cond)
}

// Path returns the branches recorded so far, in execution order.
func (m *Machine) Path() []Branch {
	if m == nil {
		return nil
	}
	return m.path
}

// Truncated reports whether the branch limit was hit.
func (m *Machine) Truncated() bool {
	if m == nil {
		return false
	}
	return m.truncated
}

// Assignment returns the concrete values of all symbolic variables registered
// during this execution.
func (m *Machine) Assignment() expr.Assignment {
	if m == nil {
		return nil
	}
	return m.asn
}

// PathSignature returns a stable hash of the sequence of (site, taken) pairs,
// identifying the execution path.
func (m *Machine) PathSignature() uint64 {
	h := fnv.New64a()
	for _, b := range m.Path() {
		h.Write([]byte(b.Site))
		if b.Taken {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	return h.Sum64()
}

// ApplyModel builds a new input by overwriting, in a clone of base, every
// byte whose symbolic variable appears in the model. Variables the machine
// did not register are ignored.
func (m *Machine) ApplyModel(base *Input, model expr.Assignment) *Input {
	out := base.Clone()
	for name, val := range model {
		ref, ok := m.varRegion[name]
		if !ok {
			continue
		}
		data := out.Region(ref.region)
		if data == nil || ref.index >= len(data) {
			continue
		}
		data[ref.index] = byte(val)
	}
	return out
}
