// Package concolic implements the concolic (CONCrete + symbOLIC) execution
// engine that drives DiCE's behaviour exploration. It plays the role of the
// Oasis engine from the paper: program inputs are marked symbolic, the
// instrumented code records the branch constraints it encounters while
// executing on concrete values, and the engine negates those constraints one
// by one, querying the solver for new concrete inputs that steer execution
// down unexplored paths.
//
// The engine is split into three pieces:
//
//   - Value: a concrete bitvector paired with an optional symbolic
//     expression. Instrumented code computes on Values; when every operand is
//     concrete the symbolic side stays nil and the overhead is a few
//     nanoseconds, which is what lets the same code run on the live,
//     deployed node (DiCE's "low overhead" requirement) and under
//     exploration.
//   - Machine: one concolic execution — the symbolic input regions, the
//     concrete assignment, and the recorded path condition.
//   - Explorer: the generational path search that turns recorded path
//     conditions into new test inputs.
package concolic

import (
	"fmt"

	"github.com/dice-project/dice/internal/concolic/expr"
)

// Value is a concrete bitvector value optionally shadowed by a symbolic
// expression. A nil Sym means the value is purely concrete. Boolean values
// are represented with Width == 0 and Concrete in {0, 1}.
type Value struct {
	Concrete uint64
	Width    uint8
	Sym      *expr.Expr
}

// Const returns a purely concrete bitvector value.
func Const(v uint64, width uint8) Value {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("concolic: invalid width %d", width))
	}
	return Value{Concrete: v & widthMask(width), Width: width}
}

// BoolValue returns a purely concrete boolean value.
func BoolValue(b bool) Value {
	if b {
		return Value{Concrete: 1}
	}
	return Value{}
}

func widthMask(width uint8) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << width) - 1
}

// IsSymbolic reports whether the value carries a symbolic expression.
func (v Value) IsSymbolic() bool { return v.Sym != nil }

// IsBool reports whether the value is a boolean.
func (v Value) IsBool() bool { return v.Width == 0 }

// Bool returns the concrete truth of a boolean value.
func (v Value) Bool() bool { return v.Concrete != 0 }

// Uint returns the concrete value.
func (v Value) Uint() uint64 { return v.Concrete }

// sym returns the symbolic expression of the value, synthesizing a constant
// when the value is concrete. Used when at least one operand of an operation
// is symbolic.
func (v Value) sym() *expr.Expr {
	if v.Sym != nil {
		return v.Sym
	}
	if v.IsBool() {
		return expr.Bool(v.Concrete != 0)
	}
	return expr.Const(v.Concrete, v.Width)
}

// String renders the value for debugging.
func (v Value) String() string {
	if v.IsBool() {
		if v.Sym != nil {
			return fmt.Sprintf("bool(%v sym=%v)", v.Bool(), v.Sym)
		}
		return fmt.Sprintf("bool(%v)", v.Bool())
	}
	if v.Sym != nil {
		return fmt.Sprintf("bv%d(%d sym=%v)", v.Width, v.Concrete, v.Sym)
	}
	return fmt.Sprintf("bv%d(%d)", v.Width, v.Concrete)
}

func binOp(a, b Value, concrete func(x, y uint64) uint64, symbolic func(x, y *expr.Expr) *expr.Expr) Value {
	if a.Width != b.Width {
		panic(fmt.Sprintf("concolic: width mismatch %d vs %d", a.Width, b.Width))
	}
	out := Value{Concrete: concrete(a.Concrete, b.Concrete) & widthMask(a.Width), Width: a.Width}
	if a.Sym != nil || b.Sym != nil {
		out.Sym = symbolic(a.sym(), b.sym())
	}
	return out
}

func cmpOp(a, b Value, concrete func(x, y uint64) bool, symbolic func(x, y *expr.Expr) *expr.Expr) Value {
	if a.Width != b.Width {
		panic(fmt.Sprintf("concolic: width mismatch %d vs %d", a.Width, b.Width))
	}
	out := BoolValue(concrete(a.Concrete, b.Concrete))
	if a.Sym != nil || b.Sym != nil {
		out.Sym = symbolic(a.sym(), b.sym())
	}
	return out
}

// Add returns a+b.
func Add(a, b Value) Value {
	return binOp(a, b, func(x, y uint64) uint64 { return x + y }, expr.Add)
}

// Sub returns a-b.
func Sub(a, b Value) Value {
	return binOp(a, b, func(x, y uint64) uint64 { return x - y }, expr.Sub)
}

// Mul returns a*b.
func Mul(a, b Value) Value {
	return binOp(a, b, func(x, y uint64) uint64 { return x * y }, expr.Mul)
}

// BitAnd returns the bitwise AND of a and b.
func BitAnd(a, b Value) Value {
	return binOp(a, b, func(x, y uint64) uint64 { return x & y }, expr.BVAnd)
}

// BitOr returns the bitwise OR of a and b.
func BitOr(a, b Value) Value {
	return binOp(a, b, func(x, y uint64) uint64 { return x | y }, expr.BVOr)
}

// Eq returns the boolean a == b.
func Eq(a, b Value) Value {
	return cmpOp(a, b, func(x, y uint64) bool { return x == y }, expr.Eq)
}

// Ne returns the boolean a != b.
func Ne(a, b Value) Value {
	return cmpOp(a, b, func(x, y uint64) bool { return x != y }, expr.Ne)
}

// Lt returns the boolean a < b (unsigned).
func Lt(a, b Value) Value {
	return cmpOp(a, b, func(x, y uint64) bool { return x < y }, expr.Ult)
}

// Le returns the boolean a <= b (unsigned).
func Le(a, b Value) Value {
	return cmpOp(a, b, func(x, y uint64) bool { return x <= y }, expr.Ule)
}

// Gt returns the boolean a > b (unsigned).
func Gt(a, b Value) Value {
	return cmpOp(a, b, func(x, y uint64) bool { return x > y }, expr.Ugt)
}

// Ge returns the boolean a >= b (unsigned).
func Ge(a, b Value) Value {
	return cmpOp(a, b, func(x, y uint64) bool { return x >= y }, expr.Uge)
}

// EqConst returns the boolean a == k.
func EqConst(a Value, k uint64) Value { return Eq(a, Const(k, a.Width)) }

// LtConst returns the boolean a < k.
func LtConst(a Value, k uint64) Value { return Lt(a, Const(k, a.Width)) }

// GtConst returns the boolean a > k.
func GtConst(a Value, k uint64) Value { return Gt(a, Const(k, a.Width)) }

// Not returns the boolean negation of a boolean value.
func Not(a Value) Value {
	if !a.IsBool() {
		panic("concolic: Not applied to non-boolean value")
	}
	out := BoolValue(a.Concrete == 0)
	if a.Sym != nil {
		out.Sym = expr.Not(a.Sym)
	}
	return out
}

// And returns the boolean conjunction of two boolean values.
func And(a, b Value) Value {
	if !a.IsBool() || !b.IsBool() {
		panic("concolic: And applied to non-boolean value")
	}
	out := BoolValue(a.Concrete != 0 && b.Concrete != 0)
	if a.Sym != nil || b.Sym != nil {
		out.Sym = expr.And(a.sym(), b.sym())
	}
	return out
}

// Or returns the boolean disjunction of two boolean values.
func Or(a, b Value) Value {
	if !a.IsBool() || !b.IsBool() {
		panic("concolic: Or applied to non-boolean value")
	}
	out := BoolValue(a.Concrete != 0 || b.Concrete != 0)
	if a.Sym != nil || b.Sym != nil {
		out.Sym = expr.Or(a.sym(), b.sym())
	}
	return out
}

// ZExt zero-extends the value to the given width.
func ZExt(a Value, width uint8) Value {
	if width < a.Width {
		panic("concolic: ZExt to smaller width")
	}
	out := Value{Concrete: a.Concrete, Width: width}
	if a.Sym != nil {
		out.Sym = expr.ZExt(a.Sym, width)
	}
	return out
}

// Concat concatenates hi and lo into a wider value (hi occupies the most
// significant bits).
func Concat(hi, lo Value) Value {
	width := hi.Width + lo.Width
	out := Value{Concrete: (hi.Concrete<<lo.Width | lo.Concrete) & widthMask(width), Width: width}
	if hi.Sym != nil || lo.Sym != nil {
		out.Sym = expr.Concat(hi.sym(), lo.sym())
	}
	return out
}
