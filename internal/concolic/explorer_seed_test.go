package concolic

import (
	"fmt"
	"testing"

	"github.com/dice-project/dice/internal/concolic/solver"
)

// TestExplorerOptionDefaults pins the resolved-option contract: every bound
// has an explicit default (MaxBranchesPerPath no longer silently means
// "whatever the machine picks"), and defaulting is idempotent — in
// particular, a derived solver seed never equals the "unset" sentinel 0, so
// a second defaulting pass can never silently re-seed the solver.
func TestExplorerOptionDefaults(t *testing.T) {
	o := ExplorerOptions{}.withDefaults()
	if o.MaxBranchesPerPath != DefaultMaxBranchesPerPath {
		t.Errorf("MaxBranchesPerPath default = %d, want %d", o.MaxBranchesPerPath, DefaultMaxBranchesPerPath)
	}
	if o.MaxExecutions != 256 || o.MaxQueue != 4096 {
		t.Errorf("unexpected defaults: %+v", o)
	}

	for _, seed := range []int64{-3, -2, -1, 0, 1, 2} {
		o := ExplorerOptions{Seed: seed}.withDefaults()
		if o.Solver.Seed == 0 {
			t.Errorf("Seed %d derived the unset solver sentinel 0", seed)
		}
		if again := o.withDefaults(); again.Solver.Seed != o.Solver.Seed {
			t.Errorf("Seed %d: re-defaulting changed solver seed %d -> %d (non-idempotent)",
				seed, o.Solver.Seed, again.Solver.Seed)
		}
	}
	// An explicitly configured solver seed always wins over derivation.
	o = ExplorerOptions{Seed: -1, Solver: solver.Options{Seed: 77}}.withDefaults()
	if o.Solver.Seed != 77 {
		t.Errorf("explicit solver seed overridden: %d", o.Solver.Seed)
	}
}

// TestExplorerNegativeSeedDeterminism is the regression test for the
// Seed == -1 hole: two explorations with the same negative seed must take
// identical decisions, and nearby negative seeds must not be forced onto
// the same solver seed.
func TestExplorerNegativeSeedDeterminism(t *testing.T) {
	run := func(seed int64) (Stats, string) {
		e := NewExplorer(exploreTarget, ExplorerOptions{MaxExecutions: 40, Seed: seed})
		e.AddSeed(NewInput("msg", []byte{9, 9, 9}))
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Stats(), fmt.Sprint(e.Coverage())
	}
	for _, seed := range []int64{-1, -2, -1000003} {
		s1, c1 := run(seed)
		s2, c2 := run(seed)
		if s1 != s2 || c1 != c2 {
			t.Errorf("seed %d not deterministic:\n  %+v %s\n  %+v %s", seed, s1, c1, s2, c2)
		}
	}
	// Distinct seeds must derive distinct solver seeds (the -1 collision
	// used to fold onto seed 0's behavior via downstream re-defaulting),
	// including at the edges of the negative range.
	derived := map[int64]int64{}
	for _, seed := range []int64{-1 << 62, -1<<62 - 1, -1000003, -2, -1, 0, 1, 1 << 40} {
		derived[seed] = ExplorerOptions{Seed: seed}.withDefaults().Solver.Seed
	}
	seenSolver := map[int64]int64{}
	for seed, sv := range derived {
		if prev, dup := seenSolver[sv]; dup {
			t.Errorf("seeds %d and %d derive the same solver seed %d", prev, seed, sv)
		}
		seenSolver[sv] = seed
	}
}
