package concolic

import "github.com/dice-project/dice/internal/concolic/expr"

// VarRef locates the input byte backing one symbolic variable: the named
// region and the byte index within it. It is the exported, serializable form
// of the machine's internal variable→region mapping.
type VarRef struct {
	Region string
	Index  int
}

// Trace is the portable record of (part of) one concolic execution: the
// branches taken from some starting index, plus the full variable assignment,
// variable→input mapping and input regions needed to interpret them. A
// machine split across a process boundary ships Traces back to the
// coordinating side, which merges them with ImportTrace so the combined
// machine is indistinguishable from one that ran the whole execution locally.
type Trace struct {
	Branches   []Branch
	Assignment expr.Assignment
	Vars       map[string]VarRef
	Regions    map[string][]byte
	Truncated  bool
}

// MaxBranches returns the machine's branch-recording bound.
func (m *Machine) MaxBranches() int {
	if m == nil {
		return 0
	}
	return m.maxBranches
}

// ExportTrace captures the execution record from branch index `from` onward.
// The branch slice is the increment (so repeated exports ship each branch
// once); the assignment, variable mapping and regions are always complete —
// they are unioned on import, so resending them is idempotent. Everything is
// deep-copied: the trace stays valid after the machine keeps executing.
func (m *Machine) ExportTrace(from int) *Trace {
	if m == nil {
		return nil
	}
	if from < 0 {
		from = 0
	}
	if from > len(m.path) {
		from = len(m.path)
	}
	t := &Trace{
		Branches:   append([]Branch(nil), m.path[from:]...),
		Assignment: make(expr.Assignment, len(m.asn)),
		Vars:       make(map[string]VarRef, len(m.varRegion)),
		Regions:    make(map[string][]byte),
		Truncated:  m.truncated,
	}
	for name, val := range m.asn {
		t.Assignment[name] = val
	}
	for name, ref := range m.varRegion {
		t.Vars[name] = VarRef{Region: ref.region, Index: ref.index}
	}
	if m.in != nil {
		for name, data := range m.in.Regions {
			t.Regions[name] = append([]byte(nil), data...)
		}
	}
	return t
}

// ImportTrace merges a trace exported by another machine (typically across a
// process boundary): branches are appended in order, the assignment and
// variable mapping are unioned (existing entries win — the two machines were
// built over the same input, so they agree), regions the input does not know
// yet are installed, and truncation is sticky. Importing on a nil machine is
// a no-op, matching the concrete execution path.
func (m *Machine) ImportTrace(t *Trace) {
	if m == nil || t == nil {
		return
	}
	for name, data := range t.Regions {
		if m.in.Region(name) == nil {
			m.in.SetRegion(name, data)
		}
	}
	for name, val := range t.Assignment {
		if _, ok := m.asn[name]; !ok {
			m.asn[name] = val
		}
	}
	for name, ref := range t.Vars {
		if _, ok := m.varRegion[name]; !ok {
			m.varRegion[name] = regionRef{region: ref.Region, index: ref.Index}
		}
	}
	m.path = append(m.path, t.Branches...)
	if t.Truncated {
		m.truncated = true
	}
}
