package frr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/node"
)

// This file is the frr backend's configuration dialect: an FRR vtysh-flavored
// text rendering of the semantic node.Config, with policies expressed as
// route-maps. It is what an frr checkpoint carries across process boundaries
// (where bird carries its BIRD-filter PoliciesText), and what the
// examples/heterogeneous walkthrough prints. Render and ParseConfig are
// inverses: Render(ParseConfig(Render(cfg))) == Render(cfg), covered by the
// dialect round-trip test.

// defaultSeq is the route-map sequence number reserved for a policy's
// default disposition; statements take 10, 20, 30, …
const defaultSeq = 65535

// Render serializes the semantic configuration in the frr dialect. The
// output is deterministic: neighbors keep configuration order, route-maps
// are sorted by name.
func Render(cfg *node.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "frr version dice-1\n!\n")
	fmt.Fprintf(&b, "router bgp %d\n", cfg.AS)
	fmt.Fprintf(&b, " bgp router-id %s\n", renderRouterID(cfg.RouterID))
	fmt.Fprintf(&b, " bgp node-name %s\n", cfg.Name)
	fmt.Fprintf(&b, " timers bgp hold %s connect-retry %s keepalive %s\n",
		cfg.HoldTime, cfg.ConnectRetry, cfg.KeepaliveInterval)
	for _, p := range cfg.Networks {
		fmt.Fprintf(&b, " network %s\n", p)
	}
	for _, n := range cfg.Neighbors {
		fmt.Fprintf(&b, " neighbor %s remote-as %d\n", n.Name, n.AS)
		if n.Import != "" {
			fmt.Fprintf(&b, " neighbor %s route-map %s in\n", n.Name, n.Import)
		}
		if n.Export != "" {
			fmt.Fprintf(&b, " neighbor %s route-map %s out\n", n.Name, n.Export)
		}
	}
	b.WriteString("exit\n")
	names := make([]string, 0, len(cfg.Policies))
	for name := range cfg.Policies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteString("!\n")
		renderRouteMap(&b, cfg.Policies[name])
	}
	return b.String()
}

func renderRouterID(id bgp.RouterID) string {
	v := uint32(id)
	return fmt.Sprintf("%d.%d.%d.%d", v>>24, v>>16&0xff, v>>8&0xff, v&0xff)
}

func parseRouterID(s string) (bgp.RouterID, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("frr: router-id %q is not dotted quad", s)
	}
	var v uint32
	for _, p := range parts {
		o, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("frr: router-id %q: %v", s, err)
		}
		v = v<<8 | uint32(o)
	}
	return bgp.RouterID(v), nil
}

func renderRouteMap(b *strings.Builder, pol *policy.Policy) {
	for i, st := range pol.Statements {
		seq := (i + 1) * 10
		kind, sets, cont := statementDisposition(st)
		fmt.Fprintf(b, "route-map %s %s %d\n", pol.Name, kind, seq)
		for _, c := range st.Conds {
			fmt.Fprintf(b, " %s\n", renderCond(c))
		}
		for _, a := range sets {
			fmt.Fprintf(b, " %s\n", renderAction(a))
		}
		if cont {
			fmt.Fprintf(b, " continue\n")
		}
	}
	kind := "permit"
	if pol.Default == policy.ResultReject {
		kind = "deny"
	}
	fmt.Fprintf(b, "route-map %s %s %d\n", pol.Name, kind, defaultSeq)
}

// statementDisposition splits a statement's action list into its non-terminal
// set actions and its disposition: "permit" / "deny" when it ends in a
// terminal accept/reject, or "permit" plus an explicit continue when the
// statement falls through to the next one.
func statementDisposition(st *policy.Statement) (kind string, sets []policy.Action, cont bool) {
	for _, a := range st.Actions {
		switch a.(type) {
		case policy.ActionAccept:
			return "permit", sets, false
		case policy.ActionReject:
			return "deny", sets, false
		default:
			sets = append(sets, a)
		}
	}
	return "permit", sets, true
}

func renderPrefixSpec(c policy.MatchPrefix) string {
	var b strings.Builder
	b.WriteString(c.Prefix.String())
	if c.Exact {
		b.WriteString(" exact")
	}
	if c.MinLen != 0 {
		fmt.Fprintf(&b, " ge %d", c.MinLen)
	}
	if c.MaxLen != 0 {
		fmt.Fprintf(&b, " le %d", c.MaxLen)
	}
	return b.String()
}

func renderCond(c policy.Condition) string {
	switch c := c.(type) {
	case policy.MatchPrefix:
		return "match ip address prefix " + renderPrefixSpec(c)
	case policy.MatchPrefixList:
		entries := make([]string, len(c.Entries))
		for i, e := range c.Entries {
			entries[i] = renderPrefixSpec(e)
		}
		return fmt.Sprintf("match ip address prefix-list %s (%s)", c.Name, strings.Join(entries, "; "))
	case policy.MatchASPathContains:
		return fmt.Sprintf("match as-path contains %d", c.AS)
	case policy.MatchOriginAS:
		return fmt.Sprintf("match origin-as %d", c.AS)
	case policy.MatchASPathLen:
		return fmt.Sprintf("match as-path length %s %d", opOrEq(c.Op), c.N)
	case policy.MatchCommunity:
		return fmt.Sprintf("match community %s", c.Community)
	case policy.MatchLocalPref:
		return fmt.Sprintf("match local-preference %s %d", opOrEq(c.Op), c.N)
	}
	return fmt.Sprintf("match unknown %T", c)
}

// opOrEq canonicalizes the empty comparison operator to "=": the policy
// engine treats both spellings as equality, and the dialect needs one token
// per field. The canonicalization is one-way by design — parsing returns
// "=" — so the round-trip property holds on the rendered form, not on the
// never-rendered empty spelling.
func opOrEq(op string) string {
	if op == "" {
		return "="
	}
	return op
}

func renderAction(a policy.Action) string {
	switch a := a.(type) {
	case policy.ActionSetLocalPref:
		return fmt.Sprintf("set local-preference %d", a.Value)
	case policy.ActionSetMED:
		return fmt.Sprintf("set metric %d", a.Value)
	case policy.ActionAddCommunity:
		return fmt.Sprintf("set community %s additive", a.Community)
	case policy.ActionClearCommunities:
		return "set comm-list all delete"
	case policy.ActionPrepend:
		return fmt.Sprintf("set as-path prepend %d x%d", a.AS, a.Count)
	}
	return fmt.Sprintf("set unknown %T", a)
}

// ParseConfig parses the frr dialect back into the semantic configuration.
func ParseConfig(text string) (*node.Config, error) {
	cfg := &node.Config{Policies: make(map[string]*policy.Policy)}
	var curMap *policy.Policy // route-map under construction
	var curStmt *policy.Statement
	var curKind string // permit / deny of the current entry
	var curSeq int
	inRouter := false

	finishEntry := func() {
		if curMap == nil || curStmt == nil {
			return
		}
		if curSeq == defaultSeq {
			if curKind == "deny" {
				curMap.Default = policy.ResultReject
			} else {
				curMap.Default = policy.ResultAccept
			}
			curStmt = nil
			return
		}
		// A statement without an explicit continue terminates in its entry
		// kind; the continue marker was consumed while parsing.
		if !stmtContinues(curStmt) {
			if curKind == "deny" {
				curStmt.Actions = append(curStmt.Actions, policy.ActionReject{})
			} else {
				curStmt.Actions = append(curStmt.Actions, policy.ActionAccept{})
			}
		} else {
			curStmt.Actions = curStmt.Actions[:len(curStmt.Actions)-1] // drop marker
		}
		curMap.Statements = append(curMap.Statements, curStmt)
		curStmt = nil
	}

	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || line == "!" || strings.HasPrefix(line, "frr version") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...interface{}) (*node.Config, error) {
			return nil, fmt.Errorf("frr: config line %d (%q): %s", lineNo+1, line, fmt.Sprintf(format, args...))
		}
		switch {
		case f[0] == "router" && len(f) == 3 && f[1] == "bgp":
			as, err := strconv.ParseUint(f[2], 10, 32)
			if err != nil {
				return fail("bad AS: %v", err)
			}
			cfg.AS = bgp.ASN(as)
			inRouter = true
		case f[0] == "exit":
			inRouter = false
		case inRouter && f[0] == "bgp" && len(f) == 3 && f[1] == "router-id":
			id, err := parseRouterID(f[2])
			if err != nil {
				return fail("%v", err)
			}
			cfg.RouterID = id
		case inRouter && f[0] == "bgp" && len(f) == 3 && f[1] == "node-name":
			cfg.Name = f[2]
		case inRouter && f[0] == "timers" && len(f) == 8:
			hold, err1 := time.ParseDuration(f[3])
			retry, err2 := time.ParseDuration(f[5])
			keep, err3 := time.ParseDuration(f[7])
			if err1 != nil || err2 != nil || err3 != nil {
				return fail("bad timers")
			}
			cfg.HoldTime, cfg.ConnectRetry, cfg.KeepaliveInterval = hold, retry, keep
		case inRouter && f[0] == "network" && len(f) == 2:
			p, err := bgp.ParsePrefix(f[1])
			if err != nil {
				return fail("%v", err)
			}
			cfg.Networks = append(cfg.Networks, p)
		case inRouter && f[0] == "neighbor" && len(f) == 4 && f[2] == "remote-as":
			as, err := strconv.ParseUint(f[3], 10, 32)
			if err != nil {
				return fail("bad remote-as: %v", err)
			}
			cfg.Neighbors = append(cfg.Neighbors, node.NeighborConfig{Name: f[1], AS: bgp.ASN(as)})
		case inRouter && f[0] == "neighbor" && len(f) == 5 && f[2] == "route-map":
			nc := cfg.Neighbor(f[1])
			if nc == nil {
				return fail("route-map for unknown neighbor %s", f[1])
			}
			switch f[4] {
			case "in":
				nc.Import = f[3]
			case "out":
				nc.Export = f[3]
			default:
				return fail("route-map direction %q", f[4])
			}
		case f[0] == "route-map" && len(f) == 4:
			finishEntry()
			name, kind := f[1], f[2]
			seq, err := strconv.Atoi(f[3])
			if err != nil || (kind != "permit" && kind != "deny") {
				return fail("bad route-map header")
			}
			if cfg.Policies[name] == nil {
				cfg.Policies[name] = &policy.Policy{Name: name}
			}
			curMap, curKind, curSeq = cfg.Policies[name], kind, seq
			curStmt = &policy.Statement{}
		case f[0] == "match" && curStmt != nil:
			c, err := parseCond(line)
			if err != nil {
				return fail("%v", err)
			}
			curStmt.Conds = append(curStmt.Conds, c)
		case f[0] == "set" && curStmt != nil:
			a, err := parseAction(line)
			if err != nil {
				return fail("%v", err)
			}
			curStmt.Actions = append(curStmt.Actions, a)
		case f[0] == "continue" && curStmt != nil:
			curStmt.Actions = append(curStmt.Actions, continueMarker{})
		default:
			return fail("unrecognized directive")
		}
	}
	finishEntry()
	return cfg, nil
}

// continueMarker is a parse-time placeholder for an explicit fall-through;
// finishEntry strips it.
type continueMarker struct{}

func (continueMarker) Apply(*concolic.Machine, *rib.Route) *policy.Result { return nil }
func (continueMarker) String() string                                     { return "continue" }

func stmtContinues(st *policy.Statement) bool {
	if len(st.Actions) == 0 {
		return false
	}
	_, ok := st.Actions[len(st.Actions)-1].(continueMarker)
	return ok
}

func parsePrefixSpec(fields []string) (policy.MatchPrefix, error) {
	var out policy.MatchPrefix
	if len(fields) == 0 {
		return out, fmt.Errorf("empty prefix spec")
	}
	p, err := bgp.ParsePrefix(fields[0])
	if err != nil {
		return out, err
	}
	out.Prefix = p
	i := 1
	for i < len(fields) {
		switch fields[i] {
		case "exact":
			out.Exact = true
			i++
		case "ge", "le":
			if i+1 >= len(fields) {
				return out, fmt.Errorf("%s without value", fields[i])
			}
			v, err := strconv.ParseUint(fields[i+1], 10, 8)
			if err != nil {
				return out, err
			}
			if fields[i] == "ge" {
				out.MinLen = uint8(v)
			} else {
				out.MaxLen = uint8(v)
			}
			i += 2
		default:
			return out, fmt.Errorf("prefix spec token %q", fields[i])
		}
	}
	return out, nil
}

func parseCond(line string) (policy.Condition, error) {
	f := strings.Fields(line)
	switch {
	case strings.HasPrefix(line, "match ip address prefix-list "):
		rest := strings.TrimPrefix(line, "match ip address prefix-list ")
		open := strings.IndexByte(rest, '(')
		if open < 0 || !strings.HasSuffix(rest, ")") {
			return nil, fmt.Errorf("malformed prefix-list")
		}
		out := policy.MatchPrefixList{Name: strings.TrimSpace(rest[:open])}
		body := rest[open+1 : len(rest)-1]
		if strings.TrimSpace(body) != "" {
			for _, spec := range strings.Split(body, ";") {
				e, err := parsePrefixSpec(strings.Fields(spec))
				if err != nil {
					return nil, err
				}
				out.Entries = append(out.Entries, e)
			}
		}
		return out, nil
	case strings.HasPrefix(line, "match ip address prefix "):
		return parsePrefixSpec(f[4:])
	case strings.HasPrefix(line, "match as-path contains ") && len(f) == 4:
		as, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.MatchASPathContains{AS: bgp.ASN(as)}, nil
	case strings.HasPrefix(line, "match origin-as ") && len(f) == 3:
		as, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.MatchOriginAS{AS: bgp.ASN(as)}, nil
	case strings.HasPrefix(line, "match as-path length ") && len(f) == 5:
		n, err := strconv.ParseUint(f[4], 10, 8)
		if err != nil {
			return nil, err
		}
		return policy.MatchASPathLen{Op: f[3], N: uint8(n)}, nil
	case strings.HasPrefix(line, "match community ") && len(f) == 3:
		c, err := parseCommunity(f[2])
		if err != nil {
			return nil, err
		}
		return policy.MatchCommunity{Community: c}, nil
	case strings.HasPrefix(line, "match local-preference ") && len(f) == 4:
		n, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.MatchLocalPref{Op: f[2], N: uint32(n)}, nil
	}
	return nil, fmt.Errorf("unknown match %q", line)
}

func parseCommunity(s string) (bgp.Community, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, fmt.Errorf("community %q", s)
	}
	a, err1 := strconv.ParseUint(parts[0], 10, 16)
	b, err2 := strconv.ParseUint(parts[1], 10, 16)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("community %q", s)
	}
	return bgp.NewCommunity(uint16(a), uint16(b)), nil
}

func parseAction(line string) (policy.Action, error) {
	f := strings.Fields(line)
	switch {
	case strings.HasPrefix(line, "set local-preference ") && len(f) == 3:
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.ActionSetLocalPref{Value: uint32(v)}, nil
	case strings.HasPrefix(line, "set metric ") && len(f) == 3:
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.ActionSetMED{Value: uint32(v)}, nil
	case strings.HasPrefix(line, "set community ") && len(f) == 4 && f[3] == "additive":
		c, err := parseCommunity(f[2])
		if err != nil {
			return nil, err
		}
		return policy.ActionAddCommunity{Community: c}, nil
	case line == "set comm-list all delete":
		return policy.ActionClearCommunities{}, nil
	case strings.HasPrefix(line, "set as-path prepend ") && len(f) == 5:
		as, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return nil, err
		}
		count, err := strconv.Atoi(strings.TrimPrefix(f[4], "x"))
		if err != nil {
			return nil, err
		}
		return policy.ActionPrepend{AS: bgp.ASN(as), Count: count}, nil
	}
	return nil, fmt.Errorf("unknown set %q", line)
}
