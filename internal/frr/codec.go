package frr

import (
	"fmt"

	"github.com/dice-project/dice/internal/checkpoint/codec"
)

// This file is frr's canonical checkpoint payload, the counterpart of
// bird's: where bird serializes discrete config fields plus policy text, frr
// carries its whole configuration as one dialect blob (ConfigText) — but the
// RIB, session, counter and event slabs are the shared codec forms, so a
// mixed-implementation snapshot is canonical end to end.

// encodeCanonical serializes a checkpoint into the codec payload.
func encodeCanonical(cp *Checkpoint) []byte {
	w := codec.NewWriter()
	w.String(cp.Name)
	w.String(cp.ConfigText)
	codec.PutSessionRecords(w, cp.Sessions)
	codec.PutPeerRouteMap(w, cp.AdjIn)
	codec.PutRouteRecords(w, cp.LocRIB)
	codec.PutPeerRouteMap(w, cp.AdjOut)
	codec.PutStats(w, cp.Stats)
	codec.PutEventRecords(w, cp.Events)
	w.Bool(cp.Panicked)
	w.String(cp.LastPanic)
	w.Bool(cp.Started)
	return w.Bytes()
}

// decodeCanonical parses a canonical payload back into a checkpoint. The
// result has no in-process config; restoring re-parses the dialect text.
func decodeCanonical(payload []byte) (*Checkpoint, error) {
	r := codec.NewReader(payload)
	cp := &Checkpoint{
		Name:       r.String(),
		ConfigText: r.String(),
	}
	cp.Sessions = codec.SessionRecords(r)
	cp.AdjIn = codec.PeerRouteMap(r)
	cp.LocRIB = codec.RouteRecords(r)
	cp.AdjOut = codec.PeerRouteMap(r)
	cp.Stats = codec.Stats(r)
	cp.Events = codec.EventRecords(r)
	cp.Panicked = r.Bool()
	cp.LastPanic = r.String()
	cp.Started = r.Bool()
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("frr: decode canonical checkpoint: %w", err)
	}
	return cp, nil
}
