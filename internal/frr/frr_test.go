package frr_test

import (
	"encoding/json"
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/frr"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/topology"
)

// frrLine builds a Line(n) topology running the frr backend on every node.
func frrLine(n int) *topology.Topology {
	return topology.Line(n).SetImpl("frr")
}

func TestFRRClusterConverges(t *testing.T) {
	topo := frrLine(4)
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	if events := c.Converge(); events == 0 {
		t.Fatal("no events processed")
	}
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		if r.Implementation() != "frr" {
			t.Fatalf("router %s runs %q, want frr", name, r.Implementation())
		}
		for _, tn := range topo.Nodes {
			if r.LocRIB().Best(tn.Prefixes[0]) == nil {
				t.Errorf("%s is missing a route to %s", name, tn.Prefixes[0])
			}
		}
		if v := r.CheckInvariants(); len(v) != 0 {
			t.Errorf("%s invariant violations: %v", name, v)
		}
	}
}

// TestFRRDecisionPrefersPeerAddress pins the backend's deliberate divergence:
// with candidates tied through step 6, frr selects the lexicographically
// lowest peer name where bird selects the lowest peer router ID.
func TestFRRDecisionPrefersPeerAddress(t *testing.T) {
	mk := func(peerName string, id bgp.RouterID) *rib.Route {
		return &rib.Route{
			Prefix:       bgp.MustParsePrefix("10.99.0.0/16"),
			Attrs:        &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65100, 65101}, NextHop: 1},
			Peer:         peerName,
			PeerAS:       bgp.ASN(65000 + uint32(id)),
			PeerRouterID: id,
			EBGP:         true,
		}
	}
	// "R10" sorts before "R5" lexicographically, but its router ID is higher.
	viaR5, viaR10 := mk("R5", 5), mk("R10", 10)
	cands := []*rib.Route{viaR5, viaR10}

	if got := rib.SelectBestWith(nil, cands, rib.DecisionRouterIDFirst); got != viaR5 {
		t.Fatalf("bird-order selection = %s, want R5 (lowest router ID)", got.Peer)
	}
	if got := rib.SelectBestWith(nil, cands, frr.Decision); got != viaR10 {
		t.Fatalf("frr-order selection = %s, want R10 (lowest peer name)", got.Peer)
	}

	// And the running frr router does install by its own order.
	r, err := frr.New(&node.Config{Name: "X", AS: 65042, RouterID: 42,
		Neighbors: []node.NeighborConfig{{Name: "R5", AS: 65005}, {Name: "R10", AS: 65010}}})
	if err != nil {
		t.Fatal(err)
	}
	r.LocRIB().Update(nil, viaR5)
	change := r.LocRIB().Update(nil, viaR10)
	if !change.Changed || change.New.Peer != "R10" {
		t.Fatalf("frr Loc-RIB selected %s, want R10", change.New.Peer)
	}
}

// canonical returns a deterministic byte form of a cluster's full state.
func canonical(t *testing.T, c *cluster.Cluster) string {
	t.Helper()
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return string(data)
}

// TestFRRCheckpointCrossProcessRestore proves the dialect is a working
// serialization: a converged frr cluster's snapshot survives gob encoding
// (dropping the in-process configs), and the decoded checkpoints restore
// through ParseConfig into a byte-identical cluster.
func TestFRRCheckpointCrossProcessRestore(t *testing.T) {
	topo := frrLine(3)
	opts := cluster.Options{Seed: 1, GaoRexford: true}
	live := cluster.MustBuild(topo, opts)
	live.Converge()
	snap := live.Snapshot()

	data, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if impl := decoded.Nodes["R1"].Implementation(); impl != "frr" {
		t.Fatalf("decoded checkpoint implementation = %q", impl)
	}
	// The decoded checkpoints lost their in-process configs, so this restore
	// exercises ParseConfig over the dialect text; restoring the original
	// snapshot reuses the in-process configs. Both must land byte-identical.
	fromDialect, err := cluster.FromSnapshot(topo, decoded, opts)
	if err != nil {
		t.Fatalf("FromSnapshot(decoded): %v", err)
	}
	fromMemory, err := cluster.FromSnapshot(topo, snap, opts)
	if err != nil {
		t.Fatalf("FromSnapshot(original): %v", err)
	}
	if got, want := canonical(t, fromDialect), canonical(t, fromMemory); got != want {
		t.Fatalf("restore through the dialect text differs from in-process restore")
	}
	// And the dialect-restored cluster still routes: full reachability.
	fromDialect.Converge()
	for _, name := range fromDialect.RouterNames() {
		for _, tn := range topo.Nodes {
			if fromDialect.Router(name).LocRIB().Best(tn.Prefixes[0]) == nil {
				t.Errorf("%s lost route to %s after dialect restore", name, tn.Prefixes[0])
			}
		}
	}
}

// TestFRRResetEquivalentToColdRebuild is the frr instance of the golden
// clone-lifecycle property: an in-place ResetTo of a dirtied clone must be
// byte-identical to a cold rebuild, including under further execution.
func TestFRRResetEquivalentToColdRebuild(t *testing.T) {
	topo := frrLine(3)
	opts := cluster.Options{Seed: 3}
	live := cluster.MustBuild(topo, opts)
	live.Converge()
	snap := live.Snapshot()
	store, err := checkpoint.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	pool := cluster.NewClonePool(topo, store, opts)

	clone, err := pool.Lease()
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the clone thoroughly.
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65002, 64999}, NextHop: 9}
	clone.InjectUpdate("R2", "R1", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("88.1.0.0/16")}})
	clone.Net.RunQuiescent(0)
	pool.Release(clone)

	pooled, err := pool.Lease() // reset of the dirtied clone
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cluster.FromSnapshot(topo, snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, pooled), canonical(t, cold); got != want {
		t.Fatalf("frr pooled reset differs from cold rebuild")
	}
	in := &bgp.Update{Attrs: attrs.Clone(), NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.1.0.0/16")}}
	pooled.InjectUpdate("R2", "R1", in)
	cold.InjectUpdate("R2", "R1", in)
	pooled.Net.RunQuiescent(0)
	cold.Net.RunQuiescent(0)
	if got, want := canonical(t, pooled), canonical(t, cold); got != want {
		t.Fatalf("frr pooled reset diverged from cold rebuild under execution")
	}
}

// TestFRRRejectsForeignImageAndState pins the backend boundary: frr routers
// refuse to reset onto bird-decoded snapshot halves.
func TestFRRRejectsForeignImageAndState(t *testing.T) {
	frrTopo := frrLine(2)
	birdTopo := topology.Line(2)
	opts := cluster.Options{Seed: 1}
	fc := cluster.MustBuild(frrTopo, opts)
	bc := cluster.MustBuild(birdTopo, opts)
	fc.Converge()
	bc.Converge()
	birdStore, err := checkpoint.NewStore(bc.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	err = fc.Router("R1").ResetTo(birdStore.Image("R1"), birdStore.State("R1"))
	if err == nil {
		t.Fatal("frr router accepted a bird image")
	}
}
