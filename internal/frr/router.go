// Package frr implements the second BGP speaker backend of the DiCE
// reproduction: an FRR-flavored router that registers as node.Router
// implementation "frr". It speaks the same BGP-4 wire format and evaluates
// the same interpreted policies as the bird backend — a federation member
// must interoperate — but it is deliberately its own implementation:
//
//   - its RIB decision process breaks final ties on the neighbor address
//     before the originator router ID (rib.DecisionPeerAddressFirst), the
//     deterministic stand-in for FRR's route-age preference and a legal
//     divergence from bird's router-ID-first order (RFC 4271 §9.1.2.2
//     leaves the tail of the ladder to the implementation);
//   - its configuration dialect is FRR vtysh-style text with route-maps
//     (dialect.go), which is also the serialization its checkpoints carry
//     across process boundaries;
//   - its checkpoint state model decodes into per-route clones rather than
//     bird's slab template — a different engineering trade-off with the
//     same observable behavior.
//
// The checker.CrossImplDivergence property exists because of this package:
// under identical inputs, a dual-homed node's best path can depend on which
// of the two backends it runs.
package frr

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// Implementation is this backend's registry tag.
const Implementation = "frr"

// Decision is the backend's RIB tie-breaking policy.
const Decision = rib.DecisionPeerAddressFirst

func init() {
	gob.Register(&Checkpoint{})
	node.Register(node.Backend{
		Name:     Implementation,
		Decision: Decision,
		Build: func(cfg *node.Config) (node.Router, error) {
			return New(cfg)
		},
		ImageOf: func(cp node.Checkpoint) (node.Image, error) {
			fcp, ok := cp.(*Checkpoint)
			if !ok {
				return nil, fmt.Errorf("frr: checkpoint for %s is %T, not an frr checkpoint", cp.NodeName(), cp)
			}
			return ImageOf(fcp)
		},
		DecodeState: func(cp node.Checkpoint) (node.State, error) {
			fcp, ok := cp.(*Checkpoint)
			if !ok {
				return nil, fmt.Errorf("frr: checkpoint for %s is %T, not an frr checkpoint", cp.NodeName(), cp)
			}
			return DecodeState(fcp)
		},
		Restore: func(im node.Image, st node.State) (node.Router, error) {
			fim, ok := im.(*Image)
			if !ok {
				return nil, fmt.Errorf("frr: image for %s is %T, not an frr image", im.Name(), im)
			}
			fst, ok := st.(*State)
			if !ok {
				return nil, fmt.Errorf("frr: restore %s: state is %T, not an frr state", im.Name(), st)
			}
			return fim.Restore(fst)
		},
		DecodeCheckpoint: func(data []byte) (node.Checkpoint, error) {
			var cp Checkpoint
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err != nil {
				return nil, fmt.Errorf("frr: decode checkpoint: %w", err)
			}
			return &cp, nil
		},
		EncodeCanonical: func(cp node.Checkpoint) ([]byte, error) {
			fcp, ok := cp.(*Checkpoint)
			if !ok {
				return nil, fmt.Errorf("frr: checkpoint for %s is %T, not an frr checkpoint", cp.NodeName(), cp)
			}
			return encodeCanonical(fcp), nil
		},
		DecodeCanonical: func(payload []byte) (node.Checkpoint, error) {
			return decodeCanonical(payload)
		},
	})
}

// peerState is the per-neighbor FSM state (bgpd keeps peers, not sessions).
type peerState int

const (
	peerIdle peerState = iota
	peerOpenSent
	peerOpenConfirm
	peerEstablished
)

// peer is the per-neighbor runtime state.
type peer struct {
	name        string
	as          bgp.ASN
	routerID    bgp.RouterID
	state       peerState
	importMap   string
	exportMap   string
	downCount   int
	notifsSent  int
	notifsRecvd int
	adjIn       *rib.AdjRIBIn
	adjOut      *rib.AdjRIBOut
}

func (p *peer) established() bool { return p.state == peerEstablished }

// Router is the FRR-flavored emulated BGP speaker. It implements
// node.Router and netem.Node.
type Router struct {
	cfg   *node.Config
	peers map[string]*peer
	// order keeps peers in configuration order for deterministic iteration.
	order  []string
	locRIB *rib.LocRIB

	exploreMachine *concolic.Machine
	explorePeer    string
	explorePending bool
	activeMachine  *concolic.Machine
	hook           node.UpdateHook

	stats     node.RouterStats
	events    []node.RouteEvent
	panicked  bool
	lastPanic string
	started   bool
}

// Interface check: frr.Router is a full node.Router backend.
var _ node.Router = (*Router)(nil)

// New builds a router from the semantic configuration and installs the
// locally originated routes into the Loc-RIB.
func New(cfg *node.Config) (*Router, error) {
	cfg = cfg.Clone()
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := newOn(cfg)
	r.originate()
	return r, nil
}

// newOn wires the empty peer book and RIBs for a validated configuration.
func newOn(cfg *node.Config) *Router {
	r := &Router{
		cfg:    cfg,
		peers:  make(map[string]*peer, len(cfg.Neighbors)),
		locRIB: rib.NewLocRIBFor(Decision),
	}
	for _, n := range cfg.Neighbors {
		r.addPeer(n)
	}
	return r
}

func (r *Router) addPeer(n node.NeighborConfig) *peer {
	p := &peer{
		name:      n.Name,
		as:        n.AS,
		importMap: n.Import,
		exportMap: n.Export,
		adjIn:     rib.NewAdjRIBIn(),
		adjOut:    rib.NewAdjRIBOut(),
	}
	r.peers[n.Name] = p
	r.order = append(r.order, n.Name)
	return p
}

func (r *Router) originate() {
	for _, pfx := range r.cfg.Networks {
		r.locRIB.Update(nil, &rib.Route{
			Prefix: pfx,
			Attrs:  &bgp.PathAttributes{Origin: bgp.OriginIGP, NextHop: uint32(r.cfg.RouterID)},
			Local:  true,
		})
		r.stats.RoutesOriginated++
	}
}

// ID implements netem.Node.
func (r *Router) ID() netem.NodeID { return netem.NodeID(r.cfg.Name) }

// Implementation implements node.Router.
func (r *Router) Implementation() string { return Implementation }

// Config implements node.Router.
func (r *Router) Config() *node.Config { return r.cfg }

// LocRIB implements node.Router.
func (r *Router) LocRIB() *rib.LocRIB { return r.locRIB }

// AdjIn returns the Adj-RIB-In for a peer, or nil.
func (r *Router) AdjIn(name string) *rib.AdjRIBIn {
	if p := r.peers[name]; p != nil {
		return p.adjIn
	}
	return nil
}

// AdjOut returns the Adj-RIB-Out for a peer, or nil.
func (r *Router) AdjOut(name string) *rib.AdjRIBOut {
	if p := r.peers[name]; p != nil {
		return p.adjOut
	}
	return nil
}

// Stats implements node.Router.
func (r *Router) Stats() node.RouterStats { return r.stats }

// Events implements node.Router.
func (r *Router) Events() []node.RouteEvent { return r.events }

// Panicked implements node.Router.
func (r *Router) Panicked() (bool, string) { return r.panicked, r.lastPanic }

// SetUpdateHook implements node.Router.
func (r *Router) SetUpdateHook(h node.UpdateHook) { r.hook = h }

// ActiveMachine implements node.Router (and node.HookContext).
func (r *Router) ActiveMachine() *concolic.Machine { return r.activeMachine }

// ExploreNextUpdate implements node.Router: the next UPDATE received from
// the named peer is parsed under the machine.
func (r *Router) ExploreNextUpdate(m *concolic.Machine, fromPeer string) {
	r.exploreMachine, r.explorePeer, r.explorePending = m, fromPeer, true
}

//
// netem.Node implementation
//

// Start implements netem.Node: every configured peer leaves Idle by sending
// OPEN.
func (r *Router) Start(env netem.Env) {
	if r.started {
		return
	}
	r.started = true
	for _, name := range r.order {
		r.connect(env, r.peers[name])
	}
}

func (r *Router) connect(env netem.Env, p *peer) {
	p.state = peerOpenSent
	r.send(env, p.name, &bgp.Open{
		Version:  bgp.Version,
		AS:       r.cfg.AS,
		HoldTime: uint16(r.cfg.HoldTime / time.Second),
		RouterID: r.cfg.RouterID,
	})
	r.stats.OpensSent++
	env.SetTimer("retry/"+p.name, r.cfg.ConnectRetry)
}

// HandleTimer implements netem.Node.
func (r *Router) HandleTimer(env netem.Env, name string) {
	if peerName, ok := strings.CutPrefix(name, "retry/"); ok {
		if p := r.peers[peerName]; p != nil && !p.established() {
			r.connect(env, p)
		}
		return
	}
	if peerName, ok := strings.CutPrefix(name, "keepalive/"); ok {
		p := r.peers[peerName]
		if p != nil && p.established() && r.cfg.KeepaliveInterval > 0 {
			r.send(env, peerName, &bgp.Keepalive{})
			r.stats.KeepalivesSent++
			env.SetTimer(name, r.cfg.KeepaliveInterval)
		}
	}
}

// HandleMessage implements netem.Node. Handler crashes (including those from
// injected programming errors) are contained and recorded, mirroring a
// daemon whose crash is flagged by its supervisor.
func (r *Router) HandleMessage(env netem.Env, from netem.NodeID, payload []byte) {
	defer func() {
		if rec := recover(); rec != nil {
			r.panicked = true
			r.lastPanic = fmt.Sprint(rec)
			r.stats.HandlerCrashes++
		}
	}()
	p := r.peers[string(from)]
	if p == nil {
		return // message from an unconfigured neighbor: ignore
	}
	typ, body, err := bgp.ValidateHeader(payload)
	if err != nil {
		r.protocolError(env, p, err)
		return
	}
	switch typ {
	case bgp.MsgOpen:
		r.recvOpen(env, p, body)
	case bgp.MsgKeepalive:
		r.recvKeepalive(env, p)
	case bgp.MsgNotification:
		p.notifsRecvd++
		r.dropPeer(env, p)
	case bgp.MsgUpdate:
		if !p.established() {
			r.protocolError(env, p, &bgp.MessageError{Code: bgp.ErrFiniteStateMachine, Reason: "UPDATE outside Established"})
			return
		}
		r.recvUpdate(env, p, body)
	}
}

// openWire rebuilds the wire header for an OPEN body so the shared decoder
// can be reused for validation.
func openWire(body []byte) []byte {
	hdr := make([]byte, bgp.HeaderLen, bgp.HeaderLen+len(body))
	for i := 0; i < bgp.MarkerLen; i++ {
		hdr[i] = 0xff
	}
	total := bgp.HeaderLen + len(body)
	hdr[16], hdr[17], hdr[18] = byte(total>>8), byte(total), byte(bgp.MsgOpen)
	return append(hdr, body...)
}

func (r *Router) recvOpen(env netem.Env, p *peer, body []byte) {
	msg, err := bgp.Decode(openWire(body))
	if err != nil {
		r.protocolError(env, p, err)
		return
	}
	open := msg.(*bgp.Open)
	if open.AS != p.as&0xffff && open.AS != p.as {
		r.protocolError(env, p, &bgp.MessageError{Code: bgp.ErrOpenMessage, Subcode: bgp.ErrSubBadPeerAS,
			Reason: fmt.Sprintf("expected AS %d, got %d", p.as, open.AS)})
		return
	}
	p.routerID = open.RouterID
	switch p.state {
	case peerIdle, peerOpenSent:
		// Collision handling is collapsed: reply with our OPEN if we had not
		// sent one, then confirm.
		if p.state == peerIdle {
			r.send(env, p.name, &bgp.Open{
				Version:  bgp.Version,
				AS:       r.cfg.AS,
				HoldTime: uint16(r.cfg.HoldTime / time.Second),
				RouterID: r.cfg.RouterID,
			})
			r.stats.OpensSent++
		}
		r.send(env, p.name, &bgp.Keepalive{})
		r.stats.KeepalivesSent++
		p.state = peerOpenConfirm
	case peerOpenConfirm, peerEstablished:
		// Duplicate OPEN: ignore.
	}
}

func (r *Router) recvKeepalive(env netem.Env, p *peer) {
	if p.state != peerOpenConfirm {
		return // refreshes the (disabled) hold timer; nothing to do
	}
	p.state = peerEstablished
	env.CancelTimer("retry/" + p.name)
	if r.cfg.KeepaliveInterval > 0 {
		env.SetTimer("keepalive/"+p.name, r.cfg.KeepaliveInterval)
	}
	// Initial table exchange: the current best of every prefix.
	for _, pfx := range r.locRIB.Prefixes() {
		r.advertise(env, p, pfx, r.locRIB.Best(pfx))
	}
}

// protocolError sends a NOTIFICATION for the error and tears the peer down.
func (r *Router) protocolError(env netem.Env, p *peer, err error) {
	r.stats.ParseErrors++
	if merr, ok := err.(*bgp.MessageError); ok {
		r.send(env, p.name, merr.Notification())
	} else {
		r.send(env, p.name, &bgp.Notification{Code: bgp.ErrCease})
	}
	p.notifsSent++
	r.stats.NotificationsSent++
	r.dropPeer(env, p)
}

// dropPeer tears the peer down: all routes learned from it are withdrawn
// (the "local session reset" whose system-wide consequences the paper calls
// out) and the session restarts after the retry timer.
func (r *Router) dropPeer(env netem.Env, p *peer) {
	if p.established() {
		r.stats.SessionResets++
	}
	p.state = peerIdle
	p.downCount++
	for _, route := range p.adjIn.Routes() {
		p.adjIn.Remove(route.Prefix)
		r.bestChanged(env, r.locRIB.Withdraw(nil, route.Prefix, p.name), p.name)
	}
	for _, route := range p.adjOut.Routes() {
		p.adjOut.Remove(route.Prefix)
	}
	env.SetTimer("retry/"+p.name, r.cfg.ConnectRetry)
}

//
// UPDATE processing — the state-changing code DiCE focuses on.
//

func (r *Router) recvUpdate(env netem.Env, p *peer, body []byte) {
	r.stats.UpdatesReceived++

	var m *concolic.Machine
	if r.explorePending && r.explorePeer == p.name {
		m = r.exploreMachine
		r.explorePending = false
		r.stats.ExploredSymbolic++
	}
	r.activeMachine = m
	defer func() { r.activeMachine = nil }()

	u, err := bgp.ParseUpdateSym(m, "update", body)
	if err != nil {
		r.protocolError(env, p, err)
		return
	}

	if r.hook != nil {
		if herr := r.hook(r, p.name, u); herr != nil {
			// The injected programming error "crashed" the handler.
			r.panicked = true
			r.lastPanic = herr.Error()
			r.stats.HandlerCrashes++
			r.stats.UpdatesHookDropped++
			return
		}
	}

	for _, pfx := range u.Withdrawn {
		if p.adjIn.Remove(pfx) {
			r.bestChanged(env, r.locRIB.Withdraw(m, pfx, p.name), p.name)
		}
	}
	r.applyAnnouncements(env, p, m, u)
}

func (r *Router) applyAnnouncements(env netem.Env, p *peer, m *concolic.Machine, u *bgp.Update) {
	if len(u.NLRI) == 0 || u.Attrs == nil {
		return
	}
	for i, pfx := range u.NLRI {
		attrs := u.Attrs.Clone()

		// eBGP loop prevention: a path that already contains our AS is
		// ignored.
		if attrs.HasASLoop(r.cfg.AS) {
			r.stats.ASLoopsIgnored++
			continue
		}

		route := &rib.Route{
			Prefix:       pfx,
			Attrs:        attrs,
			Peer:         p.name,
			PeerAS:       p.as,
			PeerRouterID: p.routerID,
			EBGP:         p.as != r.cfg.AS,
		}
		if m != nil && u.Sym != nil {
			sym := rib.SymFromUpdate(u.Sym)
			if i < len(u.Sym.NLRI) {
				sym.PrefixLen = u.Sym.NLRI[i].Len
				sym.PrefixAddr = u.Sym.NLRI[i].Addr
				sym.HasPrefix = true
			}
			route.Sym = sym
		}

		// LOCAL_PREF is an iBGP attribute: on eBGP sessions the received
		// value is discarded and import policy assigns a fresh one. The
		// symbolic shadow is scrubbed with it so exploration cannot reason
		// about a LOCAL_PREF the router concretely ignores (kept in lockstep
		// with the bird backend).
		if route.EBGP {
			route.Attrs.LocalPref = nil
			if route.Sym != nil {
				route.Sym.HasLocalPref = false
			}
		}

		// Import route-map (interpreted; constraints recorded when tracing).
		if res := r.cfg.Policies[p.importMap].Apply(m, route); res == policy.ResultReject {
			r.stats.ImportRejected++
			// Treat-as-withdraw for any previously accepted route.
			if p.adjIn.Remove(pfx) {
				r.bestChanged(env, r.locRIB.Withdraw(m, pfx, p.name), p.name)
			}
			continue
		}

		// The paper treats "is this route the locally most preferred one" as
		// a symbolic condition; under exploration the choice byte lets the
		// explorer force the route to lose the selection.
		if m != nil {
			preferred := m.Choice("preferred/"+pfx.String(), true)
			if !m.Branch("frr/route.preferred", preferred) {
				route.Attrs.SetLocalPref(0)
				if route.Sym != nil {
					route.Sym.HasLocalPref = false
				}
			}
		}

		p.adjIn.Set(route.Clone())
		r.bestChanged(env, r.locRIB.Update(m, route), p.name)
	}
}

// bestChanged reacts to a best-route change: it records the event and
// re-advertises (or withdraws) the prefix to every established peer
// according to export policy.
func (r *Router) bestChanged(env netem.Env, change rib.BestChange, learnedFrom string) {
	if !change.Changed {
		return
	}
	r.stats.BestChanges++
	r.events = append(r.events, node.RouteEvent{
		At:     env.Now(),
		Prefix: change.Prefix,
		OldVia: viaOf(change.Old),
		NewVia: viaOf(change.New),
	})
	for _, name := range r.order {
		p := r.peers[name]
		if !p.established() || name == learnedFrom {
			continue // never echo back to the peer the change came from
		}
		r.advertise(env, p, change.Prefix, change.New)
	}
}

// advertise sends the export-policy view of the best route for one prefix to
// one peer, or a withdrawal when the route is gone or filtered.
func (r *Router) advertise(env netem.Env, p *peer, pfx bgp.Prefix, best *rib.Route) {
	withdraw := func() {
		if p.adjOut.Remove(pfx) {
			r.send(env, p.name, &bgp.Update{Withdrawn: []bgp.Prefix{pfx}})
			r.stats.WithdrawalsSent++
			r.stats.UpdatesSent++
		}
	}
	// No route, or a route that must not be advertised back to its source.
	if best == nil || best.Peer == p.name {
		withdraw()
		return
	}
	export := best.Clone()
	if r.cfg.Policies[p.exportMap].Apply(nil, export) == policy.ResultReject {
		r.stats.ExportRejected++
		withdraw()
		return
	}
	attrs := export.Attrs
	attrs.PrependAS(r.cfg.AS, 1)
	attrs.NextHop = uint32(r.cfg.RouterID)
	// LOCAL_PREF is not carried on eBGP sessions.
	if p.as != r.cfg.AS {
		attrs.LocalPref = nil
	}
	p.adjOut.Set(&rib.Route{Prefix: pfx, Attrs: attrs, Peer: p.name})
	r.send(env, p.name, &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{pfx}})
	r.stats.UpdatesSent++
}

func (r *Router) send(env netem.Env, to string, msg bgp.Message) {
	env.Send(netem.NodeID(to), bgp.Encode(msg))
}

func viaOf(route *rib.Route) string {
	switch {
	case route == nil:
		return ""
	case route.Local:
		return "local"
	default:
		return route.Peer
	}
}

// CheckInvariants implements node.Router: the same local state checks as the
// bird backend, so cross-implementation verdicts are comparable.
func (r *Router) CheckInvariants() []string {
	var violations []string
	if r.panicked {
		violations = append(violations, fmt.Sprintf("handler crashed: %s", r.lastPanic))
	}
	for _, best := range r.locRIB.BestRoutes() {
		if best.Attrs == nil {
			violations = append(violations, fmt.Sprintf("best route for %s has nil attributes", best.Prefix))
			continue
		}
		if !best.Local && best.Attrs.HasASLoop(r.cfg.AS) {
			violations = append(violations, fmt.Sprintf("best route for %s contains own AS %d in path", best.Prefix, r.cfg.AS))
		}
		if !best.Prefix.Valid() {
			violations = append(violations, fmt.Sprintf("best route for invalid prefix %s", best.Prefix))
		}
		if !best.Local {
			p := r.peers[best.Peer]
			if p == nil || p.adjIn.Get(best.Prefix) == nil {
				violations = append(violations, fmt.Sprintf("best route for %s via %s missing from Adj-RIB-In", best.Prefix, best.Peer))
			}
		}
	}
	for _, name := range r.order {
		p := r.peers[name]
		if p.established() {
			continue
		}
		if p.adjOut.Len() > 0 {
			violations = append(violations, fmt.Sprintf("Adj-RIB-Out for down session %s is not empty", name))
		}
	}
	r.stats.InvariantFailures = len(violations)
	return violations
}
