package frr

import (
	"fmt"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/node"
)

// Checkpoint is a lightweight checkpoint of one frr router. Unlike the bird
// backend — which serializes its configuration as discrete fields plus
// BIRD-filter policy text — an frr checkpoint carries the whole
// configuration as one ConfigText blob in the frr dialect (dialect.go),
// exactly as a real bgpd would ship its vtysh running-config. RIB contents,
// sessions and counters use the shared record forms from package node.
type Checkpoint struct {
	Name       string
	ConfigText string

	Sessions []node.SessionRecord
	AdjIn    node.PeerRouteMap
	LocRIB   []node.RouteRecord
	AdjOut   node.PeerRouteMap

	Stats     node.RouterStats
	Events    []node.EventRecord
	Panicked  bool
	LastPanic string
	Started   bool

	// cfg keeps the in-process configuration so a same-process restore does
	// not re-parse ConfigText. Unexported: a checkpoint that crossed a
	// process boundary restores from the dialect text.
	cfg *node.Config
}

// NodeName implements node.Checkpoint.
func (cp *Checkpoint) NodeName() string { return cp.Name }

// Implementation implements node.Checkpoint.
func (cp *Checkpoint) Implementation() string { return Implementation }

// TakeCheckpoint implements node.Router.
func (r *Router) TakeCheckpoint() node.Checkpoint { return r.Checkpoint() }

// Checkpoint captures the router's current state.
func (r *Router) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Name:       r.cfg.Name,
		ConfigText: Render(r.cfg),
		AdjIn:      make(map[string][]node.RouteRecord),
		AdjOut:     make(map[string][]node.RouteRecord),
		Stats:      r.stats,
		Panicked:   r.panicked,
		LastPanic:  r.lastPanic,
		Started:    r.started,
		cfg:        r.cfg,
	}
	for _, name := range r.order {
		p := r.peers[name]
		cp.Sessions = append(cp.Sessions, node.SessionRecord{
			Peer:                  p.name,
			PeerAS:                uint32(p.as),
			State:                 int(p.state),
			PeerRouterID:          uint32(p.routerID),
			DownCount:             p.downCount,
			NotificationsSent:     p.notifsSent,
			NotificationsReceived: p.notifsRecvd,
		})
		for _, route := range p.adjIn.Routes() {
			cp.AdjIn[name] = append(cp.AdjIn[name], node.RecordFromRoute(route))
		}
		for _, route := range p.adjOut.Routes() {
			cp.AdjOut[name] = append(cp.AdjOut[name], node.RecordFromRoute(route))
		}
	}
	for _, pfx := range r.locRIB.Prefixes() {
		for _, cand := range r.locRIB.Candidates(pfx) {
			cp.LocRIB = append(cp.LocRIB, node.RecordFromRoute(cand))
		}
	}
	for _, ev := range r.events {
		cp.Events = append(cp.Events, node.EventRecord{
			AtNanos: int64(ev.At),
			Prefix:  ev.Prefix.String(),
			OldVia:  ev.OldVia,
			NewVia:  ev.NewVia,
		})
	}
	return cp
}

// Image is the immutable, shareable part of a restored frr router: its
// validated configuration. Built once per snapshot and shared by clones.
type Image struct {
	cfg *node.Config
}

// NewImage validates the configuration once and freezes it into an image.
func NewImage(cfg *node.Config) (*Image, error) {
	cfg = cfg.Clone()
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Image{cfg: cfg}, nil
}

// ImageOf builds the image for a checkpoint: the in-process configuration
// when the checkpoint never left the process, otherwise the configuration is
// re-parsed from the dialect text — once, instead of once per restore.
func ImageOf(cp *Checkpoint) (*Image, error) {
	cfg := cp.cfg
	if cfg == nil {
		parsed, err := ParseConfig(cp.ConfigText)
		if err != nil {
			return nil, fmt.Errorf("frr: restore %s: %w", cp.Name, err)
		}
		cfg = parsed
	}
	return NewImage(cfg)
}

// Name implements node.Image.
func (im *Image) Name() string { return im.cfg.Name }

// Implementation implements node.Image.
func (im *Image) Implementation() string { return Implementation }

// Config returns the image's frozen configuration. Callers must not mutate
// it.
func (im *Image) Config() *node.Config { return im.cfg }

// routeSpan names the peer a run of decoded routes belongs to.
type routeSpan struct {
	peer     string
	from, to int
}

// State is the decoded, restore-ready mutable state of one frr checkpoint.
// Where bird flattens routes into a slab template, frr keeps the decoded
// routes and clones each on instantiation — a simpler model with the same
// observable behavior (the cross-backend golden tests hold both to it).
// A State is immutable after DecodeState and safe to share across clones.
type State struct {
	sessions  []node.SessionRecord
	routes    []*rib.Route
	locRIB    routeSpan
	adjIn     []routeSpan
	adjOut    []routeSpan
	stats     node.RouterStats
	events    []node.RouteEvent
	panicked  bool
	lastPanic string
	started   bool
}

// DecodeState converts a checkpoint's serializable records into restore-ready
// form.
func DecodeState(cp *Checkpoint) (*State, error) {
	st := &State{
		sessions:  append([]node.SessionRecord(nil), cp.Sessions...),
		stats:     cp.Stats,
		panicked:  cp.Panicked,
		lastPanic: cp.LastPanic,
		started:   cp.Started,
	}
	decode := func(peer string, recs []node.RouteRecord) (routeSpan, error) {
		sp := routeSpan{peer: peer, from: len(st.routes)}
		for _, rec := range recs {
			route, err := rec.Route()
			if err != nil {
				return sp, fmt.Errorf("frr: restore %s: %w", cp.Name, err)
			}
			st.routes = append(st.routes, route)
		}
		sp.to = len(st.routes)
		return sp, nil
	}
	var err error
	if st.locRIB, err = decode("", cp.LocRIB); err != nil {
		return nil, err
	}
	// Session order is the configuration order, which is also how the maps
	// were filled; iterate the session records to keep decoding stable.
	for _, sr := range cp.Sessions {
		sp, err := decode(sr.Peer, cp.AdjIn[sr.Peer])
		if err != nil {
			return nil, err
		}
		st.adjIn = append(st.adjIn, sp)
		if sp, err = decode(sr.Peer, cp.AdjOut[sr.Peer]); err != nil {
			return nil, err
		}
		st.adjOut = append(st.adjOut, sp)
	}
	for _, ev := range cp.Events {
		pfx, err := bgp.ParsePrefix(ev.Prefix)
		if err != nil {
			return nil, fmt.Errorf("frr: restore %s: %w", cp.Name, err)
		}
		st.events = append(st.events, node.RouteEvent{
			At:     time.Duration(ev.AtNanos),
			Prefix: pfx,
			OldVia: ev.OldVia,
			NewVia: ev.NewVia,
		})
	}
	return st, nil
}

// Restore builds a fresh router on the image and applies the state to it.
func (im *Image) Restore(st *State) (*Router, error) {
	r := newOn(im.cfg)
	if err := r.applyState(im, st); err != nil {
		return nil, err
	}
	return r, nil
}

// Restore builds a fresh Router from a checkpoint (the cold path; see
// ImageOf/DecodeState for the shared-decode path).
func Restore(cp *Checkpoint) (*Router, error) {
	im, err := ImageOf(cp)
	if err != nil {
		return nil, err
	}
	st, err := DecodeState(cp)
	if err != nil {
		return nil, err
	}
	return im.Restore(st)
}

// ResetTo implements node.Router: it returns the router to the snapshot
// described by (image, state) in place — the pooled-clone hot path.
func (r *Router) ResetTo(nim node.Image, nst node.State) error {
	im, ok := nim.(*Image)
	if !ok {
		return fmt.Errorf("frr: reset %s: image is %T, not an frr image", r.cfg.Name, nim)
	}
	st, ok := nst.(*State)
	if !ok {
		return fmt.Errorf("frr: reset %s: state is %T, not an frr state", r.cfg.Name, nst)
	}
	r.exploreMachine, r.explorePeer, r.explorePending = nil, "", false
	r.activeMachine = nil
	r.hook = nil
	return r.applyState(im, st)
}

// applyState overwrites the router's mutable state with a fresh
// instantiation of the decoded state. Every route is deep-copied, so
// concurrent clones sharing one State never alias mutable attributes.
func (r *Router) applyState(im *Image, st *State) error {
	r.cfg = im.cfg
	r.peers = make(map[string]*peer, len(im.cfg.Neighbors))
	r.order = r.order[:0]
	for _, n := range im.cfg.Neighbors {
		r.addPeer(n)
	}
	for _, sr := range st.sessions {
		p := r.peers[sr.Peer]
		if p == nil {
			return fmt.Errorf("frr: restore %s: unknown session %s", im.cfg.Name, sr.Peer)
		}
		p.state = peerState(sr.State)
		p.routerID = bgp.RouterID(sr.PeerRouterID)
		p.downCount = sr.DownCount
		p.notifsSent = sr.NotificationsSent
		p.notifsRecvd = sr.NotificationsReceived
	}
	r.locRIB = rib.NewLocRIBFor(Decision)
	for i := st.locRIB.from; i < st.locRIB.to; i++ {
		r.locRIB.InsertCandidate(st.routes[i].Clone())
	}
	r.locRIB.ReselectAll()
	fill := func(spans []routeSpan, set func(p *peer, route *rib.Route)) error {
		for _, sp := range spans {
			p := r.peers[sp.peer]
			if p == nil {
				return fmt.Errorf("frr: restore %s: unknown session %s", im.cfg.Name, sp.peer)
			}
			for i := sp.from; i < sp.to; i++ {
				set(p, st.routes[i].Clone())
			}
		}
		return nil
	}
	if err := fill(st.adjIn, func(p *peer, route *rib.Route) { p.adjIn.Set(route) }); err != nil {
		return err
	}
	if err := fill(st.adjOut, func(p *peer, route *rib.Route) { p.adjOut.Set(route) }); err != nil {
		return err
	}
	r.stats = st.stats
	r.panicked = st.panicked
	r.lastPanic = st.lastPanic
	r.started = st.started
	if len(st.events) > 0 {
		r.events = append(r.events[:0:0], st.events...)
	} else {
		r.events = nil
	}
	return nil
}
