package node

import (
	"fmt"
	"sort"
	"sync"

	"github.com/dice-project/dice/internal/bgp/rib"
)

// DefaultImplementation is the backend used for topology nodes that do not
// tag one explicitly, preserving the homogeneous behavior of earlier
// releases byte for byte.
const DefaultImplementation = "bird"

// Backend is one registered router implementation. The cluster and snapshot
// layers drive every per-implementation operation through it, so a new
// backend plugs in by registering — no cluster, checkpoint or campaign code
// names a concrete speaker.
type Backend struct {
	// Name is the implementation tag topology nodes and checkpoints carry.
	Name string
	// Decision is the backend's RIB tie-breaking order. The
	// CrossImplDivergence checker replays candidate sets through the
	// deployed backends' policies to flag selections that depend on which
	// implementation a node runs.
	Decision rib.DecisionPolicy
	// Build constructs a running router from the semantic configuration.
	Build func(cfg *Config) (Router, error)
	// ImageOf decodes a checkpoint's immutable half (validated config).
	ImageOf func(cp Checkpoint) (Image, error)
	// DecodeState decodes a checkpoint's mutable half into restore-ready
	// form.
	DecodeState func(cp Checkpoint) (State, error)
	// Restore builds a fresh router from a decoded image and state.
	Restore func(im Image, st State) (Router, error)
	// DecodeCheckpoint deserializes one checkpoint from its single-node
	// legacy gob encoding. Single-node encodings are concrete-typed — unlike
	// a whole snapshot's interface-valued node map — so crossing a process
	// boundary node by node needs the backend to name the concrete type to
	// decode into. Optional; it is only the fallback for artifacts written
	// before the deterministic codec (EncodeCanonical) existed.
	DecodeCheckpoint func(data []byte) (Checkpoint, error)
	// EncodeCanonical serializes a checkpoint into the backend's
	// deterministic canonical codec payload: identical state always encodes
	// to identical bytes (sorted map iteration, varint slabs). This is the
	// byte form content hashes and binary deltas are computed over, framed
	// by checkpoint.EncodeNode with the codec header and implementation tag.
	// Optional: backends without it fall back to gob encoding and lose
	// content addressing.
	EncodeCanonical func(cp Checkpoint) ([]byte, error)
	// DecodeCanonical parses a canonical payload produced by EncodeCanonical
	// back into a checkpoint. Malformed payloads error, never panic.
	DecodeCanonical func(payload []byte) (Checkpoint, error)
}

// Registry is an isolated backend namespace. Production code uses the
// process-wide default registry that the package-level functions delegate
// to; tests that need throwaway backends (crash stand-ins, wrapped drivers)
// construct their own Registry so nothing leaks across test boundaries and
// duplicate-name panics cannot depend on registration order across tests.
//
// The zero value is ready to use.
type Registry struct {
	mu  sync.RWMutex
	set map[string]Backend
}

// NewRegistry returns an empty backend registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a backend to the registry. Registering an incomplete
// backend or re-registering a name panics (two packages claiming one
// implementation is a programming error, not a runtime condition).
func (reg *Registry) Register(b Backend) {
	if b.Name == "" || b.Build == nil || b.ImageOf == nil || b.DecodeState == nil || b.Restore == nil {
		panic("node: incomplete backend registration")
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.set == nil {
		reg.set = make(map[string]Backend)
	}
	if _, dup := reg.set[b.Name]; dup {
		panic(fmt.Sprintf("node: backend %q registered twice", b.Name))
	}
	reg.set[b.Name] = b
}

// BackendFor resolves an implementation tag ("" selects the default).
func (reg *Registry) BackendFor(impl string) (Backend, error) {
	if impl == "" {
		impl = DefaultImplementation
	}
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	b, ok := reg.set[impl]
	if !ok {
		return Backend{}, fmt.Errorf("node: unknown router implementation %q (registered: %v)", impl, reg.registeredLocked())
	}
	return b, nil
}

// Implementations returns the registered backend names, sorted.
func (reg *Registry) Implementations() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.registeredLocked()
}

func (reg *Registry) registeredLocked() []string {
	names := make([]string, 0, len(reg.set))
	for name := range reg.set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildRouter constructs a router of the given implementation ("" selects
// the default) from the semantic configuration.
func (reg *Registry) BuildRouter(impl string, cfg *Config) (Router, error) {
	b, err := reg.BackendFor(impl)
	if err != nil {
		return nil, err
	}
	return b.Build(cfg)
}

// RestoreRouter rebuilds a router from a checkpoint by dispatching to the
// backend the checkpoint names. It is the cold path: every call re-decodes
// the checkpoint; code restoring many clones of one snapshot should decode
// an image and state once (checkpoint.Store does) and restore onto those.
func (reg *Registry) RestoreRouter(cp Checkpoint) (Router, error) {
	b, err := reg.BackendFor(cp.Implementation())
	if err != nil {
		return nil, err
	}
	im, err := b.ImageOf(cp)
	if err != nil {
		return nil, err
	}
	st, err := b.DecodeState(cp)
	if err != nil {
		return nil, err
	}
	return b.Restore(im, st)
}

// defaultRegistry is the process-wide namespace backend packages register
// into from their init functions.
var defaultRegistry = NewRegistry()

// Register adds a backend to the default registry. Backends register from
// their package init, so importing an implementation package makes it
// available; re-registering a name panics.
func Register(b Backend) { defaultRegistry.Register(b) }

// BackendFor resolves an implementation tag in the default registry ("" selects
// the default implementation).
func BackendFor(impl string) (Backend, error) { return defaultRegistry.BackendFor(impl) }

// Implementations returns the default registry's backend names, sorted.
func Implementations() []string { return defaultRegistry.Implementations() }

// BuildRouter constructs a router via the default registry.
func BuildRouter(impl string, cfg *Config) (Router, error) {
	return defaultRegistry.BuildRouter(impl, cfg)
}

// RestoreRouter rebuilds a router from a checkpoint via the default registry.
func RestoreRouter(cp Checkpoint) (Router, error) {
	return defaultRegistry.RestoreRouter(cp)
}
