package node

import (
	"bytes"
	"encoding/gob"
	"sort"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
)

// RouteRecord is the serializable form of one RIB entry. It carries no
// pointers or interfaces so it can be encoded with encoding/gob or JSON.
// Both backends checkpoint their RIB contents as RouteRecords; what differs
// per backend is the configuration dialect wrapped around them.
type RouteRecord struct {
	Prefix       string
	Origin       uint8
	ASPath       []uint32
	ASSet        []uint32
	NextHop      uint32
	HasMED       bool
	MED          uint32
	HasLocalPref bool
	LocalPref    uint32
	Communities  []uint32
	Peer         string
	PeerAS       uint32
	PeerRouterID uint32
	EBGP         bool
	Local        bool
	// Age is the Loc-RIB arrival stamp (rib.Route.Age); zero for routes that
	// never received one (Adj-RIB entries, legacy checkpoints).
	Age uint64
}

// RecordFromRoute flattens a RIB route into its serializable record.
func RecordFromRoute(r *rib.Route) RouteRecord {
	rec := RouteRecord{
		Prefix:       r.Prefix.String(),
		Origin:       r.Attrs.Origin,
		NextHop:      r.Attrs.NextHop,
		Peer:         r.Peer,
		PeerAS:       uint32(r.PeerAS),
		PeerRouterID: uint32(r.PeerRouterID),
		EBGP:         r.EBGP,
		Local:        r.Local,
		Age:          r.Age,
	}
	for _, a := range r.Attrs.ASPath {
		rec.ASPath = append(rec.ASPath, uint32(a))
	}
	for _, a := range r.Attrs.ASSet {
		rec.ASSet = append(rec.ASSet, uint32(a))
	}
	for _, c := range r.Attrs.Communities {
		rec.Communities = append(rec.Communities, uint32(c))
	}
	if r.Attrs.MED != nil {
		rec.HasMED = true
		rec.MED = *r.Attrs.MED
	}
	if r.Attrs.LocalPref != nil {
		rec.HasLocalPref = true
		rec.LocalPref = *r.Attrs.LocalPref
	}
	return rec
}

// Route reconstructs the RIB route the record was taken from.
func (rec RouteRecord) Route() (*rib.Route, error) {
	p, err := bgp.ParsePrefix(rec.Prefix)
	if err != nil {
		return nil, err
	}
	attrs := &bgp.PathAttributes{
		Origin:  rec.Origin,
		NextHop: rec.NextHop,
	}
	for _, a := range rec.ASPath {
		attrs.ASPath = append(attrs.ASPath, bgp.ASN(a))
	}
	for _, a := range rec.ASSet {
		attrs.ASSet = append(attrs.ASSet, bgp.ASN(a))
	}
	for _, c := range rec.Communities {
		attrs.Communities = append(attrs.Communities, bgp.Community(c))
	}
	if rec.HasMED {
		attrs.SetMED(rec.MED)
	}
	if rec.HasLocalPref {
		attrs.SetLocalPref(rec.LocalPref)
	}
	return &rib.Route{
		Prefix:       p,
		Attrs:        attrs,
		Peer:         rec.Peer,
		PeerAS:       bgp.ASN(rec.PeerAS),
		PeerRouterID: bgp.RouterID(rec.PeerRouterID),
		EBGP:         rec.EBGP,
		Local:        rec.Local,
		Age:          rec.Age,
	}, nil
}

// SessionRecord is the serializable form of one session's state.
type SessionRecord struct {
	Peer                  string
	PeerAS                uint32
	State                 int
	PeerRouterID          uint32
	DownCount             int
	NotificationsSent     int
	NotificationsReceived int
}

// EventRecord is the serializable form of a RouteEvent.
type EventRecord struct {
	AtNanos int64
	Prefix  string
	OldVia  string
	NewVia  string
}

// PeerRouteMap maps a peer name to the route records learned from (or
// advertised to) that peer. Plain Go maps gob-encode in randomized iteration
// order, so the same checkpoint would serialize to different bytes on every
// encoding; PeerRouteMap instead travels as a peer-sorted entry list. The
// snapshot-delta wire format depends on this determinism: shard deltas are
// binary patches against a baseline encoding that control plane and agents
// compute independently, which is only sound when identical state always
// encodes to identical bytes.
type PeerRouteMap map[string][]RouteRecord

// peerRoutesEntry is the sorted shipping form of one PeerRouteMap entry.
type peerRoutesEntry struct {
	Peer   string
	Routes []RouteRecord
}

// GobEncode implements gob.GobEncoder with a deterministic encoding.
func (m PeerRouteMap) GobEncode() ([]byte, error) {
	peers := make([]string, 0, len(m))
	for p := range m {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	entries := make([]peerRoutesEntry, 0, len(m))
	for _, p := range peers {
		entries = append(entries, peerRoutesEntry{Peer: p, Routes: m[p]})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *PeerRouteMap) GobDecode(data []byte) error {
	var entries []peerRoutesEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return err
	}
	*m = make(PeerRouteMap, len(entries))
	for _, e := range entries {
		(*m)[e.Peer] = e.Routes
	}
	return nil
}
