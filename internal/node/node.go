// Package node defines the implementation-neutral router abstraction the
// DiCE layers above the BGP speakers are written against. The paper tests
// *heterogeneous* deployments — federations whose members run different
// implementations of the same protocol — so nothing in the cluster, snapshot,
// clone-pool, checker or campaign layers may depend on a concrete speaker:
//
//   - Router is the behavioral interface a backend implements (config access,
//     RIB inspection, event log, invariant checks, checkpointing, in-place
//     reset, and the concolic exploration hooks);
//   - Checkpoint / Image / State are the opaque handles the snapshot store
//     moves around; only the owning backend can look inside them;
//   - Backend is the registry entry a backend contributes (construction,
//     checkpoint decoding, restore, and its RIB decision policy — the
//     deliberately different-but-legal tie-breaking that makes heterogeneous
//     deployments diverge);
//   - Config is the shared semantic configuration the cluster layer produces;
//     each backend lowers it into its own dialect.
//
// The concrete backends are internal/bird (the BIRD-like speaker the paper
// instruments) and internal/frr (an FRR-flavored speaker with its own config
// dialect and tie-break order).
package node

import (
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/netem"
)

// HookContext is the view of a router an injected UPDATE hook gets: enough to
// participate in concolic exploration, nothing implementation-specific.
type HookContext interface {
	// ActiveMachine returns the concolic machine of the UPDATE currently
	// being handled, or nil when processing is concrete. Fault hooks call it
	// so their trigger conditions are recorded as negatable branch
	// constraints.
	ActiveMachine() *concolic.Machine
}

// UpdateHook is called after an UPDATE has been parsed and before it is
// processed. The faults package uses it to inject programming errors into the
// message handler: a hook may mutate the update or the router, and a non-nil
// return is treated as a crash of the handler.
type UpdateHook func(r HookContext, from string, u *bgp.Update) error

// RouterStats counts router activity. All counters are cumulative since the
// router was created (and survive checkpointing). Both backends keep the
// same counter set, so the stats are comparable across implementations.
type RouterStats struct {
	UpdatesReceived    int
	UpdatesSent        int
	WithdrawalsSent    int
	OpensSent          int
	KeepalivesSent     int
	NotificationsSent  int
	ParseErrors        int
	ImportRejected     int
	ExportRejected     int
	ASLoopsIgnored     int
	BestChanges        int
	SessionResets      int
	HandlerCrashes     int
	ExploredSymbolic   int
	InvariantFailures  int
	RoutesOriginated   int
	UpdatesHookDropped int
}

// RouteEvent records one change of the best route for a prefix. The
// oscillation (policy conflict) checker consumes the sequence of events.
type RouteEvent struct {
	At     time.Duration
	Prefix bgp.Prefix
	OldVia string
	NewVia string
}

// Checkpoint is the serializable per-node half of a consistent snapshot. The
// concrete type belongs to the backend that produced it; the snapshot layer
// treats it as opaque data tagged with the node name and the implementation
// needed to restore it. Backends gob-register their concrete checkpoint
// types so mixed-implementation snapshots cross process boundaries.
type Checkpoint interface {
	// NodeName is the checkpointed router's name.
	NodeName() string
	// Implementation names the backend that can restore the checkpoint.
	Implementation() string
}

// Image is the immutable, shareable part of a restored node: its validated
// configuration in decoded form, built once per snapshot and shared by every
// clone. Opaque outside the owning backend.
type Image interface {
	// Name is the imaged router's name.
	Name() string
	// Implementation names the owning backend.
	Implementation() string
}

// State is a backend's decoded, restore-ready mutable node state. It is
// fully opaque: only Backend.Restore and Router.ResetTo consume it, and both
// reject a State produced by a different backend.
type State any

// Router is the behavioral interface every BGP speaker backend implements.
// It is the only view the cluster, checker and campaign layers have of a
// node, which is what lets one deployment mix implementations.
type Router interface {
	netem.Node

	// Implementation names the backend ("bird", "frr").
	Implementation() string
	// Config returns the router's semantic configuration. Callers must not
	// mutate it.
	Config() *Config
	// LocRIB returns the router's Loc-RIB.
	LocRIB() *rib.LocRIB
	// Events returns the best-route change log.
	Events() []RouteEvent
	// Stats returns a snapshot of the router counters.
	Stats() RouterStats
	// Panicked reports whether the UPDATE handler crashed (directly or
	// through an injected fault) and the crash reason.
	Panicked() (bool, string)
	// CheckInvariants runs the router's local state checks and returns the
	// violations. These are the checks whose boolean verdicts cross domain
	// boundaries through the narrow information-sharing interface.
	CheckInvariants() []string

	// TakeCheckpoint captures the router's current state.
	TakeCheckpoint() Checkpoint
	// ResetTo returns the router to the snapshot described by (image, state)
	// in place, overwriting every piece of mutable state. It fails when the
	// image or state belongs to a different backend.
	ResetTo(im Image, st State) error

	// ExploreNextUpdate arms symbolic tracing: the next UPDATE received from
	// the named peer is parsed under the machine. This is how the DiCE
	// orchestrator turns a cloned router into the subject of one concolic
	// execution.
	ExploreNextUpdate(m *concolic.Machine, fromPeer string)
	// SetUpdateHook installs a (possibly fault-injecting) UPDATE hook.
	SetUpdateHook(h UpdateHook)
	// ActiveMachine returns the machine of the UPDATE being handled, or nil.
	ActiveMachine() *concolic.Machine
}
