package node_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/node"
)

func validConfig() *node.Config {
	return &node.Config{
		Name: "R1", AS: 65001, RouterID: 1,
		Networks: []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")},
		Policies: map[string]*policy.Policy{"ALL": policy.AcceptAll("ALL")},
		Neighbors: []node.NeighborConfig{
			{Name: "R2", AS: 65002, Import: "ALL", Export: "ALL"},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*node.Config)
		wantErr string
	}{
		{"no name", func(c *node.Config) { c.Name = "" }, "without name"},
		{"zero AS", func(c *node.Config) { c.AS = 0 }, "AS must be non-zero"},
		{"zero router ID", func(c *node.Config) { c.RouterID = 0 }, "router ID"},
		{"anonymous neighbor", func(c *node.Config) { c.Neighbors[0].Name = "" }, "empty name or AS"},
		{"duplicate neighbor", func(c *node.Config) { c.Neighbors = append(c.Neighbors, c.Neighbors[0]) }, "duplicate neighbor"},
		{"unknown policy", func(c *node.Config) { c.Neighbors[0].Import = "NOPE" }, "unknown policy"},
		{"invalid network", func(c *node.Config) { c.Networks = append(c.Networks, bgp.Prefix{Addr: 1, Len: 40}) }, "invalid network"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mutate(cfg)
			if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestConfigApplyDefaultsAndClone(t *testing.T) {
	cfg := validConfig()
	cfg.ApplyDefaults()
	if cfg.HoldTime != 90*time.Second || cfg.ConnectRetry != 5*time.Second {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	clone := cfg.Clone()
	clone.Networks[0] = bgp.MustParsePrefix("99.9.0.0/16")
	clone.Neighbors[0].Import = "X"
	clone.Policies["NEW"] = policy.AcceptAll("NEW")
	if cfg.Networks[0] != bgp.MustParsePrefix("10.1.0.0/16") || cfg.Neighbors[0].Import != "ALL" {
		t.Errorf("Clone shares slices with the original")
	}
	if _, leaked := cfg.Policies["NEW"]; leaked {
		t.Errorf("Clone shares the policy map")
	}
	if cfg.Neighbor("R2") == nil || cfg.Neighbor("R9") != nil {
		t.Errorf("Neighbor lookup wrong")
	}
}

// TestConfigPrivacyCoversStruct is the completeness check the federation
// layer relies on: every Config field must carry a deliberate privacy
// classification, and Redacted must zero exactly the private ones.
func TestConfigPrivacyCoversStruct(t *testing.T) {
	classes := node.ConfigPrivacy()
	typ := reflect.TypeOf(node.Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := classes[name]; !ok {
			t.Errorf("Config field %s has no privacy classification", name)
		}
	}
	if len(classes) != typ.NumField() {
		t.Errorf("classification names %d fields, struct has %d", len(classes), typ.NumField())
	}

	cfg := validConfig()
	cfg.ApplyDefaults()
	red := cfg.Redacted()
	val := reflect.ValueOf(*red)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		zero := val.Field(i).IsZero()
		switch classes[name] {
		case node.PrivacyShared:
			if zero && !reflect.ValueOf(*cfg).Field(i).IsZero() {
				t.Errorf("shared field %s was redacted", name)
			}
		case node.PrivacyPrivate:
			if !zero {
				t.Errorf("private field %s survived redaction", name)
			}
		}
	}
	if node.PrivacyShared.String() != "shared" || node.PrivacyPrivate.String() != "private" {
		t.Errorf("privacy class rendering broken")
	}
}
