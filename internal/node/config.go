package node

import (
	"fmt"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
)

// NeighborConfig describes one BGP session of a router.
type NeighborConfig struct {
	// Name is the netem node ID of the peer router.
	Name string
	// AS is the peer's autonomous system.
	AS bgp.ASN
	// Import and Export name policies in Config.Policies applied to routes
	// received from / advertised to this neighbor. Empty means accept all.
	Import string
	Export string
}

// Config is the implementation-neutral semantic configuration of one router —
// the part of node state that, in a federated deployment, an operator keeps
// private. The cluster layer derives it from the topology; each backend
// lowers it into (and serializes it as) its own configuration dialect: the
// bird backend renders policies in the BIRD-filter syntax, the frr backend
// renders the whole configuration as FRR vtysh-style text with route-maps.
type Config struct {
	// Name is the router's netem node ID.
	Name string
	// AS is the router's autonomous system number.
	AS bgp.ASN
	// RouterID is the BGP identifier.
	RouterID bgp.RouterID
	// Networks are locally originated prefixes.
	Networks []bgp.Prefix
	// Neighbors are the configured sessions.
	Neighbors []NeighborConfig
	// Policies holds the named import/export policies.
	Policies map[string]*policy.Policy

	// HoldTime is the negotiated hold time (default 90s).
	HoldTime time.Duration
	// KeepaliveInterval enables periodic KEEPALIVEs when non-zero. The
	// experiments leave it at zero so that the virtual-time emulator reaches
	// quiescence when routing has converged.
	KeepaliveInterval time.Duration
	// ConnectRetry is how long to wait before re-sending an OPEN that got no
	// answer (default 5s).
	ConnectRetry time.Duration
}

// ApplyDefaults fills the zero-valued timer fields with their defaults.
func (c *Config) ApplyDefaults() {
	if c.HoldTime == 0 {
		c.HoldTime = 90 * time.Second
	}
	if c.ConnectRetry == 0 {
		c.ConnectRetry = 5 * time.Second
	}
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("node: config without name")
	}
	if c.AS == 0 {
		return fmt.Errorf("node: %s: AS must be non-zero", c.Name)
	}
	if c.RouterID == 0 {
		return fmt.Errorf("node: %s: router ID must be non-zero", c.Name)
	}
	seen := make(map[string]bool)
	for _, n := range c.Neighbors {
		if n.Name == "" || n.AS == 0 {
			return fmt.Errorf("node: %s: neighbor with empty name or AS", c.Name)
		}
		if seen[n.Name] {
			return fmt.Errorf("node: %s: duplicate neighbor %s", c.Name, n.Name)
		}
		seen[n.Name] = true
		for _, pol := range []string{n.Import, n.Export} {
			if pol == "" {
				continue
			}
			if _, ok := c.Policies[pol]; !ok {
				return fmt.Errorf("node: %s: neighbor %s references unknown policy %q", c.Name, n.Name, pol)
			}
		}
	}
	for _, p := range c.Networks {
		if !p.Valid() {
			return fmt.Errorf("node: %s: invalid network %s", c.Name, p)
		}
	}
	return nil
}

// Clone deep-copies the configuration. Policies are copied by re-using the
// same (immutable) policy values.
func (c *Config) Clone() *Config {
	out := *c
	out.Networks = append([]bgp.Prefix(nil), c.Networks...)
	out.Neighbors = append([]NeighborConfig(nil), c.Neighbors...)
	out.Policies = make(map[string]*policy.Policy, len(c.Policies))
	for k, v := range c.Policies {
		out.Policies[k] = v
	}
	return &out
}

// PrivacyClass classifies a configuration field for federated deployments:
// whether its content is observable outside the administrative domain anyway,
// or encodes operator intent that must never cross a domain boundary.
type PrivacyClass int

// Privacy classes.
const (
	// PrivacyShared marks fields already visible from outside the domain:
	// wire-level identifiers (the AS number and router ID travel in every
	// OPEN and UPDATE) and registry-public data (originated prefixes).
	PrivacyShared PrivacyClass = iota
	// PrivacyPrivate marks fields that exist only inside the domain: the
	// session book with its policy bindings, the policy definitions
	// themselves, and the local timer tuning. The federation bus carries
	// checker.Summary values only, which reference none of these; the
	// privacy test serializes the bus traffic to prove it.
	PrivacyPrivate
)

// String renders the privacy class.
func (p PrivacyClass) String() string {
	if p == PrivacyPrivate {
		return "private"
	}
	return "shared"
}

// ConfigPrivacy is the privacy classification of every Config field by name —
// the contract the federation layer is built against. A completeness test
// asserts the map covers the struct exactly, so a field added to Config
// without a deliberate classification fails the build's tests.
func ConfigPrivacy() map[string]PrivacyClass {
	return map[string]PrivacyClass{
		"Name":              PrivacyShared,
		"AS":                PrivacyShared,
		"RouterID":          PrivacyShared,
		"Networks":          PrivacyShared,
		"Neighbors":         PrivacyPrivate,
		"Policies":          PrivacyPrivate,
		"HoldTime":          PrivacyPrivate,
		"KeepaliveInterval": PrivacyPrivate,
		"ConnectRetry":      PrivacyPrivate,
	}
}

// Redacted returns the shareable projection of the configuration: every
// PrivacyPrivate field is zeroed, leaving only what other domains could
// observe anyway. It is what a federated operator could hand to a neighbor
// without disclosing intent; the running system never needs it because the
// federation bus ships summaries, not configurations.
func (c *Config) Redacted() *Config {
	// Exactly the PrivacyShared fields of ConfigPrivacy; the redaction test
	// cross-checks this against the classification map.
	return &Config{
		Name:     c.Name,
		AS:       c.AS,
		RouterID: c.RouterID,
		Networks: append([]bgp.Prefix(nil), c.Networks...),
	}
}

// Neighbor returns the configuration of the named neighbor, or nil.
func (c *Config) Neighbor(name string) *NeighborConfig {
	for i := range c.Neighbors {
		if c.Neighbors[i].Name == name {
			return &c.Neighbors[i]
		}
	}
	return nil
}
