package procdriver

import (
	"bufio"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/checkpoint/codec"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// childEnvVar switches a re-exec of the current binary into child mode.
// "serve" hosts a router over stdin/stdout; "probe" exits immediately (the
// spawn-capability check for sandboxed environments).
const childEnvVar = "DICE_PROCDRIVER_CHILD"

// MaybeRunChild must be called at the top of TestMain (or main) in every
// binary that drives "proc:" backends: when the process was spawned as a
// procdriver child it serves the frame protocol and exits, never returning.
// In the parent process it returns immediately. A binary that spawns proc
// routers without this call re-executes its own full entry point in every
// child, which at best hangs the first RPC until timeout.
func MaybeRunChild() {
	switch os.Getenv(childEnvVar) {
	case "":
		return
	case "probe":
		os.Exit(0)
	default:
		runChild(os.Stdin, os.Stdout)
		os.Exit(0)
	}
}

// SpawnCheck re-execs the current binary in probe mode and reports whether
// subprocess spawning works here at all. Tests call it to skip cleanly in
// sandboxes that forbid exec.
func SpawnCheck() error {
	cmd := childCommand("probe")
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("procdriver: cannot re-exec %s: %w", os.Args[0], err)
	}
	return nil
}

// resetForms caches a decoded checkpoint blob by content hash, so pooled
// resets to the same baseline decode once and reset many times — the same
// shape as the parent-side snapshot store.
type resetForms struct {
	im node.Image
	st node.State
}

// server hosts one inner router in a child process.
type server struct {
	r *bufio.Reader
	w *bufio.Writer

	inner   node.Router
	machine *concolic.Machine
	shipped int

	now        time.Duration
	neighbors  []netem.NodeID
	resetCache map[[32]byte]resetForms
}

func runChild(in io.Reader, out io.Writer) {
	s := &server{
		r:          bufio.NewReader(in),
		w:          bufio.NewWriter(out),
		resetCache: make(map[[32]byte]resetForms),
	}
	for {
		typ, payload, err := readFrame(s.r)
		if err != nil {
			return // parent is gone; nothing left to serve
		}
		if err := s.handle(typ, payload); err != nil {
			s.sendErr(err)
		}
		if s.w.Flush() != nil {
			return
		}
	}
}

// handle dispatches one request. A returned error is a request failure
// (answered with frameErr, the child stays up); protocol-level failures to
// write frames surface as broken pipes on the next flush.
func (s *server) handle(typ byte, payload []byte) error {
	r := codec.NewReader(payload)
	switch typ {
	case frameBuild:
		impl := r.String()
		cfg := decodeConfig(r)
		if err := r.Close(); err != nil {
			return err
		}
		inner, err := node.BuildRouter(impl, cfg)
		if err != nil {
			return err
		}
		s.install(inner)
		return s.sendDone(nil)

	case frameRestore:
		blob := r.Blob()
		if err := r.Close(); err != nil {
			return err
		}
		forms, err := s.decodeForms(blob)
		if err != nil {
			return err
		}
		be, err := node.BackendFor(s.implOf(blob))
		if err != nil {
			return err
		}
		inner, err := be.Restore(forms.im, forms.st)
		if err != nil {
			return err
		}
		s.install(inner)
		return s.sendDone(nil)

	case frameReset:
		blob := r.Blob()
		if err := r.Close(); err != nil {
			return err
		}
		if s.inner == nil {
			return errors.New("procdriver: reset before build/restore")
		}
		forms, err := s.decodeForms(blob)
		if err != nil {
			return err
		}
		if err := s.inner.ResetTo(forms.im, forms.st); err != nil {
			return err
		}
		// The inner ResetTo dropped the hook and any armed machine.
		s.machine, s.shipped = nil, 0
		return s.sendDone(nil)

	case frameStart:
		s.now = time.Duration(r.Uvarint())
		if err := r.Close(); err != nil {
			return err
		}
		if s.inner == nil {
			return errors.New("procdriver: start before build/restore")
		}
		s.inner.Start(s.env())
		return s.sendDone(nil)

	case frameDeliver:
		s.now = time.Duration(r.Uvarint())
		from := r.String()
		msg := r.Blob()
		if err := r.Close(); err != nil {
			return err
		}
		if s.inner == nil {
			return errors.New("procdriver: deliver before build/restore")
		}
		s.inner.HandleMessage(s.env(), netem.NodeID(from), msg)
		return s.sendDone(nil)

	case frameTimer:
		s.now = time.Duration(r.Uvarint())
		name := r.String()
		if err := r.Close(); err != nil {
			return err
		}
		if s.inner == nil {
			return errors.New("procdriver: timer before build/restore")
		}
		s.inner.HandleTimer(s.env(), name)
		return s.sendDone(nil)

	case frameArm:
		armed := r.Bool()
		fromPeer := r.String()
		maxBranches := int(r.Uvarint())
		var in *concolic.Input
		if armed {
			in = &concolic.Input{Regions: make(map[string][]byte)}
			n := r.Count()
			for i := 0; i < n && r.Err() == nil; i++ {
				name := r.String()
				in.Regions[name] = r.Blob()
			}
		}
		if err := r.Close(); err != nil {
			return err
		}
		if s.inner == nil {
			return errors.New("procdriver: arm before build/restore")
		}
		if !armed {
			s.machine, s.shipped = nil, 0
			s.inner.ExploreNextUpdate(nil, fromPeer)
			return s.sendDone(nil)
		}
		s.machine = concolic.NewMachine(in, concolic.MachineOptions{MaxBranches: maxBranches})
		s.shipped = 0
		s.inner.ExploreNextUpdate(s.machine, fromPeer)
		return s.sendDone(nil)

	case frameHookSet:
		install := r.Bool()
		if err := r.Close(); err != nil {
			return err
		}
		if s.inner == nil {
			return errors.New("procdriver: hook-set before build/restore")
		}
		if install {
			s.inner.SetUpdateHook(s.forwardHook)
		} else {
			s.inner.SetUpdateHook(nil)
		}
		return s.sendDone(nil)

	case frameCheckpoint:
		if err := r.Close(); err != nil {
			return err
		}
		if s.inner == nil {
			return errors.New("procdriver: checkpoint before build/restore")
		}
		blob, err := checkpoint.EncodeNode(s.inner.TakeCheckpoint())
		if err != nil {
			return err
		}
		return s.sendDone(blob)

	default:
		return fmt.Errorf("procdriver: child got unknown frame type %#02x", typ)
	}
}

// install adopts a freshly built or restored inner router and derives the
// static environment view (neighbor set) from its configuration.
func (s *server) install(inner node.Router) {
	s.inner = inner
	s.machine, s.shipped = nil, 0
	cfg := inner.Config()
	s.neighbors = s.neighbors[:0]
	for _, n := range cfg.Neighbors {
		s.neighbors = append(s.neighbors, netem.NodeID(n.Name))
	}
	sort.Slice(s.neighbors, func(i, j int) bool { return s.neighbors[i] < s.neighbors[j] })
}

// decodeForms decodes a canonical node blob into restore-ready image and
// state, cached by content hash so pooled resets pay decode once.
func (s *server) decodeForms(blob []byte) (resetForms, error) {
	key := sha256.Sum256(blob)
	if forms, ok := s.resetCache[key]; ok {
		return forms, nil
	}
	cp, err := checkpoint.DecodeNode("", blob)
	if err != nil {
		return resetForms{}, err
	}
	be, err := node.BackendFor(cp.Implementation())
	if err != nil {
		return resetForms{}, err
	}
	im, err := be.ImageOf(cp)
	if err != nil {
		return resetForms{}, err
	}
	st, err := be.DecodeState(cp)
	if err != nil {
		return resetForms{}, err
	}
	forms := resetForms{im: im, st: st}
	s.resetCache[key] = forms
	return forms, nil
}

// implOf extracts the implementation tag from a canonical node blob (the
// blob was just validated by decodeForms, so errors cannot reach here).
func (s *server) implOf(blob []byte) string {
	r := codec.NewReader(blob)
	r.Header(codec.KindNode)
	return r.String()
}

// sendDone answers the current request, attaching the branch-trace increment
// when a machine is armed and an optional result blob.
func (s *server) sendDone(blob []byte) error {
	w := codec.NewWriter()
	var t *concolic.Trace
	if s.machine != nil {
		t = s.machine.ExportTrace(s.shipped)
		s.shipped = len(s.machine.Path())
	}
	encodeTrace(w, t)
	w.Blob(blob)
	return writeFrame(s.w, frameDone, w.Bytes())
}

func (s *server) sendErr(err error) {
	w := codec.NewWriter()
	w.String(err.Error())
	_ = writeFrame(s.w, frameErr, w.Bytes())
}

// forwardHook is the UpdateHook installed into the inner router: it ships
// the parsed update (concrete body plus symbolic view plus the branch trace
// so far) to the parent, which runs the real hook — fault closures cannot
// cross a process boundary — and applies the parent's mutations and crash
// verdict as if the hook had run here.
func (s *server) forwardHook(r node.HookContext, from string, u *bgp.Update) error {
	w := codec.NewWriter()
	w.String(from)
	w.Blob(u.EncodeBody())
	encodeSymUpdate(w, u.Sym)
	w.Bool(r.ActiveMachine() != nil)
	var t *concolic.Trace
	if s.machine != nil {
		t = s.machine.ExportTrace(s.shipped)
		s.shipped = len(s.machine.Path())
	}
	encodeTrace(w, t)
	if err := writeFrame(s.w, frameHook, w.Bytes()); err != nil {
		os.Exit(1) // parent is gone mid-request; no way to recover
	}
	if err := s.w.Flush(); err != nil {
		os.Exit(1)
	}
	typ, payload, err := readFrame(s.r)
	if err != nil || typ != frameHookReply {
		os.Exit(1)
	}
	rr := codec.NewReader(payload)
	body := rr.Blob()
	crashed := rr.Bool()
	msg := rr.String()
	if err := rr.Close(); err != nil {
		return fmt.Errorf("procdriver: malformed hook reply: %w", err)
	}
	mutated, err := bgp.DecodeUpdate(body)
	if err != nil {
		return fmt.Errorf("procdriver: hook-mutated update does not parse: %w", err)
	}
	// Hooks mutate concrete fields only; the symbolic view stays the one this
	// process parsed, exactly as it would in-process.
	u.Withdrawn, u.Attrs, u.NLRI = mutated.Withdrawn, mutated.Attrs, mutated.NLRI
	if crashed {
		return errors.New(msg)
	}
	return nil
}

// env returns the emulator view the inner router runs under: virtual time
// and identity shipped by the parent, sends and timer operations forwarded
// back as effect frames in execution order.
func (s *server) env() netem.Env {
	return &childEnv{s: s}
}

type childEnv struct {
	s *server
}

func (e *childEnv) Now() time.Duration { return e.s.now }
func (e *childEnv) Self() netem.NodeID { return e.s.inner.ID() }
func (e *childEnv) Neighbors() []netem.NodeID {
	return append([]netem.NodeID(nil), e.s.neighbors...)
}

func (e *childEnv) Send(to netem.NodeID, payload []byte) {
	w := codec.NewWriter()
	w.String(string(to))
	w.Blob(payload)
	e.s.effect(frameEffectSend, w.Bytes())
}

func (e *childEnv) SetTimer(name string, d time.Duration) {
	w := codec.NewWriter()
	w.String(name)
	w.Uvarint(uint64(d))
	e.s.effect(frameEffectSetTimer, w.Bytes())
}

func (e *childEnv) CancelTimer(name string) {
	w := codec.NewWriter()
	w.String(name)
	e.s.effect(frameEffectCancelTimer, w.Bytes())
}

// Rand must never be called: the backends are deterministic and draw no
// randomness, and a subprocess random source would break replay. Panicking
// turns any future violation into a handler crash the campaign reports.
func (e *childEnv) Rand() *rand.Rand {
	panic("procdriver: backend drew from env.Rand in a subprocess")
}

func (e *childEnv) Logf(format string, args ...interface{}) {
	w := codec.NewWriter()
	w.String(fmt.Sprintf(format, args...))
	e.s.effect(frameEffectLog, w.Bytes())
}

func (s *server) effect(typ byte, payload []byte) {
	if err := writeFrame(s.w, typ, payload); err != nil {
		os.Exit(1)
	}
}
