package procdriver

import (
	"encoding/gob"
	"fmt"

	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/checkpoint/codec"
	"github.com/dice-project/dice/internal/node"
)

// Checkpoint is a subprocess-backed node's checkpoint: the wrapped inner
// backend's checkpoint, tagged so restore spawns a fresh subprocess around
// it. Wrapping (rather than re-encoding) keeps the state bytes identical to
// the in-process backend's — which is what makes proc-vs-in-process
// detection fingerprints comparable at the byte level.
type Checkpoint struct {
	Inner node.Checkpoint
}

// NodeName implements node.Checkpoint.
func (c *Checkpoint) NodeName() string { return c.Inner.NodeName() }

// Implementation implements node.Checkpoint.
func (c *Checkpoint) Implementation() string { return prefix + c.Inner.Implementation() }

// Image is the immutable half of a restored proc node: the inner backend's
// decoded image (shared with the mirror and every clone) plus the canonical
// bytes the child restores from.
type Image struct {
	name    string
	impl    string
	data    []byte
	innerIm node.Image
}

// Name implements node.Image.
func (im *Image) Name() string { return im.name }

// Implementation implements node.Image.
func (im *Image) Implementation() string { return im.impl }

// State is the mutable half: the inner backend's decoded state plus the
// canonical bytes shipped to the child on restore and reset.
type State struct {
	impl    string
	data    []byte
	innerSt node.State
}

func init() {
	gob.Register(&Checkpoint{})
}

// makeBackend builds the "proc:<impl>" registry entry wrapping the named
// inner backend. The decision policy is the inner one's: process isolation
// is a driver choice, not a protocol behavior, so the divergence oracle
// deduplicates proc:bird against bird.
func makeBackend(innerImpl string) node.Backend {
	inner, err := node.BackendFor(innerImpl)
	if err != nil {
		panic(fmt.Sprintf("procdriver: wrapping unregistered backend %q", innerImpl))
	}
	name := prefix + innerImpl

	unwrap := func(cp node.Checkpoint) (*Checkpoint, error) {
		pc, ok := cp.(*Checkpoint)
		if !ok {
			return nil, fmt.Errorf("procdriver: checkpoint %T is not a procdriver checkpoint", cp)
		}
		if got := pc.Inner.Implementation(); got != innerImpl {
			return nil, fmt.Errorf("procdriver: checkpoint wraps %q, backend is %s", got, name)
		}
		return pc, nil
	}

	return node.Backend{
		Name:     name,
		Decision: inner.Decision,
		Build: func(cfg *node.Config) (node.Router, error) {
			return buildProxy(innerImpl, cfg)
		},
		ImageOf: func(cp node.Checkpoint) (node.Image, error) {
			pc, err := unwrap(cp)
			if err != nil {
				return nil, err
			}
			data, err := checkpoint.EncodeNode(pc.Inner)
			if err != nil {
				return nil, err
			}
			im, err := inner.ImageOf(pc.Inner)
			if err != nil {
				return nil, err
			}
			return &Image{name: pc.Inner.NodeName(), impl: name, data: data, innerIm: im}, nil
		},
		DecodeState: func(cp node.Checkpoint) (node.State, error) {
			pc, err := unwrap(cp)
			if err != nil {
				return nil, err
			}
			data, err := checkpoint.EncodeNode(pc.Inner)
			if err != nil {
				return nil, err
			}
			st, err := inner.DecodeState(pc.Inner)
			if err != nil {
				return nil, err
			}
			return &State{impl: name, data: data, innerSt: st}, nil
		},
		Restore: func(im node.Image, st node.State) (node.Router, error) {
			pim, ok := im.(*Image)
			if !ok {
				return nil, fmt.Errorf("procdriver: image %T is not a procdriver image", im)
			}
			pst, ok := st.(*State)
			if !ok {
				return nil, fmt.Errorf("procdriver: state %T is not a procdriver state", st)
			}
			if pim.impl != name || pst.impl != name {
				return nil, fmt.Errorf("procdriver: restore with %s/%s forms into %s", pim.impl, pst.impl, name)
			}
			return restoreProxy(innerImpl, pim, pst)
		},
		EncodeCanonical: func(cp node.Checkpoint) ([]byte, error) {
			pc, err := unwrap(cp)
			if err != nil {
				return nil, err
			}
			blob, err := checkpoint.EncodeNode(pc.Inner)
			if err != nil {
				return nil, err
			}
			w := codec.NewWriter()
			w.Blob(blob)
			return w.Bytes(), nil
		},
		DecodeCanonical: func(payload []byte) (node.Checkpoint, error) {
			r := codec.NewReader(payload)
			blob := r.Blob()
			if err := r.Close(); err != nil {
				return nil, fmt.Errorf("procdriver: decode canonical: %w", err)
			}
			innerCp, err := checkpoint.DecodeNode(innerImpl, blob)
			if err != nil {
				return nil, fmt.Errorf("procdriver: decode wrapped checkpoint: %w", err)
			}
			return &Checkpoint{Inner: innerCp}, nil
		},
	}
}
