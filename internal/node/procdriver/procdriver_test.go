package procdriver_test

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/node/procdriver"
	"github.com/dice-project/dice/internal/topology"
)

// TestMain hosts both sides of the driver: re-executions of this binary enter
// child mode in MaybeRunChild and never reach the suite.
func TestMain(m *testing.M) {
	procdriver.MaybeRunChild()
	os.Exit(m.Run())
}

// requireSpawn skips the test where re-executing the test binary is forbidden
// (sandboxed builders), and tears the child fleet down afterwards.
func requireSpawn(t *testing.T) {
	t.Helper()
	if err := procdriver.SpawnCheck(); err != nil {
		t.Skipf("subprocess spawning unavailable: %v", err)
	}
	t.Cleanup(func() {
		procdriver.KillAll()
		if n := procdriver.LiveChildren(); n != 0 {
			t.Errorf("%d children still live after KillAll", n)
		}
	})
}

// innerCanonical reduces a router to its canonical checkpoint bytes, unwrapping
// the proc layer so subprocess-backed and in-process nodes are byte-comparable.
func innerCanonical(t *testing.T, r node.Router) []byte {
	t.Helper()
	cp := r.TakeCheckpoint()
	if pc, ok := cp.(*procdriver.Checkpoint); ok {
		cp = pc.Inner
	}
	data, err := checkpoint.EncodeNode(cp)
	if err != nil {
		t.Fatalf("EncodeNode(%s): %v", r.ID(), err)
	}
	return data
}

// TestProcConvergeMatchesInProcess is the core isolation-equivalence check:
// for every wrapped speaker, a cluster of subprocess-backed nodes must
// converge to byte-identical canonical state as the same cluster in-process.
func TestProcConvergeMatchesInProcess(t *testing.T) {
	requireSpawn(t)
	for _, impl := range procdriver.Wrapped() {
		t.Run(impl, func(t *testing.T) {
			opts := cluster.Options{Seed: 7}
			inproc := cluster.MustBuild(topology.Line(3).SetImpl(impl), opts)
			proc := cluster.MustBuild(topology.Line(3).SetImpl("proc:"+impl), opts)
			if got := procdriver.LiveChildren(); got < 3 {
				t.Fatalf("LiveChildren = %d after building 3 proc nodes", got)
			}
			inproc.Converge()
			proc.Converge()
			for _, name := range proc.RouterNames() {
				if got := proc.Router(name).Implementation(); got != "proc:"+impl {
					t.Errorf("%s runs %q, want proc:%s", name, got, impl)
				}
				got := innerCanonical(t, proc.Router(name))
				want := innerCanonical(t, inproc.Router(name))
				if !bytes.Equal(got, want) {
					t.Errorf("%s: subprocess state diverges from in-process (%d vs %d bytes)", name, len(got), len(want))
				}
			}
		})
	}
}

// TestProcMixedInterop deploys all three speakers with one behind the process
// boundary: the mix must interoperate to full reachability, and the proc tag
// must surface in the deployment's implementation list.
func TestProcMixedInterop(t *testing.T) {
	requireSpawn(t)
	topo := topology.Line(3).SetImpl("proc:frr", "R2").SetImpl("obgpd", "R3")
	c := cluster.MustBuild(topo, cluster.Options{Seed: 2})
	c.Converge()
	for _, name := range c.RouterNames() {
		for _, tn := range topo.Nodes {
			if c.Router(name).LocRIB().Best(tn.Prefixes[0]) == nil {
				t.Errorf("%s missing route to %s across the process boundary", name, tn.Prefixes[0])
			}
		}
	}
	if impls := c.Implementations(); !reflect.DeepEqual(impls, []string{"bird", "obgpd", "proc:frr"}) {
		t.Errorf("Implementations() = %v", impls)
	}
	if err := c.Unhealthy(); err != nil {
		t.Errorf("healthy deployment reports: %v", err)
	}
}

// TestProcSnapshotEncodeRestore drives a subprocess-backed snapshot through
// the full canonical codec: encode to bytes, decode, restore a shadow cluster,
// and require the restored nodes to carry the snapshot's exact state.
func TestProcSnapshotEncodeRestore(t *testing.T) {
	requireSpawn(t)
	topo := topology.Line(2).SetImpl("proc:bird")
	opts := cluster.Options{Seed: 4}
	live := cluster.MustBuild(topo, opts)
	live.Converge()
	snap := live.Snapshot()

	data, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatalf("Encode over proc checkpoints: %v", err)
	}
	decoded, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for name, cp := range decoded.Nodes {
		if got := cp.Implementation(); got != "proc:bird" {
			t.Errorf("decoded %s tagged %q", name, got)
		}
	}

	shadow, err := cluster.FromSnapshot(topo, decoded, opts)
	if err != nil {
		t.Fatalf("FromSnapshot over decoded proc snapshot: %v", err)
	}
	for _, name := range shadow.RouterNames() {
		got := innerCanonical(t, shadow.Router(name))
		want, err := checkpoint.EncodeNode(snap.Nodes[name].(*procdriver.Checkpoint).Inner)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: restored subprocess state differs from snapshot", name)
		}
	}
}

// TestProcPooledResetEquivalentToColdRebuild extends the golden
// clone-lifecycle property across the process boundary: a pooled clone of
// subprocess-backed nodes, reset after use, must be byte-identical to a cold
// rebuild and evolve identically under further execution.
func TestProcPooledResetEquivalentToColdRebuild(t *testing.T) {
	requireSpawn(t)
	topo := topology.Line(3).SetImpl("proc:bird", "R2")
	opts := cluster.Options{Seed: 3}
	live := cluster.MustBuild(topo, opts)
	live.Net.Start()
	live.Run(60 * time.Millisecond) // mid-convergence: channel state in the cut
	snap := live.Snapshot()

	store, err := checkpoint.NewStore(snap)
	if err != nil {
		t.Fatalf("NewStore over proc snapshot: %v", err)
	}
	pool := cluster.NewClonePool(topo, store, opts)

	peerAS := topo.Node("R1").AS
	for i := 0; i < 3; i++ {
		clone, err := pool.Lease()
		if err != nil {
			t.Fatalf("Lease %d: %v", i, err)
		}
		clone.InjectUpdate("R1", "R2", exploredInput(i, peerAS))
		clone.Net.RunQuiescent(0)
		pool.Release(clone)
	}

	pooled, err := pool.Lease()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cluster.FromSnapshot(topo, snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := clusterJSON(t, pooled), clusterJSON(t, cold); got != want {
		t.Fatalf("pooled-reset proc clone differs from cold rebuild")
	}
	in := exploredInput(99, peerAS)
	pooled.InjectUpdate("R1", "R2", in)
	cold.InjectUpdate("R1", "R2", in)
	pooled.Net.RunQuiescent(0)
	cold.Net.RunQuiescent(0)
	if got, want := clusterJSON(t, pooled), clusterJSON(t, cold); got != want {
		t.Fatalf("pooled-reset proc clone diverged from cold rebuild after execution")
	}
	if s := pool.Stats(); s.Leases != s.Releases+1 || s.Discards != 0 {
		t.Errorf("pool stats off: %+v", s)
	}
}

// clusterJSON is the cluster-wide canonical form used by the pool equivalence
// tests: JSON sorts the snapshot's maps, and node checkpoints expose only
// their canonical exported state.
func clusterJSON(t *testing.T, c *cluster.Cluster) string {
	t.Helper()
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return string(data)
}

func exploredInput(i int, peerAS bgp.ASN) *bgp.Update {
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{peerAS, bgp.ASN(64900 + i)}, NextHop: uint32(100 + i)}
	return &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{{Addr: uint32(88)<<24 | uint32(i+1)<<16, Len: 16}}}
}

// TestProcHookFaultEquivalence: injected handler bugs run parent-side (fault
// closures cannot cross the boundary) but must behave exactly as in-process —
// same crash verdict, same mutation effects, same resulting state.
func TestProcHookFaultEquivalence(t *testing.T) {
	requireSpawn(t)
	const trigger = bgp.Community(0xFFFF0029)

	build := func(impl string) *cluster.Cluster {
		c := cluster.MustBuild(topology.Line(2).SetImpl(impl), cluster.Options{Seed: 5})
		c.Converge()
		faults.InstallCodeFaults(c.Routers,
			faults.CommunityCrash("R2", trigger),
			faults.DroppedWithdrawals("R1"))
		return c
	}
	inproc := build("bird")
	proc := build("proc:bird")

	// The crash path: a community-carrying UPDATE kills R2's handler.
	crash := &bgp.Update{
		Attrs: &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{topology.Line(2).Node("R1").AS}, NextHop: 1, Communities: []bgp.Community{trigger}},
		NLRI:  []bgp.Prefix{{Addr: 77 << 24, Len: 16}},
	}
	// The mutation path: R1's buggy handler silently drops the withdrawal.
	mixed := &bgp.Update{
		Attrs:     &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{topology.Line(2).Node("R2").AS}, NextHop: 2},
		NLRI:      []bgp.Prefix{{Addr: 66 << 24, Len: 16}},
		Withdrawn: []bgp.Prefix{{Addr: 10<<24 | 2<<16, Len: 16}},
	}
	for _, c := range []*cluster.Cluster{inproc, proc} {
		c.InjectUpdate("R1", "R2", crash)
		c.InjectUpdate("R2", "R1", mixed)
		c.Net.RunQuiescent(0)
	}

	gotPanic, gotMsg := proc.Router("R2").Panicked()
	wantPanic, wantMsg := inproc.Router("R2").Panicked()
	if gotPanic != wantPanic || gotMsg != wantMsg {
		t.Errorf("crash verdict differs: proc (%v %q), in-process (%v %q)", gotPanic, gotMsg, wantPanic, wantMsg)
	}
	if !gotPanic {
		t.Errorf("community crash did not fire across the process boundary")
	}
	for _, name := range []string{"R1", "R2"} {
		if got, want := innerCanonical(t, proc.Router(name)), innerCanonical(t, inproc.Router(name)); !bytes.Equal(got, want) {
			t.Errorf("%s: state after hook faults diverges from in-process", name)
		}
	}
	if got, want := proc.Router("R2").Stats().HandlerCrashes, inproc.Router("R2").Stats().HandlerCrashes; got != want || got == 0 {
		t.Errorf("HandlerCrashes: proc %d, in-process %d", got, want)
	}
}

// TestProcConcolicParity: an armed machine driven through a subprocess-backed
// explorer must record the same branch path, assignment and truncation as the
// in-process run — branches recorded in the child (parse, pre/post-hook) and
// in the parent (the fault hook) merge into one coherent trace.
func TestProcConcolicParity(t *testing.T) {
	requireSpawn(t)
	const trigger = bgp.Community(0xFFFF0031)
	body := (&bgp.Update{
		Attrs: &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 9, Communities: []bgp.Community{trigger}},
		NLRI:  []bgp.Prefix{{Addr: 55 << 24, Len: 16}},
	}).EncodeBody()

	run := func(impl string) (*concolic.Machine, []byte) {
		c := cluster.MustBuild(topology.Line(2).SetImpl(impl), cluster.Options{Seed: 6})
		c.Converge()
		faults.InstallCodeFaults(c.Routers, faults.CommunityCrash("R2", trigger))
		m := concolic.NewMachine(concolic.NewInput("update", body), concolic.MachineOptions{})
		c.Router("R2").ExploreNextUpdate(m, "R1")
		c.InjectRaw("R1", "R2", bgp.FrameUpdate(body))
		c.Net.RunQuiescent(0)
		return m, innerCanonical(t, c.Router("R2"))
	}
	procM, procState := run("proc:bird")
	inM, inState := run("bird")

	procPath, inPath := procM.Path(), inM.Path()
	if len(procPath) != len(inPath) {
		t.Fatalf("path lengths differ: proc %d, in-process %d", len(procPath), len(inPath))
	}
	for i := range inPath {
		if procPath[i].Site != inPath[i].Site || procPath[i].Taken != inPath[i].Taken {
			t.Errorf("branch %d differs: proc %s/%v, in-process %s/%v",
				i, procPath[i].Site, procPath[i].Taken, inPath[i].Site, inPath[i].Taken)
		}
	}
	if procM.PathSignature() != inM.PathSignature() {
		t.Errorf("path signatures differ: the recorded conditions are not structurally identical")
	}
	if !reflect.DeepEqual(procM.Assignment(), inM.Assignment()) {
		t.Errorf("assignments differ:\n proc %v\n in-process %v", procM.Assignment(), inM.Assignment())
	}
	if procM.Truncated() != inM.Truncated() {
		t.Errorf("truncation differs")
	}
	if !bytes.Equal(procState, inState) {
		t.Errorf("explorer state after armed execution diverges from in-process")
	}
	if len(inPath) == 0 {
		t.Errorf("no branches recorded; the parity check is vacuous")
	}
}

// TestProcCrashSurfaces kills a child out from under its proxy: the next
// delivery must discover the death promptly, the proxy and cluster must go
// unhealthy, and state reads must keep serving the last mirrored state
// instead of hanging.
func TestProcCrashSurfaces(t *testing.T) {
	requireSpawn(t)
	topo := topology.Line(2).SetImpl("proc:bird")
	c := cluster.MustBuild(topo, cluster.Options{Seed: 8})
	c.Converge()
	victim := c.Router("R2")
	preCrash := innerCanonical(t, victim)

	if !procdriver.Kill(victim) {
		t.Fatal("Kill did not find a live child behind R2")
	}
	// The proxy has not interacted with the child since; it cannot know yet.
	start := time.Now()
	c.InjectUpdate("R1", "R2", exploredInput(1, topo.Node("R1").AS))
	c.Net.RunQuiescent(0)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("crash detection took %s; the EOF path should not wait out the RPC timeout", elapsed)
	}

	if victimErr := victim.(interface{ Unhealthy() error }).Unhealthy(); victimErr == nil {
		t.Fatal("delivery to a dead subprocess left the proxy healthy")
	}
	if err := c.Unhealthy(); err == nil {
		t.Fatal("cluster with a dead subprocess reports healthy")
	}
	// Reads serve the stale mirror — no hang, no fabricated progress.
	if got := innerCanonical(t, victim); !bytes.Equal(got, preCrash) {
		t.Errorf("post-crash reads do not serve the last mirrored state")
	}
	if victim.LocRIB() == nil {
		t.Errorf("post-crash LocRIB read returned nothing")
	}
}

// TestPoolDiscardsDeadProcClone: a leased clone whose subprocess died is
// discarded on release — counted, never re-pooled — so Leases == Releases
// holds and no later lease hands out a dead cluster.
func TestPoolDiscardsDeadProcClone(t *testing.T) {
	requireSpawn(t)
	topo := topology.Line(2).SetImpl("proc:bird")
	opts := cluster.Options{Seed: 9}
	live := cluster.MustBuild(topo, opts)
	live.Converge()
	store, err := checkpoint.NewStore(live.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	pool := cluster.NewClonePool(topo, store, opts)

	clone, err := pool.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if !procdriver.Kill(clone.Router("R2")) {
		t.Fatal("no child behind the clone's R2")
	}
	clone.InjectUpdate("R1", "R2", exploredInput(2, topo.Node("R1").AS))
	clone.Net.RunQuiescent(0)
	if clone.Unhealthy() == nil {
		t.Fatal("clone with killed child reports healthy")
	}
	pool.Release(clone)

	s := pool.Stats()
	if s.Leases != 1 || s.Releases != 1 || s.Discards != 1 {
		t.Errorf("pool stats after dead release: %+v", s)
	}
	if pool.Size() != 0 {
		t.Errorf("dead clone was re-pooled")
	}
	if pool.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after release", pool.Outstanding())
	}

	// The pool recovers: the next lease cold-builds a healthy clone.
	next, err := pool.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if next.Unhealthy() != nil {
		t.Errorf("fresh lease after discard is unhealthy: %v", next.Unhealthy())
	}
	pool.Release(next)
}

// TestProcResetClearsHookAndMachine: ResetTo is the clone-recycling rewind;
// it must drop the armed machine and installed hook on both sides of the
// boundary, exactly as the in-process routers do.
func TestProcResetClearsHookAndMachine(t *testing.T) {
	requireSpawn(t)
	topo := topology.Line(2).SetImpl("proc:bird")
	opts := cluster.Options{Seed: 10}
	live := cluster.MustBuild(topo, opts)
	live.Converge()
	store, err := checkpoint.NewStore(live.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	const trigger = bgp.Community(0xFFFF0099)
	faults.InstallCodeFaults(live.Routers, faults.CommunityCrash("R2", trigger))
	m := concolic.NewMachine(concolic.NewInput("update", []byte{1}), concolic.MachineOptions{})
	live.Router("R2").ExploreNextUpdate(m, "R1")

	if err := live.ResetToStore(store); err != nil {
		t.Fatalf("ResetToStore: %v", err)
	}
	// A triggering update after the reset must not crash (hook gone) and must
	// not record branches (machine disarmed).
	crash := &bgp.Update{
		Attrs: &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{topo.Node("R1").AS}, NextHop: 1, Communities: []bgp.Community{trigger}},
		NLRI:  []bgp.Prefix{{Addr: 44 << 24, Len: 16}},
	}
	live.InjectUpdate("R1", "R2", crash)
	live.Net.RunQuiescent(0)
	if panicked, msg := live.Router("R2").Panicked(); panicked {
		t.Errorf("hook survived ResetTo: %s", msg)
	}
	if len(m.Path()) != 0 {
		t.Errorf("machine survived ResetTo: %d branches recorded", len(m.Path()))
	}
}
