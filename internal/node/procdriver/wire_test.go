package procdriver

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/checkpoint/codec"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/concolic/expr"
	"github.com/dice-project/dice/internal/node"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameDeliver, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, frameDone, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil || typ != frameDeliver || string(payload) != "payload" {
		t.Fatalf("readFrame = %#02x %q %v", typ, payload, err)
	}
	typ, payload, err = readFrame(&buf)
	if err != nil || typ != frameDone || len(payload) != 0 {
		t.Fatalf("empty-payload frame = %#02x %q %v", typ, payload, err)
	}
}

func TestReadFrameRejectsCorruptLength(t *testing.T) {
	for _, n := range []uint32{0, maxFrameLen + 1} {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], n)
		if _, _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
			t.Errorf("length %d accepted", n)
		}
	}
	// A truncated body is an error, not a short read.
	var buf bytes.Buffer
	_ = writeFrame(&buf, frameDone, []byte("full payload"))
	if _, _, err := readFrame(bytes.NewReader(buf.Bytes()[:8])); err == nil {
		t.Errorf("truncated frame accepted")
	}
}

func TestExprCodecRoundTrip(t *testing.T) {
	exprs := []*expr.Expr{
		nil,
		expr.Const(42, 16),
		expr.Var("update[3]", 8),
		expr.Not(expr.Eq(expr.Var("x", 8), expr.Const(7, 8))),
		expr.Ite(expr.Eq(expr.Var("c", 8), expr.Const(1, 8)), expr.ZExt(expr.Var("y", 8), 32), expr.Const(0, 32)),
	}
	for _, e := range exprs {
		w := codec.NewWriter()
		encodeExpr(w, e)
		r := codec.NewReader(w.Bytes())
		got := decodeExpr(r, 0)
		if err := r.Close(); err != nil {
			t.Fatalf("decode %v: %v", e, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Errorf("round-trip changed expr:\n got %+v\nwant %+v", got, e)
		}
	}
}

func TestExprDecodeRejectsBadKind(t *testing.T) {
	w := codec.NewWriter()
	w.Byte(byte(expr.KindIte) + 1)
	r := codec.NewReader(w.Bytes())
	decodeExpr(r, 0)
	if r.Err() == nil {
		t.Fatal("out-of-range expression kind accepted")
	}
}

func TestExprDecodeBoundsDepth(t *testing.T) {
	// Built from raw nodes: the constructors fold double negation, which
	// would keep the tree shallow.
	deep := expr.Var("v", 8)
	for i := 0; i < maxExprDepth+10; i++ {
		deep = &expr.Expr{Kind: expr.KindNot, Args: []*expr.Expr{deep}}
	}
	w := codec.NewWriter()
	encodeExpr(w, deep)
	r := codec.NewReader(w.Bytes())
	decodeExpr(r, 0)
	if r.Err() == nil {
		t.Fatal("expression nested past the depth bound accepted")
	}
}

func TestSymUpdateCodecRoundTrip(t *testing.T) {
	med := concolic.Const(5, 32)
	med.Sym = expr.Var("update[10]", 32)
	updates := []*bgp.SymUpdate{
		nil,
		{},
		{
			Origin:       concolic.Const(1, 8),
			HasOrigin:    true,
			MED:          med,
			HasMED:       true,
			ASPathLen:    concolic.Const(3, 16),
			NLRI:         []bgp.SymPrefix{{Len: concolic.Const(16, 8), Addr: concolic.Const(0x0A010000, 32)}},
			Withdrawn:    []bgp.SymPrefix{{Len: concolic.Const(24, 8), Addr: concolic.Const(0x0A020000, 32)}},
			Communities:  []concolic.Value{concolic.Const(0xFFFF0001, 32)},
			HasLocalPref: false,
		},
	}
	for _, s := range updates {
		w := codec.NewWriter()
		encodeSymUpdate(w, s)
		r := codec.NewReader(w.Bytes())
		got := decodeSymUpdate(r)
		if err := r.Close(); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("round-trip changed SymUpdate:\n got %+v\nwant %+v", got, s)
		}
	}
}

func TestTraceCodecRoundTrip(t *testing.T) {
	traces := []*concolic.Trace{
		nil,
		{
			Branches: []concolic.Branch{
				{Site: "parse/origin", Taken: true, Cond: expr.Eq(expr.Var("update[0]", 8), expr.Const(2, 8))},
				{Site: "bug/med-zero", Taken: false, Cond: expr.Not(expr.Eq(expr.Var("b", 8), expr.Const(0, 8)))},
			},
			Assignment: map[string]uint64{"update[0]": 2, "update[1]": 0},
			Vars: map[string]concolic.VarRef{
				"update[0]": {Region: "update", Index: 0},
				"update[1]": {Region: "update", Index: 1},
			},
			Regions:   map[string][]byte{"update": {2, 0}, "choice/pref": {1}},
			Truncated: true,
		},
	}
	for _, tr := range traces {
		w := codec.NewWriter()
		encodeTrace(w, tr)
		r := codec.NewReader(w.Bytes())
		got := decodeTrace(r)
		if err := r.Close(); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if tr == nil {
			if got != nil {
				t.Errorf("nil trace decoded to %+v", got)
			}
			continue
		}
		if !reflect.DeepEqual(got, tr) {
			t.Errorf("round-trip changed trace:\n got %+v\nwant %+v", got, tr)
		}
		// Map iteration is sorted on encode: identical traces encode to
		// identical bytes no matter the map's internal order.
		w2 := codec.NewWriter()
		encodeTrace(w2, got)
		if !bytes.Equal(w.Bytes(), w2.Bytes()) {
			t.Errorf("trace encoding not deterministic")
		}
	}
}

func TestConfigCodecRoundTrip(t *testing.T) {
	imp, err := policy.ParsePolicy("policy IMP { if prefix = 10.1.0.0/16 { reject } default accept }")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := policy.ParsePolicy("policy EXP { default accept }")
	if err != nil {
		t.Fatal(err)
	}
	cfg := &node.Config{
		Name:     "R7",
		AS:       65007,
		RouterID: 7,
		Networks: []bgp.Prefix{{Addr: 10 << 24, Len: 16}, {Addr: 192<<24 | 168<<16, Len: 24}},
		Neighbors: []node.NeighborConfig{
			{Name: "R1", AS: 65001, Import: "IMP", Export: "EXP"},
			{Name: "R2", AS: 65002},
		},
		Policies:          map[string]*policy.Policy{"IMP": imp, "EXP": exp},
		HoldTime:          90 * time.Second,
		KeepaliveInterval: 30 * time.Second,
		ConnectRetry:      5 * time.Second,
	}

	w := codec.NewWriter()
	encodeConfig(w, cfg)
	r := codec.NewReader(w.Bytes())
	got := decodeConfig(r)
	if err := r.Close(); err != nil {
		t.Fatalf("decode: %v", err)
	}

	if got.Name != cfg.Name || got.AS != cfg.AS || got.RouterID != cfg.RouterID {
		t.Errorf("identity fields changed: %+v", got)
	}
	if !reflect.DeepEqual(got.Networks, cfg.Networks) {
		t.Errorf("networks changed: %v", got.Networks)
	}
	if !reflect.DeepEqual(got.Neighbors, cfg.Neighbors) {
		t.Errorf("neighbors changed: %v", got.Neighbors)
	}
	if got.HoldTime != cfg.HoldTime || got.KeepaliveInterval != cfg.KeepaliveInterval || got.ConnectRetry != cfg.ConnectRetry {
		t.Errorf("timers changed: %+v", got)
	}
	// Policies cross as text; String∘ParsePolicy is the round-trip contract.
	if len(got.Policies) != len(cfg.Policies) {
		t.Fatalf("policy count = %d, want %d", len(got.Policies), len(cfg.Policies))
	}
	for name, p := range cfg.Policies {
		if got.Policies[name] == nil || got.Policies[name].String() != p.String() {
			t.Errorf("policy %s changed:\n got %v\nwant %v", name, got.Policies[name], p)
		}
	}
}

func TestConfigCodecRejectsBadPolicy(t *testing.T) {
	w := codec.NewWriter()
	w.String("R1")     // name
	w.Uvarint(65001)   // AS
	w.Uvarint(1)       // router ID
	w.Uvarint(0)       // networks
	w.Uvarint(0)       // neighbors
	w.Uvarint(1)       // one policy...
	w.String("BROKEN") // ...named BROKEN...
	w.String("not a policy at all")
	w.Uvarint(0)
	w.Uvarint(0)
	w.Uvarint(0)
	r := codec.NewReader(w.Bytes())
	decodeConfig(r)
	if r.Err() == nil {
		t.Fatal("unparseable policy text accepted")
	}
}
