package procdriver

import (
	"github.com/dice-project/dice/internal/node"

	// The wrapped speakers must be present in both the parent (mirrors,
	// checkpoint decoding) and the child (the actual router), so the driver
	// links all three in.
	_ "github.com/dice-project/dice/internal/bird"
	_ "github.com/dice-project/dice/internal/frr"
	_ "github.com/dice-project/dice/internal/obgpd"
)

// prefix tags the out-of-process variant of an implementation.
const prefix = "proc:"

// Wrapped lists the implementations the driver registers proc variants for.
func Wrapped() []string { return []string{"bird", "frr", "obgpd"} }

func init() {
	for _, impl := range Wrapped() {
		node.Register(makeBackend(impl))
	}
}
