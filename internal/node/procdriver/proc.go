package procdriver

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// RPCTimeout bounds how long the proxy waits for any single child reply
// before declaring the subprocess stalled and killing it. Tests that
// exercise the stall path may lower it; set it before building clusters.
var RPCTimeout = 30 * time.Second

// frame is one child→parent message. The stream ending (child death) is
// signalled by closing the frames channel, not by an in-band value.
type frame struct {
	typ     byte
	payload []byte
}

// child is the parent-side handle of one subprocess.
type child struct {
	cmd    *exec.Cmd
	in     *childStdin
	frames chan frame
	stderr *boundedBuf
	closed chan struct{}
	waited chan struct{}
	once   sync.Once
}

// childStdin serializes writes to the child's pipe; the proxy writes
// requests and hook replies from whatever goroutine drives the emulator.
type childStdin struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  interface{ Close() error }
}

func (cs *childStdin) writeFrame(typ byte, payload []byte) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if err := writeFrame(cs.w, typ, payload); err != nil {
		return err
	}
	return cs.w.Flush()
}

// boundedBuf keeps the tail of the child's stderr for crash diagnostics.
type boundedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *boundedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.buf.Len() < 1<<16 {
		b.buf.Write(p)
	}
	return len(p), nil
}

func (b *boundedBuf) tail() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if len(s) > 512 {
		s = "..." + s[len(s)-512:]
	}
	return s
}

func childCommand(mode string) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), childEnvVar+"="+mode)
	return cmd
}

// children tracks every live subprocess so tests can assert cleanup and kill
// the fleet. Children also die on their own when the parent exits, because
// their stdin pipes close.
var (
	childrenMu sync.Mutex
	children   = make(map[*child]struct{})
)

// LiveChildren returns the number of subprocesses currently running.
func LiveChildren() int {
	childrenMu.Lock()
	defer childrenMu.Unlock()
	return len(children)
}

// KillAll terminates every live subprocess and waits for each to be reaped,
// returning how many were killed. It is the test-suite cleanup seam; nothing
// in the production path calls it.
func KillAll() int {
	childrenMu.Lock()
	live := make([]*child, 0, len(children))
	for c := range children {
		live = append(live, c)
	}
	childrenMu.Unlock()
	for _, c := range live {
		c.kill()
		<-c.waited
	}
	return len(live)
}

// spawnChild re-execs the current binary in serve mode and wires up the
// frame stream.
func spawnChild() (*child, error) {
	cmd := childCommand("serve")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	c := &child{
		cmd:    cmd,
		frames: make(chan frame),
		stderr: &boundedBuf{},
		closed: make(chan struct{}),
		waited: make(chan struct{}),
	}
	c.in = &childStdin{w: bufio.NewWriter(stdin), c: stdin}
	cmd.Stderr = c.stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("procdriver: spawn child: %w", err)
	}
	childrenMu.Lock()
	children[c] = struct{}{}
	childrenMu.Unlock()

	br := bufio.NewReader(stdout)
	go func() {
		// Closing the channel is the death signal: a proxy blocked in a
		// request sees it immediately instead of waiting out the RPC timeout.
		defer close(c.frames)
		for {
			typ, payload, err := readFrame(br)
			if err != nil {
				return
			}
			select {
			case c.frames <- frame{typ: typ, payload: payload}:
			case <-c.closed:
				return
			}
		}
	}()
	go func() {
		_ = cmd.Wait()
		childrenMu.Lock()
		delete(children, c)
		childrenMu.Unlock()
		close(c.waited)
	}()
	return c, nil
}

// kill tears the subprocess down; idempotent.
func (c *child) kill() {
	c.once.Do(func() {
		close(c.closed)
		_ = c.in.c.Close()
		if c.cmd.Process != nil {
			_ = c.cmd.Process.Kill()
		}
	})
}

// pid returns the subprocess PID, for tests that crash it externally.
func (c *child) pid() int {
	if c.cmd.Process == nil {
		return 0
	}
	return c.cmd.Process.Pid
}
