package procdriver

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/checkpoint/codec"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// wireClient drives a runChild server over in-process pipes: the full frame
// protocol without spawning a subprocess, so the child-side handler is
// exercised (and counted) inside the test process.
type wireClient struct {
	t *testing.T
	w *io.PipeWriter
	r *io.PipeReader
}

func startChildServer(t *testing.T) *wireClient {
	t.Helper()
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	done := make(chan struct{})
	go func() {
		runChild(reqR, respW)
		respW.Close()
		close(done)
	}()
	t.Cleanup(func() {
		reqW.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Errorf("runChild did not return after its request stream closed")
		}
	})
	return &wireClient{t: t, w: reqW, r: respR}
}

// roundTrip performs one request: it sends the frame and reads until the
// child answers, collecting effect frames and servicing at most one hook
// exchange through onHook. It returns the frameDone blob, the effects, and
// the frameErr message ("" on success).
func (c *wireClient) roundTrip(typ byte, payload []byte, onHook func(hook []byte) []byte) ([]byte, []frame, string) {
	c.t.Helper()
	if err := writeFrame(c.w, typ, payload); err != nil {
		c.t.Fatalf("write request %#02x: %v", typ, err)
	}
	var effects []frame
	for {
		ftyp, fpayload, err := readFrame(c.r)
		if err != nil {
			c.t.Fatalf("read reply to %#02x: %v", typ, err)
		}
		switch ftyp {
		case frameEffectSend, frameEffectSetTimer, frameEffectCancelTimer, frameEffectLog:
			effects = append(effects, frame{typ: ftyp, payload: fpayload})
		case frameHook:
			if onHook == nil {
				c.t.Fatalf("unexpected hook exchange during %#02x", typ)
			}
			if err := writeFrame(c.w, frameHookReply, onHook(fpayload)); err != nil {
				c.t.Fatalf("write hook reply: %v", err)
			}
		case frameDone:
			r := codec.NewReader(fpayload)
			decodeTrace(r) // trace increment; parity is asserted elsewhere
			blob := r.Blob()
			if err := r.Close(); err != nil {
				c.t.Fatalf("malformed done payload: %v", err)
			}
			return blob, effects, ""
		case frameErr:
			r := codec.NewReader(fpayload)
			msg := r.String()
			if err := r.Close(); err != nil {
				c.t.Fatalf("malformed error payload: %v", err)
			}
			return nil, effects, msg
		default:
			c.t.Fatalf("unexpected frame %#02x from child", ftyp)
		}
	}
}

func sendEffectDest(t *testing.T, f frame) string {
	t.Helper()
	r := codec.NewReader(f.payload)
	to := r.String()
	r.Blob()
	if err := r.Close(); err != nil {
		t.Fatalf("malformed send effect: %v", err)
	}
	return to
}

// TestChildServerProtocol walks one child server through its whole life:
// request-before-build errors, build, session handshake with effect
// forwarding, arming, a parent-side hook exchange that crashes the handler,
// checkpointing, and a reset that clears the damage.
func TestChildServerProtocol(t *testing.T) {
	c := startChildServer(t)

	// Unknown frame types and requests before build are request errors, not
	// protocol failures: the child answers and stays up.
	if _, _, msg := c.roundTrip(0x7F, nil, nil); !strings.Contains(msg, "unknown frame") {
		t.Fatalf("unknown frame type answered %q", msg)
	}
	startPayload := codec.NewWriter()
	startPayload.Uvarint(0)
	if _, _, msg := c.roundTrip(frameStart, startPayload.Bytes(), nil); !strings.Contains(msg, "before build") {
		t.Fatalf("start before build answered %q", msg)
	}

	// BUILD a bird router R2 with one neighbor R1.
	cfg := &node.Config{
		Name: "R2", AS: 65002, RouterID: 2,
		Networks:  []bgp.Prefix{{Addr: 10<<24 | 2<<16, Len: 16}},
		Neighbors: []node.NeighborConfig{{Name: "R1", AS: 65001}},
		HoldTime:  90 * time.Second, KeepaliveInterval: 30 * time.Second,
	}
	w := codec.NewWriter()
	w.String("bird")
	encodeConfig(w, cfg)
	if _, _, msg := c.roundTrip(frameBuild, w.Bytes(), nil); msg != "" {
		t.Fatalf("build failed: %s", msg)
	}

	// START: the router opens its session — the OPEN must cross back as a
	// send effect addressed to the neighbor.
	_, effects, msg := c.roundTrip(frameStart, startPayload.Bytes(), nil)
	if msg != "" {
		t.Fatalf("start failed: %s", msg)
	}
	opened := false
	for _, f := range effects {
		if f.typ == frameEffectSend && sendEffectDest(t, f) == "R1" {
			opened = true
		}
	}
	if !opened {
		t.Fatalf("start produced no OPEN to R1; effects: %d", len(effects))
	}

	// Handshake to Established: deliver the peer's OPEN, then its KEEPALIVE.
	deliver := func(wire []byte, onHook func([]byte) []byte) ([]byte, []frame, string) {
		w := codec.NewWriter()
		w.Uvarint(uint64(5 * time.Millisecond))
		w.String("R1")
		w.Blob(wire)
		return c.roundTrip(frameDeliver, w.Bytes(), onHook)
	}
	open := bgp.Encode(&bgp.Open{Version: bgp.Version, AS: 65001, HoldTime: 90, RouterID: 1})
	if _, effects, msg = deliver(open, nil); msg != "" {
		t.Fatalf("deliver OPEN: %s", msg)
	}
	if len(effects) == 0 {
		t.Fatalf("peer OPEN produced no reply effects")
	}
	if _, _, msg = deliver(bgp.Encode(&bgp.Keepalive{}), nil); msg != "" {
		t.Fatalf("deliver KEEPALIVE: %s", msg)
	}

	// ARM a machine over the update body, install the forwarding hook.
	body := (&bgp.Update{
		Attrs: &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 7},
		NLRI:  []bgp.Prefix{{Addr: 50 << 24, Len: 16}},
	}).EncodeBody()
	w = codec.NewWriter()
	w.Bool(true)
	w.String("R1")
	w.Uvarint(4096)
	w.Uvarint(1)
	w.String("update")
	w.Blob(body)
	if _, _, msg = c.roundTrip(frameArm, w.Bytes(), nil); msg != "" {
		t.Fatalf("arm: %s", msg)
	}
	w = codec.NewWriter()
	w.Bool(true)
	if _, _, msg = c.roundTrip(frameHookSet, w.Bytes(), nil); msg != "" {
		t.Fatalf("hook set: %s", msg)
	}

	// Deliver the UPDATE: the child must forward the hook — parsed body,
	// symbolic view, armed-machine flag — and honor the crash verdict.
	hookSeen := false
	_, _, msg = deliver(bgp.FrameUpdate(body), func(hook []byte) []byte {
		hookSeen = true
		r := codec.NewReader(hook)
		from := r.String()
		hookBody := r.Blob()
		sym := decodeSymUpdate(r)
		hasMachine := r.Bool()
		decodeTrace(r)
		if err := r.Close(); err != nil {
			t.Fatalf("malformed hook frame: %v", err)
		}
		if from != "R1" || !bytes.Equal(hookBody, body) {
			t.Errorf("hook carries from=%q body %d bytes", from, len(hookBody))
		}
		if sym == nil || !hasMachine {
			t.Errorf("hook shipped sym=%v hasMachine=%v, want symbolic view under an armed machine", sym != nil, hasMachine)
		}
		reply := codec.NewWriter()
		reply.Blob(hookBody)
		reply.Bool(true)
		reply.String("boom")
		return reply.Bytes()
	})
	if msg != "" {
		t.Fatalf("deliver UPDATE: %s", msg)
	}
	if !hookSeen {
		t.Fatal("update delivery under an installed hook never forwarded it")
	}

	// CHECKPOINT: the crash verdict must be visible in the canonical state.
	blob, _, msg := c.roundTrip(frameCheckpoint, nil, nil)
	if msg != "" {
		t.Fatalf("checkpoint: %s", msg)
	}
	cp, err := checkpoint.DecodeNode("bird", blob)
	if err != nil {
		t.Fatalf("child checkpoint does not decode: %v", err)
	}
	if cp.NodeName() != "R2" {
		t.Errorf("checkpoint names %q", cp.NodeName())
	}

	// RESET onto the checkpoint just taken: round-trips decodeForms and the
	// content-hash cache, and must leave the child reporting identical bytes.
	w = codec.NewWriter()
	w.Blob(blob)
	for i := 0; i < 2; i++ { // second reset hits the decoded-forms cache
		if _, _, msg = c.roundTrip(frameReset, w.Bytes(), nil); msg != "" {
			t.Fatalf("reset %d: %s", i, msg)
		}
	}
	again, _, msg := c.roundTrip(frameCheckpoint, nil, nil)
	if msg != "" {
		t.Fatalf("checkpoint after reset: %s", msg)
	}
	if !bytes.Equal(again, blob) {
		t.Fatalf("reset-to-self changed canonical state (%d vs %d bytes)", len(again), len(blob))
	}

	// Disarm and fire a timer: both must answer cleanly.
	w = codec.NewWriter()
	w.Bool(false)
	w.String("R1")
	w.Uvarint(0)
	if _, _, msg = c.roundTrip(frameArm, w.Bytes(), nil); msg != "" {
		t.Fatalf("disarm: %s", msg)
	}
	w = codec.NewWriter()
	w.Uvarint(uint64(30 * time.Second))
	w.String("keepalive/R1")
	if _, _, msg = c.roundTrip(frameTimer, w.Bytes(), nil); msg != "" {
		t.Fatalf("timer: %s", msg)
	}
}

// TestChildServerRestore covers the restore path: a canonical blob from a
// built router restores a fresh child server to identical state.
func TestChildServerRestore(t *testing.T) {
	first := startChildServer(t)
	cfg := &node.Config{
		Name: "R1", AS: 65001, RouterID: 1,
		Networks:  []bgp.Prefix{{Addr: 10 << 24, Len: 16}},
		Neighbors: []node.NeighborConfig{{Name: "R2", AS: 65002}},
	}
	w := codec.NewWriter()
	w.String("obgpd")
	encodeConfig(w, cfg)
	if _, _, msg := first.roundTrip(frameBuild, w.Bytes(), nil); msg != "" {
		t.Fatalf("build: %s", msg)
	}
	blob, _, msg := first.roundTrip(frameCheckpoint, nil, nil)
	if msg != "" {
		t.Fatalf("checkpoint: %s", msg)
	}

	second := startChildServer(t)
	w = codec.NewWriter()
	w.Blob(blob)
	if _, _, msg := second.roundTrip(frameRestore, w.Bytes(), nil); msg != "" {
		t.Fatalf("restore: %s", msg)
	}
	restored, _, msg := second.roundTrip(frameCheckpoint, nil, nil)
	if msg != "" {
		t.Fatalf("checkpoint after restore: %s", msg)
	}
	if !bytes.Equal(restored, blob) {
		t.Fatalf("restored child state differs from source")
	}

	// A corrupt restore blob is a request error, not a death sentence.
	w = codec.NewWriter()
	w.Blob([]byte("garbage"))
	if _, _, msg := second.roundTrip(frameRestore, w.Bytes(), nil); msg == "" {
		t.Fatal("garbage restore blob accepted")
	}
	if restored, _, msg = second.roundTrip(frameCheckpoint, nil, nil); msg != "" || !bytes.Equal(restored, blob) {
		t.Fatalf("child unusable after rejected restore: %q", msg)
	}
}

// fakeEnv records the effects applyEffect replays into the emulator.
type fakeEnv struct {
	sends   []string
	timers  []string
	cancels []string
	logs    []string
}

func (e *fakeEnv) Now() time.Duration             { return 0 }
func (e *fakeEnv) Self() netem.NodeID             { return "test" }
func (e *fakeEnv) Neighbors() []netem.NodeID      { return nil }
func (e *fakeEnv) Send(to netem.NodeID, p []byte) { e.sends = append(e.sends, string(to)) }
func (e *fakeEnv) SetTimer(name string, d time.Duration) {
	e.timers = append(e.timers, name)
}
func (e *fakeEnv) CancelTimer(name string) { e.cancels = append(e.cancels, name) }
func (e *fakeEnv) Rand() *rand.Rand        { return nil }
func (e *fakeEnv) Logf(format string, args ...interface{}) {
	e.logs = append(e.logs, format)
}

func TestApplyEffectRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	srv := &server{w: bufio.NewWriter(&buf)}
	env := &childEnv{s: srv}
	env.Send("R9", []byte{1, 2})
	env.SetTimer("keepalive", time.Second)
	env.CancelTimer("hold")
	env.Logf("hello %d", 7)
	if err := srv.w.Flush(); err != nil {
		t.Fatal(err)
	}

	sink := &fakeEnv{}
	r := bytes.NewReader(buf.Bytes())
	for {
		typ, payload, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := applyEffect(sink, typ, payload); err != nil {
			t.Fatalf("applyEffect(%#02x): %v", typ, err)
		}
	}
	if len(sink.sends) != 1 || sink.sends[0] != "R9" {
		t.Errorf("sends = %v", sink.sends)
	}
	if len(sink.timers) != 1 || sink.timers[0] != "keepalive" {
		t.Errorf("timers = %v", sink.timers)
	}
	if len(sink.cancels) != 1 || sink.cancels[0] != "hold" {
		t.Errorf("cancels = %v", sink.cancels)
	}
	if len(sink.logs) != 1 {
		t.Errorf("logs = %v", sink.logs)
	}

	// Effects outside message handling (env == nil) are protocol errors.
	w := codec.NewWriter()
	w.String("R9")
	w.Blob(nil)
	if err := applyEffect(nil, frameEffectSend, w.Bytes()); err == nil {
		t.Error("effect with no env accepted")
	}
}

func TestChildEnvRandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("env.Rand in a child did not panic")
		}
	}()
	(&childEnv{}).Rand()
}

func TestBoundedBufKeepsTail(t *testing.T) {
	b := &boundedBuf{}
	if b.tail() != "" {
		t.Errorf("empty buffer tail = %q", b.tail())
	}
	for i := 0; i < 3000; i++ {
		_, _ = b.Write([]byte("stderr line\n"))
	}
	tail := b.tail()
	if len(tail) > 515 { // 512 plus the "..." marker
		t.Errorf("tail is %d bytes", len(tail))
	}
	if !strings.Contains(tail, "stderr line") {
		t.Errorf("tail lost the content: %q", tail)
	}
}
