package procdriver

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/checkpoint/codec"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// proxy is the parent-side node.Router: it forwards the emulator's calls to
// the subprocess and answers every state read from a mirror — a local
// instance of the inner backend kept in sync by resetting it to the child's
// canonical checkpoints. The mirror makes reads cheap and, more importantly,
// honest: the only channel out of the child is the same checkpoint codec the
// snapshot store trusts, so nothing the checker sees can bypass it.
type proxy struct {
	name      string
	innerImpl string
	innerBe   node.Backend

	mu      sync.Mutex
	child   *child
	mirror  node.Router
	dirty   bool // mirror is behind the child's state
	machine *concolic.Machine
	hook    node.UpdateHook
	err     error // first fatal failure; the proxy is dead once set
}

// reply is a parsed frameDone.
type reply struct {
	blob []byte
}

// buildProxy constructs the subprocess-backed router: the mirror is built
// in-process from the same configuration (which also validates it before a
// child is paid for), then the child builds the real one.
func buildProxy(innerImpl string, cfg *node.Config) (node.Router, error) {
	be, err := node.BackendFor(innerImpl)
	if err != nil {
		return nil, err
	}
	mirror, err := be.Build(cfg.Clone())
	if err != nil {
		return nil, err
	}
	c, err := spawnChild()
	if err != nil {
		return nil, err
	}
	p := &proxy{name: cfg.Name, innerImpl: innerImpl, innerBe: be, child: c, mirror: mirror}
	w := codec.NewWriter()
	w.String(innerImpl)
	encodeConfig(w, cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.call(nil, frameBuild, w.Bytes()); err != nil {
		c.kill()
		return nil, fmt.Errorf("procdriver: %s: child build: %w", cfg.Name, err)
	}
	return p, nil
}

// restoreProxy builds the subprocess-backed router from decoded image and
// state: the mirror restores in-process from the shared inner forms, the
// child restores from the canonical bytes.
func restoreProxy(innerImpl string, im *Image, st *State) (node.Router, error) {
	be, err := node.BackendFor(innerImpl)
	if err != nil {
		return nil, err
	}
	mirror, err := be.Restore(im.innerIm, st.innerSt)
	if err != nil {
		return nil, err
	}
	c, err := spawnChild()
	if err != nil {
		return nil, err
	}
	p := &proxy{name: im.name, innerImpl: innerImpl, innerBe: be, child: c, mirror: mirror}
	w := codec.NewWriter()
	w.Blob(st.data)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, err := p.call(nil, frameRestore, w.Bytes()); err != nil {
		c.kill()
		return nil, fmt.Errorf("procdriver: %s: child restore: %w", im.name, err)
	}
	return p, nil
}

// fail records the first fatal error, kills the subprocess, and returns the
// error. Callers must hold p.mu.
func (p *proxy) fail(err error) error {
	if p.err == nil {
		p.err = err
		p.child.kill()
	}
	return p.err
}

// call performs one request/reply exchange, applying effect frames to env
// and running hook callbacks as they arrive. A returned error is fatal
// (subprocess dead or protocol broken) except when it came from a frameErr,
// which is a request-level failure of a still-healthy child. Callers hold
// p.mu.
func (p *proxy) call(env netem.Env, typ byte, payload []byte) (*reply, error) {
	if p.err != nil {
		return nil, p.err
	}
	if err := p.child.in.writeFrame(typ, payload); err != nil {
		return nil, p.fail(fmt.Errorf("procdriver: %s: write to subprocess: %w%s", p.name, err, p.stderrTail()))
	}
	timer := time.NewTimer(RPCTimeout)
	defer timer.Stop()
	for {
		select {
		case f, ok := <-p.child.frames:
			if !ok {
				return nil, p.fail(fmt.Errorf("procdriver: %s: subprocess died mid-request%s", p.name, p.stderrTail()))
			}
			switch f.typ {
			case frameEffectSend, frameEffectSetTimer, frameEffectCancelTimer, frameEffectLog:
				if err := applyEffect(env, f.typ, f.payload); err != nil {
					return nil, p.fail(fmt.Errorf("procdriver: %s: %w", p.name, err))
				}
			case frameHook:
				if err := p.handleHook(f.payload); err != nil {
					return nil, p.fail(fmt.Errorf("procdriver: %s: hook exchange: %w", p.name, err))
				}
			case frameDone:
				r := codec.NewReader(f.payload)
				t := decodeTrace(r)
				blob := r.Blob()
				if err := r.Close(); err != nil {
					return nil, p.fail(fmt.Errorf("procdriver: %s: malformed reply: %w", p.name, err))
				}
				p.machine.ImportTrace(t)
				return &reply{blob: blob}, nil
			case frameErr:
				r := codec.NewReader(f.payload)
				msg := r.String()
				if err := r.Close(); err != nil {
					return nil, p.fail(fmt.Errorf("procdriver: %s: malformed error reply: %w", p.name, err))
				}
				return nil, errors.New(msg)
			default:
				return nil, p.fail(fmt.Errorf("procdriver: %s: unexpected frame %#02x from subprocess", p.name, f.typ))
			}
		case <-timer.C:
			return nil, p.fail(fmt.Errorf("procdriver: %s: subprocess stalled: no reply within %s%s", p.name, RPCTimeout, p.stderrTail()))
		}
	}
}

// callFatal is call for requests that cannot legitimately fail: any error,
// including a request-level one, marks the proxy dead so the campaign layer
// reports a unit error instead of running on divergent state.
func (p *proxy) callFatal(env netem.Env, typ byte, payload []byte) {
	if _, err := p.call(env, typ, payload); err != nil && p.err == nil {
		p.err = fmt.Errorf("procdriver: %s: %w", p.name, err)
		p.child.kill()
	}
}

func (p *proxy) stderrTail() string {
	if t := p.child.stderr.tail(); t != "" {
		return "; child stderr: " + t
	}
	return ""
}

// applyEffect replays one child-side environment interaction against the
// real emulator, in arrival order.
func applyEffect(env netem.Env, typ byte, payload []byte) error {
	if env == nil {
		return fmt.Errorf("subprocess emitted effect %#02x outside message handling", typ)
	}
	r := codec.NewReader(payload)
	switch typ {
	case frameEffectSend:
		to := r.String()
		msg := r.Blob()
		if err := r.Close(); err != nil {
			return err
		}
		env.Send(netem.NodeID(to), msg)
	case frameEffectSetTimer:
		name := r.String()
		d := r.Uvarint()
		if err := r.Close(); err != nil {
			return err
		}
		env.SetTimer(name, time.Duration(d))
	case frameEffectCancelTimer:
		name := r.String()
		if err := r.Close(); err != nil {
			return err
		}
		env.CancelTimer(name)
	case frameEffectLog:
		line := r.String()
		if err := r.Close(); err != nil {
			return err
		}
		env.Logf("%s", line)
	}
	return nil
}

// hookCtx is the HookContext the parent-side hook runs under.
type hookCtx struct {
	m *concolic.Machine
}

func (h hookCtx) ActiveMachine() *concolic.Machine { return h.m }

// handleHook services one child hook callback: import the child's branch
// trace so the parent machine is current, rebuild the parsed update, run the
// real (closure-carrying) hook here, and ship back the mutated concrete
// fields plus the crash verdict.
func (p *proxy) handleHook(payload []byte) error {
	r := codec.NewReader(payload)
	from := r.String()
	body := r.Blob()
	sym := decodeSymUpdate(r)
	hasMachine := r.Bool()
	t := decodeTrace(r)
	if err := r.Close(); err != nil {
		return err
	}
	p.machine.ImportTrace(t)
	u, err := bgp.DecodeUpdate(body)
	if err != nil {
		return fmt.Errorf("update from subprocess does not parse: %w", err)
	}
	u.Sym = sym
	var m *concolic.Machine
	if hasMachine {
		m = p.machine
	}
	var crashed bool
	var crashMsg string
	if p.hook != nil {
		if herr := p.hook(hookCtx{m: m}, from, u); herr != nil {
			crashed = true
			crashMsg = herr.Error()
		}
	}
	w := codec.NewWriter()
	w.Blob(u.EncodeBody())
	w.Bool(crashed)
	w.String(crashMsg)
	return p.child.in.writeFrame(frameHookReply, w.Bytes())
}

//
// netem.Node
//

func (p *proxy) ID() netem.NodeID { return netem.NodeID(p.name) }

func (p *proxy) Start(env netem.Env) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	w := codec.NewWriter()
	w.Uvarint(uint64(env.Now()))
	p.dirty = true
	p.callFatal(env, frameStart, w.Bytes())
}

func (p *proxy) HandleMessage(env netem.Env, from netem.NodeID, payload []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return // a dead node drops traffic; Unhealthy reports why
	}
	w := codec.NewWriter()
	w.Uvarint(uint64(env.Now()))
	w.String(string(from))
	w.Blob(payload)
	p.dirty = true
	p.callFatal(env, frameDeliver, w.Bytes())
}

func (p *proxy) HandleTimer(env netem.Env, name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	w := codec.NewWriter()
	w.Uvarint(uint64(env.Now()))
	w.String(name)
	p.dirty = true
	p.callFatal(env, frameTimer, w.Bytes())
}

//
// node.Router
//

func (p *proxy) Implementation() string { return "proc:" + p.innerImpl }

func (p *proxy) Config() *node.Config {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mirror.Config()
}

// refreshedLocked returns the mirror, first syncing it to the child's state
// when it is behind: one checkpoint round-trip, decoded through the inner
// backend and applied with the same ResetTo the clone pool trusts.
func (p *proxy) refreshedLocked() node.Router {
	if p.err == nil && p.dirty {
		rep, err := p.call(nil, frameCheckpoint, nil)
		if err != nil {
			p.fail(fmt.Errorf("procdriver: %s: checkpoint: %w", p.name, err))
			return p.mirror
		}
		if err := p.adoptLocked(rep.blob); err != nil {
			p.fail(fmt.Errorf("procdriver: %s: adopt checkpoint: %w", p.name, err))
			return p.mirror
		}
		p.dirty = false
	}
	return p.mirror
}

func (p *proxy) adoptLocked(blob []byte) error {
	cp, err := checkpoint.DecodeNode(p.innerImpl, blob)
	if err != nil {
		return err
	}
	im, err := p.innerBe.ImageOf(cp)
	if err != nil {
		return err
	}
	st, err := p.innerBe.DecodeState(cp)
	if err != nil {
		return err
	}
	return p.mirror.ResetTo(im, st)
}

func (p *proxy) LocRIB() *rib.LocRIB {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refreshedLocked().LocRIB()
}

func (p *proxy) Events() []node.RouteEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refreshedLocked().Events()
}

func (p *proxy) Stats() node.RouterStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refreshedLocked().Stats()
}

func (p *proxy) Panicked() (bool, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refreshedLocked().Panicked()
}

func (p *proxy) CheckInvariants() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refreshedLocked().CheckInvariants()
}

func (p *proxy) TakeCheckpoint() node.Checkpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	return &Checkpoint{Inner: p.refreshedLocked().TakeCheckpoint()}
}

func (p *proxy) ResetTo(im node.Image, st node.State) error {
	pim, ok := im.(*Image)
	if !ok {
		return fmt.Errorf("procdriver: %s: image %T is not a procdriver image", p.name, im)
	}
	pst, ok := st.(*State)
	if !ok {
		return fmt.Errorf("procdriver: %s: state %T is not a procdriver state", p.name, st)
	}
	if pim.impl != p.Implementation() || pst.impl != p.Implementation() {
		return fmt.Errorf("procdriver: %s: reset with %s/%s forms, router is %s", p.name, pim.impl, pst.impl, p.Implementation())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	w := codec.NewWriter()
	w.Blob(pst.data)
	if _, err := p.call(nil, frameReset, w.Bytes()); err != nil {
		return err
	}
	// The child's ResetTo cleared its hook and armed machine; match it.
	p.machine, p.hook = nil, nil
	if err := p.mirror.ResetTo(pim.innerIm, pst.innerSt); err != nil {
		return p.fail(fmt.Errorf("procdriver: %s: mirror reset: %w", p.name, err))
	}
	p.dirty = false
	return nil
}

func (p *proxy) ExploreNextUpdate(m *concolic.Machine, fromPeer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	p.machine = m
	w := codec.NewWriter()
	w.Bool(m != nil)
	w.String(fromPeer)
	w.Uvarint(uint64(m.MaxBranches()))
	if m != nil {
		in := m.Input()
		names := make([]string, 0, len(in.Regions))
		for name := range in.Regions {
			names = append(names, name)
		}
		sort.Strings(names)
		w.Uvarint(uint64(len(names)))
		for _, name := range names {
			w.String(name)
			w.Blob(in.Regions[name])
		}
	}
	p.callFatal(nil, frameArm, w.Bytes())
}

func (p *proxy) SetUpdateHook(h node.UpdateHook) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	p.hook = h
	w := codec.NewWriter()
	w.Bool(h != nil)
	p.callFatal(nil, frameHookSet, w.Bytes())
}

// ActiveMachine reports nil: the proxy is never observed mid-handling from
// outside (hooks receive their machine through the HookContext), matching
// what an in-process router answers between messages.
func (p *proxy) ActiveMachine() *concolic.Machine { return nil }

// Unhealthy implements the health probe the cluster layer polls: it returns
// the first fatal subprocess failure (crash, stall, protocol break), or nil
// while the child is serving.
func (p *proxy) Unhealthy() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Kill terminates r's subprocess out from under the proxy, simulating an
// external crash: the proxy is NOT marked dead — the next interaction
// discovers the EOF exactly as it would for a real crash. It reports whether
// r was a procdriver router with a live child. Test seam.
func Kill(r node.Router) bool {
	p, ok := r.(*proxy)
	if !ok {
		return false
	}
	p.child.kill()
	<-p.child.waited
	return true
}
