// Package procdriver runs any registered router backend out of process: a
// proxy implementing node.Router forwards every interaction over a framed
// stdin/stdout protocol to a child process (a re-exec of the current binary)
// hosting the real speaker, and serves state reads from a local mirror
// restored out of the child's canonical checkpoints. Registering the driver
// as "proc:<impl>" makes process isolation a deployment choice: the cluster,
// clone pool, checker and distributed agents drive the subprocess exactly as
// they drive an in-process node, and its detections are byte-identical.
//
// The driver keeps the two properties the differential oracle depends on:
// controllability — the child sees only what the parent ships (virtual time,
// delivered messages, timer expiries), never real time or randomness — and
// observability — every side effect (sends, timer arms, log lines) crosses
// back as an ordered effect stream applied to the parent's emulator, and
// every piece of router state is read through the same canonical checkpoint
// codec the snapshot store uses. A child crash or stall is detected, the
// proxy goes permanently unhealthy, and the campaign layer surfaces it as a
// unit error instead of hanging or fabricating results.
package procdriver

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/checkpoint/codec"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/concolic/expr"
	"github.com/dice-project/dice/internal/node"
)

// Frame types. Parent→child frames are requests; each is answered by exactly
// one frameDone or frameErr, possibly preceded by effect and hook frames.
const (
	// Requests (parent → child).
	frameBuild      byte = 0x01 // config → construct the inner router
	frameRestore    byte = 0x02 // EncodeNode blob → restore the inner router
	frameReset      byte = 0x03 // EncodeNode blob → in-place ResetTo
	frameStart      byte = 0x04 // now → inner.Start
	frameDeliver    byte = 0x05 // now, from, payload → inner.HandleMessage
	frameTimer      byte = 0x06 // now, name → inner.HandleTimer
	frameArm        byte = 0x07 // fromPeer, maxBranches, input regions → ExploreNextUpdate
	frameHookSet    byte = 0x08 // bool → install/remove the forwarding hook
	frameCheckpoint byte = 0x09 // → TakeCheckpoint, reply carries EncodeNode blob
	frameHookReply  byte = 0x0a // parent's answer to frameHook

	// Replies and mid-request traffic (child → parent).
	frameEffectSend        byte = 0x20 // to, payload
	frameEffectSetTimer    byte = 0x21 // name, duration
	frameEffectCancelTimer byte = 0x22 // name
	frameEffectLog         byte = 0x23 // rendered line
	frameHook              byte = 0x24 // update hook callback: runs parent-side
	frameDone              byte = 0x25 // request complete (optional trace, blob)
	frameErr               byte = 0x26 // request failed
)

// maxFrameLen bounds one frame. Checkpoints of large RIBs dominate frame
// sizes; 1<<28 is far above any real node state while still refusing a
// corrupt length prefix before it sizes an allocation.
const maxFrameLen = 1 << 28

// maxExprDepth bounds expression nesting on decode. Parsed UPDATE
// constraints are a few levels deep; the bound only exists so corrupt input
// cannot drive unbounded recursion.
const maxExprDepth = 1024

// writeFrame emits one length-prefixed frame: u32 little-endian length over
// the type byte plus payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame. io.EOF is returned verbatim when the stream
// ends cleanly between frames (how a child notices the parent is gone).
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrameLen {
		return 0, nil, fmt.Errorf("procdriver: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("procdriver: truncated frame: %w", err)
	}
	return body[0], body[1:], nil
}

//
// Expression, value and update codecs. Everything the concolic layer ships
// across the boundary is encoded with the checkpoint codec primitives so the
// frames are deterministic and non-panicking to decode, like every other
// cross-process artifact.
//

func encodeExpr(w *codec.Writer, e *expr.Expr) {
	if e == nil {
		w.Byte(byte(expr.KindInvalid))
		return
	}
	w.Byte(byte(e.Kind))
	w.Byte(e.Width)
	w.Uvarint(e.Val)
	w.String(e.Name)
	w.Uvarint(uint64(len(e.Args)))
	for _, a := range e.Args {
		encodeExpr(w, a)
	}
}

func decodeExpr(r *codec.Reader, depth int) *expr.Expr {
	k := r.Byte()
	if r.Err() != nil || k == byte(expr.KindInvalid) {
		return nil
	}
	if k > byte(expr.KindIte) {
		r.Fail("expression kind %d out of range", k)
		return nil
	}
	if depth >= maxExprDepth {
		r.Fail("expression nesting exceeds %d", maxExprDepth)
		return nil
	}
	e := &expr.Expr{Kind: expr.Kind(k), Width: r.Byte(), Val: r.Uvarint(), Name: r.String()}
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		e.Args = append(e.Args, decodeExpr(r, depth+1))
	}
	return e
}

func encodeValue(w *codec.Writer, v concolic.Value) {
	w.Uvarint(v.Concrete)
	w.Byte(v.Width)
	encodeExpr(w, v.Sym)
}

func decodeValue(r *codec.Reader) concolic.Value {
	return concolic.Value{Concrete: r.Uvarint(), Width: r.Byte(), Sym: decodeExpr(r, 0)}
}

func encodeSymPrefixes(w *codec.Writer, ps []bgp.SymPrefix) {
	w.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		encodeValue(w, p.Len)
		encodeValue(w, p.Addr)
	}
}

func decodeSymPrefixes(r *codec.Reader) []bgp.SymPrefix {
	n := r.Count()
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]bgp.SymPrefix, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, bgp.SymPrefix{Len: decodeValue(r), Addr: decodeValue(r)})
	}
	return out
}

func encodeSymUpdate(w *codec.Writer, s *bgp.SymUpdate) {
	if s == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	encodeValue(w, s.Origin)
	w.Bool(s.HasOrigin)
	encodeValue(w, s.LocalPref)
	w.Bool(s.HasLocalPref)
	encodeValue(w, s.MED)
	w.Bool(s.HasMED)
	encodeValue(w, s.NextHop)
	w.Bool(s.HasNextHop)
	encodeValue(w, s.ASPathLen)
	encodeSymPrefixes(w, s.NLRI)
	encodeSymPrefixes(w, s.Withdrawn)
	w.Uvarint(uint64(len(s.Communities)))
	for _, c := range s.Communities {
		encodeValue(w, c)
	}
}

func decodeSymUpdate(r *codec.Reader) *bgp.SymUpdate {
	if !r.Bool() || r.Err() != nil {
		return nil
	}
	s := &bgp.SymUpdate{}
	s.Origin = decodeValue(r)
	s.HasOrigin = r.Bool()
	s.LocalPref = decodeValue(r)
	s.HasLocalPref = r.Bool()
	s.MED = decodeValue(r)
	s.HasMED = r.Bool()
	s.NextHop = decodeValue(r)
	s.HasNextHop = r.Bool()
	s.ASPathLen = decodeValue(r)
	s.NLRI = decodeSymPrefixes(r)
	s.Withdrawn = decodeSymPrefixes(r)
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		s.Communities = append(s.Communities, decodeValue(r))
	}
	return s
}

//
// Trace codec. Maps travel in sorted key order so identical traces encode to
// identical bytes.
//

func encodeTrace(w *codec.Writer, t *concolic.Trace) {
	if t == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Uvarint(uint64(len(t.Branches)))
	for _, b := range t.Branches {
		w.String(b.Site)
		w.Bool(b.Taken)
		encodeExpr(w, b.Cond)
	}
	names := make([]string, 0, len(t.Assignment))
	for name := range t.Assignment {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		w.String(name)
		w.Uvarint(t.Assignment[name])
	}
	names = names[:0]
	for name := range t.Vars {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		ref := t.Vars[name]
		w.String(name)
		w.String(ref.Region)
		w.Uvarint(uint64(ref.Index))
	}
	names = names[:0]
	for name := range t.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		w.String(name)
		w.Blob(t.Regions[name])
	}
	w.Bool(t.Truncated)
}

func decodeTrace(r *codec.Reader) *concolic.Trace {
	if !r.Bool() || r.Err() != nil {
		return nil
	}
	t := &concolic.Trace{
		Assignment: make(expr.Assignment),
		Vars:       make(map[string]concolic.VarRef),
		Regions:    make(map[string][]byte),
	}
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		t.Branches = append(t.Branches, concolic.Branch{Site: r.String(), Taken: r.Bool(), Cond: decodeExpr(r, 0)})
	}
	n = r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		t.Assignment[name] = r.Uvarint()
	}
	n = r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		t.Vars[name] = concolic.VarRef{Region: r.String(), Index: int(r.Uvarint())}
	}
	n = r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		t.Regions[name] = r.Blob()
	}
	t.Truncated = r.Bool()
	return t
}

//
// Config codec. Policies cross the boundary in the policy language's text
// form — String∘ParsePolicy is the same lossless round-trip the dialect
// renderers rely on — so no reflection-driven encoding touches the
// Condition/Action interfaces.
//

func encodeConfig(w *codec.Writer, cfg *node.Config) {
	w.String(cfg.Name)
	w.Uvarint(uint64(cfg.AS))
	w.Uvarint(uint64(cfg.RouterID))
	w.Uvarint(uint64(len(cfg.Networks)))
	for _, p := range cfg.Networks {
		w.Uvarint(uint64(p.Addr))
		w.Byte(p.Len)
	}
	w.Uvarint(uint64(len(cfg.Neighbors)))
	for _, n := range cfg.Neighbors {
		w.String(n.Name)
		w.Uvarint(uint64(n.AS))
		w.String(n.Import)
		w.String(n.Export)
	}
	names := make([]string, 0, len(cfg.Policies))
	for name := range cfg.Policies {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		w.String(name)
		w.String(cfg.Policies[name].String())
	}
	w.Uvarint(uint64(cfg.HoldTime))
	w.Uvarint(uint64(cfg.KeepaliveInterval))
	w.Uvarint(uint64(cfg.ConnectRetry))
}

func decodeConfig(r *codec.Reader) *node.Config {
	cfg := &node.Config{
		Name:     r.String(),
		AS:       bgp.ASN(r.Uvarint()),
		RouterID: bgp.RouterID(r.Uvarint()),
	}
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		cfg.Networks = append(cfg.Networks, bgp.Prefix{Addr: uint32(r.Uvarint()), Len: r.Byte()})
	}
	n = r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		cfg.Neighbors = append(cfg.Neighbors, node.NeighborConfig{
			Name: r.String(), AS: bgp.ASN(r.Uvarint()), Import: r.String(), Export: r.String(),
		})
	}
	n = r.Count()
	if n > 0 {
		cfg.Policies = make(map[string]*policy.Policy, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		text := r.String()
		if r.Err() != nil {
			break
		}
		p, err := policy.ParsePolicy(text)
		if err != nil {
			r.Fail("policy %q does not parse: %v", name, err)
			break
		}
		cfg.Policies[name] = p
	}
	cfg.HoldTime = time.Duration(r.Uvarint())
	cfg.KeepaliveInterval = time.Duration(r.Uvarint())
	cfg.ConnectRetry = time.Duration(r.Uvarint())
	return cfg
}
