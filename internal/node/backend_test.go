package node_test

import (
	"strings"
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bird"
	"github.com/dice-project/dice/internal/frr"
	"github.com/dice-project/dice/internal/node"
)

func testConfig(name string) *node.Config {
	return &node.Config{
		Name: name, AS: 65001, RouterID: 1,
		Networks: []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")},
	}
}

func TestRegistryResolvesBackends(t *testing.T) {
	impls := node.Implementations()
	want := map[string]bool{"bird": false, "frr": false}
	for _, impl := range impls {
		if _, ok := want[impl]; ok {
			want[impl] = true
		}
	}
	for impl, seen := range want {
		if !seen {
			t.Errorf("backend %q not registered (got %v)", impl, impls)
		}
	}

	def, err := node.BackendFor("")
	if err != nil || def.Name != node.DefaultImplementation {
		t.Errorf("empty tag resolves to %q (%v), want default %q", def.Name, err, node.DefaultImplementation)
	}
	if _, err := node.BackendFor("cisco-ios"); err == nil || !strings.Contains(err.Error(), "unknown router implementation") {
		t.Errorf("unknown implementation error = %v", err)
	}
}

func TestBuildRouterDispatches(t *testing.T) {
	for _, impl := range []string{"bird", "frr"} {
		r, err := node.BuildRouter(impl, testConfig("R1"))
		if err != nil {
			t.Fatalf("BuildRouter(%s): %v", impl, err)
		}
		if r.Implementation() != impl {
			t.Errorf("built router reports %q, want %q", r.Implementation(), impl)
		}
		if r.Config().Name != "R1" || r.LocRIB().Len() != 1 {
			t.Errorf("%s router not configured: %+v", impl, r.Config())
		}
	}
	if _, err := node.BuildRouter("nope", testConfig("R1")); err == nil {
		t.Errorf("unknown backend must not build")
	}
}

func TestRestoreRouterDispatchesByCheckpoint(t *testing.T) {
	br := bird.MustNew(testConfig("B"))
	fr, err := frr.New(testConfig("F"))
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range []node.Checkpoint{br.TakeCheckpoint(), fr.TakeCheckpoint()} {
		restored, err := node.RestoreRouter(cp)
		if err != nil {
			t.Fatalf("RestoreRouter(%s): %v", cp.Implementation(), err)
		}
		if restored.Implementation() != cp.Implementation() {
			t.Errorf("restored %q from a %q checkpoint", restored.Implementation(), cp.Implementation())
		}
		if restored.Config().Name != cp.NodeName() {
			t.Errorf("restored name %q, want %q", restored.Config().Name, cp.NodeName())
		}
	}
}

// TestBackendsRejectForeignCheckpoints pins the registry boundary: a
// backend's decode hooks refuse a checkpoint produced by the other backend.
func TestBackendsRejectForeignCheckpoints(t *testing.T) {
	birdBE, _ := node.BackendFor("bird")
	frrBE, _ := node.BackendFor("frr")
	fr, err := frr.New(testConfig("F"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := birdBE.ImageOf(fr.TakeCheckpoint()); err == nil {
		t.Errorf("bird backend accepted an frr checkpoint")
	}
	br := bird.MustNew(testConfig("B"))
	if _, err := frrBE.DecodeState(br.TakeCheckpoint()); err == nil {
		t.Errorf("frr backend accepted a bird checkpoint")
	}
}

func TestRegisterRejectsIncompleteAndDuplicate(t *testing.T) {
	// A scoped registry exercises the panic paths without touching the
	// process-wide default registry.
	reg := node.NewRegistry()
	mustPanic := func(name string, b node.Backend) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		reg.Register(b)
	}
	mustPanic("incomplete", node.Backend{Name: "half-baked"})
	full, _ := node.BackendFor("bird")
	reg.Register(full)
	mustPanic("duplicate", full)
}

// TestScopedRegistryIsolation pins the test seam: registrations in a scoped
// Registry are invisible to the default registry and vice versa, and each
// scoped registry dispatches builds through its own backend set.
func TestScopedRegistryIsolation(t *testing.T) {
	reg := node.NewRegistry()
	if impls := reg.Implementations(); len(impls) != 0 {
		t.Fatalf("fresh registry not empty: %v", impls)
	}
	if _, err := reg.BackendFor("bird"); err == nil {
		t.Fatal("scoped registry must not see the default registry's backends")
	}

	full, _ := node.BackendFor("bird")
	fake := full
	fake.Name = "fake-speaker"
	reg.Register(fake)
	if got := reg.Implementations(); len(got) != 1 || got[0] != "fake-speaker" {
		t.Fatalf("scoped registry contents: %v", got)
	}
	if _, err := node.BackendFor("fake-speaker"); err == nil {
		t.Fatal("scoped registration leaked into the default registry")
	}

	r, err := reg.BuildRouter("fake-speaker", testConfig("R1"))
	if err != nil {
		t.Fatalf("scoped BuildRouter: %v", err)
	}
	// The builder is bird's, so the checkpoint carries the "bird" tag — and
	// restore dispatches through the scoped set, where that tag is unknown.
	if _, err := reg.RestoreRouter(r.TakeCheckpoint()); err == nil {
		t.Fatal("scoped RestoreRouter resolved a tag only the default registry knows")
	}
}
