package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/topology"
)

// ChurnTarget is where a scenario's churn lands. The live runtime primes
// every shadow clone through it before the explored input is injected, and
// records the same injections as the detection's replayable trace.
// *cluster.Cluster satisfies it.
type ChurnTarget interface {
	// InjectUpdate delivers a BGP UPDATE to a router as if sent by the named
	// peer.
	InjectUpdate(fromPeer, to string, update *bgp.Update)
}

// Scenario is a named generator of exploration pressure for the live
// runtime's scenario scheduler: a deterministic burst of control-plane churn
// a shadow clone is primed with before exploration. Unlike the config and
// code faults above — which plant a defect — a scenario plants nothing; it
// shakes the system so latent defects surface. Class reports the fault class
// the scenario is tuned to expose (ClassUnknown for unbiased scenarios); the
// scheduler keys its weighted queue on Name and reports by Class.
type Scenario interface {
	Fault
	// Prime injects the scenario's churn into the target. Priming must be
	// deterministic in the scenario's fields: the live runtime replays the
	// identical sequence into many clones and into trace minimization.
	Prime(t ChurnTarget)
}

// announceAttrs builds the legitimate announcement attributes of a peer.
func announceAttrs(peerAS bgp.ASN, peerID uint32, prepend int) *bgp.PathAttributes {
	path := make([]bgp.ASN, 0, 1+prepend)
	for i := 0; i <= prepend; i++ {
		path = append(path, peerAS)
	}
	return &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: path, NextHop: peerID}
}

// Baseline is the no-churn scenario: the epoch state is explored exactly as
// captured. Keeping it in the registry means pure exploration competes for
// scheduler weight against the churn generators.
type Baseline struct{}

// Class implements Fault.
func (Baseline) Class() checker.FaultClass { return checker.ClassUnknown }

// Name implements Fault.
func (Baseline) Name() string { return "baseline" }

// Description implements Fault.
func (Baseline) Description() string { return "no churn; explore the captured state as-is" }

// Prime implements Scenario.
func (Baseline) Prime(t ChurnTarget) {}

// LinkFlap models a flapping session: the peer's prefixes are rapidly
// withdrawn and re-announced over one session, the churn pattern that excites
// preference cycles into visible oscillation.
type LinkFlap struct {
	// Router is the node whose session flaps; Peer is the neighbor on it.
	Router, Peer string
	// PeerAS and PeerID are the peer's AS and router ID, used to re-announce
	// with legitimate attributes.
	PeerAS bgp.ASN
	PeerID uint32
	// Prefixes are the routes carried on the session (typically the peer's
	// own originations).
	Prefixes []bgp.Prefix
	// Flaps is the number of down/up cycles (1 when not positive).
	Flaps int
}

// Class implements Fault.
func (LinkFlap) Class() checker.FaultClass { return checker.ClassPolicyConflict }

// Name implements Fault.
func (LinkFlap) Name() string { return "link-flap" }

// Description implements Fault.
func (s LinkFlap) Description() string {
	return fmt.Sprintf("session %s<-%s flaps %d times over %d prefixes", s.Router, s.Peer, s.flaps(), len(s.Prefixes))
}

func (s LinkFlap) flaps() int {
	if s.Flaps <= 0 {
		return 1
	}
	return s.Flaps
}

// Prime implements Scenario.
func (s LinkFlap) Prime(t ChurnTarget) {
	if len(s.Prefixes) == 0 {
		return
	}
	for i := 0; i < s.flaps(); i++ {
		t.InjectUpdate(s.Peer, s.Router, &bgp.Update{Withdrawn: append([]bgp.Prefix(nil), s.Prefixes...)})
		t.InjectUpdate(s.Peer, s.Router, &bgp.Update{
			Attrs: announceAttrs(s.PeerAS, s.PeerID, 0),
			NLRI:  append([]bgp.Prefix(nil), s.Prefixes...),
		})
	}
}

// SessionReset models a peer going down without coming back within the
// explored window: everything learned on the session is withdrawn, surfacing
// blackholes behind missing alternatives and stale-route bugs (a handler that
// drops withdrawals keeps forwarding into the dead session).
type SessionReset struct {
	Router, Peer string
	// Prefixes are the routes the dead session had contributed.
	Prefixes []bgp.Prefix
}

// Class implements Fault.
func (SessionReset) Class() checker.FaultClass { return checker.ClassOperatorMistake }

// Name implements Fault.
func (SessionReset) Name() string { return "session-reset" }

// Description implements Fault.
func (s SessionReset) Description() string {
	return fmt.Sprintf("session %s<-%s resets, withdrawing %d prefixes", s.Router, s.Peer, len(s.Prefixes))
}

// Prime implements Scenario.
func (s SessionReset) Prime(t ChurnTarget) {
	if len(s.Prefixes) == 0 {
		return
	}
	t.InjectUpdate(s.Peer, s.Router, &bgp.Update{Withdrawn: append([]bgp.Prefix(nil), s.Prefixes...)})
}

// PrefixChurn alternates announcements of one prefix between a short and a
// prepended AS path, forcing repeated best-route reselection for that
// destination — pressure on tie-breaking, MED handling and oscillation
// thresholds.
type PrefixChurn struct {
	Router, Peer string
	PeerAS       bgp.ASN
	PeerID       uint32
	Prefix       bgp.Prefix
	// Rounds is the number of short/long alternations (1 when not positive).
	Rounds int
}

// Class implements Fault.
func (PrefixChurn) Class() checker.FaultClass { return checker.ClassPolicyConflict }

// Name implements Fault.
func (PrefixChurn) Name() string { return "prefix-churn" }

// Description implements Fault.
func (s PrefixChurn) Description() string {
	return fmt.Sprintf("prefix %s churns %d rounds on %s<-%s", s.Prefix, s.rounds(), s.Router, s.Peer)
}

func (s PrefixChurn) rounds() int {
	if s.Rounds <= 0 {
		return 1
	}
	return s.Rounds
}

// Prime implements Scenario.
func (s PrefixChurn) Prime(t ChurnTarget) {
	for i := 0; i < s.rounds(); i++ {
		t.InjectUpdate(s.Peer, s.Router, &bgp.Update{
			Attrs: announceAttrs(s.PeerAS, s.PeerID, 3),
			NLRI:  []bgp.Prefix{s.Prefix},
		})
		t.InjectUpdate(s.Peer, s.Router, &bgp.Update{
			Attrs: announceAttrs(s.PeerAS, s.PeerID, 0),
			NLRI:  []bgp.Prefix{s.Prefix},
		})
	}
}

// StagedPolicyUpdate models an operator rolling out an export-policy change
// in stages: the same prefix is re-announced with progressively longer
// prepending, the way traffic engineering is deployed one step at a time.
// Each stage shifts best-path selection a little further.
type StagedPolicyUpdate struct {
	Router, Peer string
	PeerAS       bgp.ASN
	PeerID       uint32
	Prefix       bgp.Prefix
	// Stages is the number of rollout steps (2 when not positive).
	Stages int
}

// Class implements Fault.
func (StagedPolicyUpdate) Class() checker.FaultClass { return checker.ClassPolicyConflict }

// Name implements Fault.
func (StagedPolicyUpdate) Name() string { return "staged-policy-update" }

// Description implements Fault.
func (s StagedPolicyUpdate) Description() string {
	return fmt.Sprintf("staged prepend rollout for %s in %d steps on %s<-%s", s.Prefix, s.stages(), s.Router, s.Peer)
}

func (s StagedPolicyUpdate) stages() int {
	if s.Stages <= 0 {
		return 2
	}
	return s.Stages
}

// Prime implements Scenario.
func (s StagedPolicyUpdate) Prime(t ChurnTarget) {
	for step := 1; step <= s.stages(); step++ {
		t.InjectUpdate(s.Peer, s.Router, &bgp.Update{
			Attrs: announceAttrs(s.PeerAS, s.PeerID, step),
			NLRI:  []bgp.Prefix{s.Prefix},
		})
	}
}

// Catalog returns one prototype instance of every fault and scenario this
// package defines, sorted by name. The live scheduler and the registry tests
// key on the prototypes' Name/Class pairs, which are stable identifiers:
// renaming a fault invalidates persisted scheduler state and dedupe caches,
// so names must never be reused for different behavior.
func Catalog() []Fault {
	out := []Fault{
		// Planted faults.
		MisOrigination{},
		MissingImportFilter{},
		DisputeWheel{},
		CommunityCrash("", 0),
		LongPathCrash("", 0),
		MEDZeroCrash(""),
		DroppedWithdrawals(""),
		// Churn scenarios.
		Baseline{},
		LinkFlap{},
		SessionReset{},
		PrefixChurn{},
		StagedPolicyUpdate{},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Scenarios builds the default scenario set for a topology: every churn
// generator bound to the topology's best-connected router, its first
// neighbor and seed-chosen prefixes, plus the baseline. This is the registry
// the live runtime's scheduler draws from when the caller configures none.
func Scenarios(topo *topology.Topology, seed int64) []Scenario {
	rng := rand.New(rand.NewSource(seed))
	explorer := topo.BestConnected()
	neighbors := append([]string(nil), topo.NeighborsOf(explorer)...)
	if len(neighbors) == 0 {
		return []Scenario{Baseline{}}
	}
	sort.Strings(neighbors)
	peerName := neighbors[0]
	peer := topo.Node(peerName)

	// The flapped/reset prefixes are the peer's own originations; the churned
	// prefix is a random remote node's, so reselection ripples through the
	// explorer instead of stopping at the origin.
	victim := peer.Prefixes
	var churned bgp.Prefix
	withPrefixes := make([]string, 0, len(topo.Nodes))
	for _, n := range topo.Nodes {
		if n.Name != explorer && n.Name != peerName && len(n.Prefixes) > 0 {
			withPrefixes = append(withPrefixes, n.Name)
		}
	}
	sort.Strings(withPrefixes)
	if len(withPrefixes) > 0 {
		churned = topo.Node(withPrefixes[rng.Intn(len(withPrefixes))]).Prefixes[0]
	} else if len(victim) > 0 {
		churned = victim[0]
	}

	return []Scenario{
		Baseline{},
		LinkFlap{Router: explorer, Peer: peerName, PeerAS: peer.AS, PeerID: uint32(peer.RouterID), Prefixes: victim, Flaps: 3},
		SessionReset{Router: explorer, Peer: peerName, Prefixes: victim},
		PrefixChurn{Router: explorer, Peer: peerName, PeerAS: peer.AS, PeerID: uint32(peer.RouterID), Prefix: churned, Rounds: 3},
		StagedPolicyUpdate{Router: explorer, Peer: peerName, PeerAS: peer.AS, PeerID: uint32(peer.RouterID), Prefix: churned, Stages: 3},
	}
}
