package faults

import (
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bird"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/topology"
)

func TestMisOriginationDetectedByOriginValidity(t *testing.T) {
	topo := topology.Line(3)
	victim := topo.Nodes[0].Prefixes[0]
	fault := MisOrigination{Router: "R3", Prefix: victim}
	if fault.Class() != checker.ClassOperatorMistake || fault.Name() == "" || fault.Description() == "" {
		t.Errorf("fault metadata broken")
	}
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1, ConfigOverride: ApplyConfigFaults(fault)})
	c.Converge()
	res := checker.OriginValidity{Ownership: checker.OwnershipFromTopology(topo)}.Check(c)
	if res.OK() {
		t.Fatalf("mis-origination not detected")
	}
}

func TestMissingImportFilterAllowsHijackedAnnouncement(t *testing.T) {
	topo := topology.Line(3)
	victim := topo.Nodes[2].Prefixes[0] // R3's prefix
	fault := MissingImportFilter{Router: "R2", Peer: "R1"}
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1, GaoRexford: true, ConfigOverride: ApplyConfigFaults(fault)})
	c.Converge()
	// Before any hijacked announcement the system is clean.
	own := checker.OwnershipFromTopology(topo)
	if !(checker.OriginValidity{Ownership: own}).Check(c).OK() {
		t.Fatalf("system should be clean before the malicious announcement")
	}
	// R1 announces R3's prefix; R2's missing filter accepts it.
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
	c.InjectUpdate("R1", "R2", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{victim}})
	c.Converge()
	if (checker.OriginValidity{Ownership: own}).Check(c).OK() {
		t.Fatalf("hijacked announcement through the unfiltered session not detected")
	}
}

func TestDisputeWheelCausesOscillationUnderChurn(t *testing.T) {
	// Ring of three routers peering with each other plus an origin attached
	// to all of them.
	topo := topology.Ring(3)
	origin := topo.Nodes[0] // R1 will also own the contested prefix
	contested := origin.Prefixes[0]
	wheel := DisputeWheel{Routers: []string{"R1", "R2", "R3"}, Prefix: contested}
	if wheel.Class() != checker.ClassPolicyConflict {
		t.Errorf("wrong class")
	}
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1, ConfigOverride: ApplyConfigFaults(wheel), MaxEvents: 3000})
	c.Converge()
	// Inject churn: withdraw and re-announce the contested prefix a few
	// times, as DiCE's exploration would.
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
	for i := 0; i < 3; i++ {
		c.InjectUpdate("R1", "R2", &bgp.Update{Withdrawn: []bgp.Prefix{contested}})
		c.InjectUpdate("R1", "R2", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{contested}})
	}
	c.Converge()
	res := checker.Convergence{MaxChangesPerPrefix: 4}.Check(c)
	if res.OK() {
		t.Skipf("dispute wheel did not oscillate beyond threshold in this run")
	}
	for _, v := range res.Violations {
		if v.Class != checker.ClassPolicyConflict {
			t.Errorf("oscillation should be a policy conflict")
		}
	}
}

func TestHandlerBugsCrashOnTriggeringInput(t *testing.T) {
	trigger := bgp.NewCommunity(65001, 666)
	bugs := []HandlerBug{
		CommunityCrash("R2", trigger),
		LongPathCrash("R2", 4),
		MEDZeroCrash("R2"),
	}
	for _, bug := range bugs {
		if bug.Class() != checker.ClassProgrammingError || bug.Description() == "" || bug.Target() != "R2" {
			t.Errorf("%s: metadata broken", bug.Name())
		}
	}

	topo := topology.Line(2)
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	InstallCodeFaults(c.Routers, bugs[0])
	c.Converge()
	if crashed, _ := c.Router("R2").Panicked(); crashed {
		t.Fatalf("bug must stay latent until the triggering input arrives")
	}
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
	attrs.AddCommunity(trigger)
	c.InjectUpdate("R1", "R2", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.0.0.0/8")}})
	c.Converge()
	if crashed, _ := c.Router("R2").Panicked(); !crashed {
		t.Fatalf("triggering input did not crash the buggy handler")
	}
	if (checker.NodeHealth{}).Check(c).OK() {
		t.Errorf("crash not visible to the node-health checker")
	}
}

func TestDroppedWithdrawalsLeavesStaleRoute(t *testing.T) {
	topo := topology.Line(3)
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	InstallCodeFaults(c.Routers, DroppedWithdrawals("R2"))
	c.Converge()
	victim := topo.Nodes[0].Prefixes[0]
	if c.Router("R2").LocRIB().Best(victim) == nil {
		t.Fatalf("precondition: R2 knows the prefix")
	}
	// A combined announce+withdraw message loses its withdrawal at R2.
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
	u := &bgp.Update{
		Withdrawn: []bgp.Prefix{victim},
		Attrs:     attrs,
		NLRI:      []bgp.Prefix{bgp.MustParsePrefix("99.0.0.0/8")},
	}
	c.InjectUpdate("R1", "R2", u)
	c.Converge()
	if c.Router("R2").LocRIB().Best(victim) == nil {
		t.Fatalf("the buggy handler should have kept the stale route")
	}
	// A correct router (R3 has no hook) processes the same message properly.
	c2 := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	c2.Converge()
	c2.InjectUpdate("R1", "R2", u)
	c2.Converge()
	if c2.Router("R2").LocRIB().Best(victim) != nil {
		t.Errorf("correct handler should have withdrawn the route")
	}
}

func TestMEDZeroCrashTrigger(t *testing.T) {
	topo := topology.Line(2)
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	InstallCodeFaults(c.Routers, MEDZeroCrash("R2"))
	c.Converge()
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
	attrs.SetMED(0)
	c.InjectUpdate("R1", "R2", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("88.0.0.0/8")}})
	c.Converge()
	if crashed, reason := c.Router("R2").Panicked(); !crashed || reason == "" {
		t.Errorf("MED==0 should crash the buggy handler")
	}
}

func TestApplyConfigFaultsOnlyTouchesTargets(t *testing.T) {
	topo := topology.Line(2)
	fault := MisOrigination{Router: "R1", Prefix: bgp.MustParsePrefix("203.0.113.0/24")}
	override := ApplyConfigFaults(fault)
	cfg1, _ := cluster.ConfigFor(topo, "R1", cluster.Options{})
	cfg2, _ := cluster.ConfigFor(topo, "R2", cluster.Options{})
	override(cfg1)
	override(cfg2)
	if len(cfg1.Networks) != 2 {
		t.Errorf("fault not applied to target")
	}
	if len(cfg2.Networks) != 1 {
		t.Errorf("fault leaked to non-target")
	}
	var _ ConfigFault = fault
	var _ ConfigFault = MissingImportFilter{}
	var _ ConfigFault = DisputeWheel{}
	var _ CodeFault = HandlerBug{}
	_ = bird.Config{}
}
