package faults

import (
	"reflect"
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/topology"
)

// TestCatalogNamesUniqueAndStable pins the registry contract the live
// scheduler depends on: every registered fault and scenario has a unique
// name, a known class, and both are stable across calls (persisted scheduler
// weights and dedupe caches key on them).
func TestCatalogNamesUniqueAndStable(t *testing.T) {
	first := Catalog()
	if len(first) == 0 {
		t.Fatal("empty catalog")
	}
	validClasses := map[checker.FaultClass]bool{
		checker.ClassUnknown:          true, // unbiased scenarios only
		checker.ClassOperatorMistake:  true,
		checker.ClassPolicyConflict:   true,
		checker.ClassProgrammingError: true,
	}
	seen := make(map[string]checker.FaultClass)
	for _, f := range first {
		name := f.Name()
		if name == "" {
			t.Fatalf("%T has an empty name", f)
		}
		if _, dup := seen[name]; dup {
			t.Fatalf("duplicate registered name %q", name)
		}
		if !validClasses[f.Class()] {
			t.Fatalf("%s: unregistered class %v", name, f.Class())
		}
		seen[name] = f.Class()
	}
	// Stability: a second catalog reports identical name/class pairs.
	second := Catalog()
	if len(second) != len(first) {
		t.Fatalf("catalog size changed between calls: %d vs %d", len(first), len(second))
	}
	for i, f := range second {
		if f.Name() != first[i].Name() || f.Class() != first[i].Class() {
			t.Fatalf("catalog entry %d unstable: %s/%v vs %s/%v",
				i, first[i].Name(), first[i].Class(), f.Name(), f.Class())
		}
	}
}

// permutations returns every ordering of the index set [0, n).
func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range permutations(n - 1) {
		for pos := 0; pos <= len(sub); pos++ {
			perm := make([]int, 0, n)
			perm = append(perm, sub[:pos]...)
			perm = append(perm, n-1)
			perm = append(perm, sub[pos:]...)
			out = append(out, perm)
		}
	}
	return out
}

// TestApplyConfigFaultsOrderIndependent drives every config-fault type in
// the registry through ApplyConfigFaults in all orders. Faults that target
// disjoint routers — and faults on the same router that rewrite disjoint
// pieces of its configuration — must compose to the identical configuration
// regardless of order. (Two faults rewriting the same neighbor's import
// policy genuinely conflict; composing those is an operator error the tables
// deliberately avoid, as the demo scenarios do.)
func TestApplyConfigFaultsOrderIndependent(t *testing.T) {
	topo := topology.Ring(5)
	cases := []struct {
		name   string
		faults []ConfigFault
	}{
		{
			name: "disjoint-routers",
			faults: []ConfigFault{
				MisOrigination{Router: "R1", Prefix: bgp.MustParsePrefix("203.0.113.0/24")},
				MissingImportFilter{Router: "R2", Peer: "R1"},
				DisputeWheel{Routers: []string{"R3", "R4", "R5"}, Prefix: topo.Nodes[0].Prefixes[0]},
			},
		},
		{
			name: "same-router-disjoint-fields",
			faults: []ConfigFault{
				MisOrigination{Router: "R1", Prefix: bgp.MustParsePrefix("198.51.100.0/24")},
				MisOrigination{Router: "R1", Prefix: bgp.MustParsePrefix("203.0.113.0/24")},
				MissingImportFilter{Router: "R1", Peer: "R2"},
			},
		},
		{
			name: "every-registered-config-fault",
			faults: func() []ConfigFault {
				// One concrete instance per registered ConfigFault type, on
				// disjoint routers.
				var out []ConfigFault
				for _, f := range Catalog() {
					switch f.(type) {
					case MisOrigination:
						out = append(out, MisOrigination{Router: "R1", Prefix: bgp.MustParsePrefix("203.0.113.0/24")})
					case MissingImportFilter:
						out = append(out, MissingImportFilter{Router: "R2", Peer: "R3"})
					case DisputeWheel:
						out = append(out, DisputeWheel{Routers: []string{"R3", "R4", "R5"}, Prefix: topo.Nodes[0].Prefixes[0]})
					}
				}
				return out
			}(),
		},
	}

	baseConfig := func(name string) *node.Config {
		tn := topo.Node(name)
		cfg := &node.Config{Name: tn.Name, AS: tn.AS, RouterID: tn.RouterID,
			Networks: append([]bgp.Prefix(nil), tn.Prefixes...)}
		for _, nb := range topo.NeighborsOf(name) {
			peer := topo.Node(nb)
			cfg.Neighbors = append(cfg.Neighbors, node.NeighborConfig{Name: peer.Name, AS: peer.AS, Import: "ALL", Export: "ALL"})
		}
		return cfg
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.faults) < 2 {
				t.Fatalf("composition case needs at least two faults, got %d", len(tc.faults))
			}
			// Reference: apply in declaration order.
			reference := make(map[string]*node.Config)
			for _, name := range topo.NodeNames() {
				cfg := baseConfig(name)
				ApplyConfigFaults(tc.faults...)(cfg)
				reference[name] = cfg
			}
			// MisOrigination appends: two instances on one router must both
			// land regardless of order, so compare as sets via DeepEqual of
			// the final configs only (below); the permutation loop is the
			// actual assertion.
			for _, perm := range permutations(len(tc.faults)) {
				ordered := make([]ConfigFault, len(perm))
				for i, idx := range perm {
					ordered[i] = tc.faults[idx]
				}
				for _, name := range topo.NodeNames() {
					cfg := baseConfig(name)
					ApplyConfigFaults(ordered...)(cfg)
					if !configsEquivalent(reference[name], cfg) {
						t.Fatalf("order %v: router %s config diverged\nref:  %+v\ngot:  %+v",
							perm, name, reference[name], cfg)
					}
				}
			}
		})
	}
}

// configsEquivalent compares configurations up to ordering of appended
// networks (the only order-sensitive field a commuting fault set touches).
func configsEquivalent(a, b *node.Config) bool {
	an := append([]bgp.Prefix(nil), a.Networks...)
	bn := append([]bgp.Prefix(nil), b.Networks...)
	bgp.SortPrefixes(an)
	bgp.SortPrefixes(bn)
	if !reflect.DeepEqual(an, bn) {
		return false
	}
	ac, bc := *a, *b
	ac.Networks, bc.Networks = nil, nil
	return reflect.DeepEqual(&ac, &bc)
}

// fakeTarget records scenario injections for assertion.
type fakeTarget struct {
	updates []*bgp.Update
	from    []string
	to      []string
}

func (f *fakeTarget) InjectUpdate(fromPeer, to string, u *bgp.Update) {
	f.from = append(f.from, fromPeer)
	f.to = append(f.to, to)
	f.updates = append(f.updates, u)
}

func TestScenarioPrimingIsDeterministic(t *testing.T) {
	pfx := bgp.MustParsePrefix("10.9.0.0/16")
	scenarios := []Scenario{
		Baseline{},
		LinkFlap{Router: "R1", Peer: "R2", PeerAS: 65002, PeerID: 2, Prefixes: []bgp.Prefix{pfx}, Flaps: 2},
		SessionReset{Router: "R1", Peer: "R2", Prefixes: []bgp.Prefix{pfx}},
		PrefixChurn{Router: "R1", Peer: "R2", PeerAS: 65002, PeerID: 2, Prefix: pfx, Rounds: 2},
		StagedPolicyUpdate{Router: "R1", Peer: "R2", PeerAS: 65002, PeerID: 2, Prefix: pfx, Stages: 3},
	}
	wantInjections := map[string]int{
		"baseline":             0,
		"link-flap":            4, // 2 flaps x (withdraw + announce)
		"session-reset":        1,
		"prefix-churn":         4, // 2 rounds x (long + short)
		"staged-policy-update": 3,
	}
	for _, sc := range scenarios {
		var a, b fakeTarget
		sc.Prime(&a)
		sc.Prime(&b)
		if want, ok := wantInjections[sc.Name()]; !ok || len(a.updates) != want {
			t.Errorf("%s: %d injections, want %d", sc.Name(), len(a.updates), want)
		}
		if !reflect.DeepEqual(a.updates, b.updates) {
			t.Errorf("%s: priming not deterministic", sc.Name())
		}
		for i := range a.from {
			if a.from[i] != "R2" || a.to[i] != "R1" {
				t.Errorf("%s: injection %d on wrong session %s->%s", sc.Name(), i, a.from[i], a.to[i])
			}
		}
		if sc.Description() == "" {
			t.Errorf("%s: empty description", sc.Name())
		}
	}
}

func TestStagedPolicyUpdatePrependsProgressively(t *testing.T) {
	pfx := bgp.MustParsePrefix("10.9.0.0/16")
	sc := StagedPolicyUpdate{Router: "R1", Peer: "R2", PeerAS: 65002, PeerID: 2, Prefix: pfx, Stages: 3}
	var tgt fakeTarget
	sc.Prime(&tgt)
	for i, u := range tgt.updates {
		if got, want := len(u.Attrs.ASPath), i+2; got != want {
			t.Fatalf("stage %d: AS path length %d, want %d", i+1, got, want)
		}
	}
}

func TestScenariosForTopology(t *testing.T) {
	topo := topology.Demo27()
	a := Scenarios(topo, 1)
	b := Scenarios(topo, 1)
	if len(a) != 5 {
		t.Fatalf("expected 5 default scenarios, got %d", len(a))
	}
	for i := range a {
		if a[i].Name() != b[i].Name() || !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("Scenarios not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Every churn scenario targets a real session of the topology.
	for _, sc := range a {
		var tgt fakeTarget
		sc.Prime(&tgt)
		for i := range tgt.from {
			found := false
			for _, n := range topo.NeighborsOf(tgt.to[i]) {
				if n == tgt.from[i] {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: injects on non-session %s->%s", sc.Name(), tgt.from[i], tgt.to[i])
			}
		}
	}
}
