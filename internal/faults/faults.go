// Package faults injects the three fault classes the paper's prototype
// detects — operator mistakes, policy conflicts, and programming errors —
// into an emulated deployment built by the cluster package.
//
// Operator mistakes and policy conflicts are configuration-level: they are
// planted through a cluster.Options.ConfigOverride before the routers are
// built (the misconfiguration exists from the start, as it would in a real
// deployment; DiCE's job is to detect its consequences by exploration).
// Programming errors are code-level: they are installed as node.UpdateHook
// values on the routers, both on the deployed cluster and on every shadow
// clone the orchestrator explores.
//
// Every fault targets the implementation-neutral node layer — the semantic
// configuration and the shared hook interface — so the same fault plants
// identically on a bird node and an frr node; heterogeneous campaigns rely
// on that to compare detections across backends.
package faults

import (
	"fmt"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/node"
)

// Fault describes one injected fault.
type Fault interface {
	// Class is the paper's fault class the injection belongs to.
	Class() checker.FaultClass
	// Name is a short identifier used in reports.
	Name() string
	// Description explains the fault for humans.
	Description() string
}

// ConfigFault is a fault planted by rewriting a router's configuration.
type ConfigFault interface {
	Fault
	// Apply mutates the configuration of the router it targets; it is a
	// no-op for other routers.
	Apply(cfg *node.Config)
}

// CodeFault is a fault planted by hooking a router's UPDATE handler.
type CodeFault interface {
	Fault
	// Target returns the router the hook is installed on.
	Target() string
	// Hook returns the faulty handler hook.
	Hook() node.UpdateHook
}

// ApplyConfigFaults returns a cluster ConfigOverride that applies every
// config-level fault.
func ApplyConfigFaults(faults ...ConfigFault) func(cfg *node.Config) {
	return func(cfg *node.Config) {
		for _, f := range faults {
			f.Apply(cfg)
		}
	}
}

//
// Operator mistakes
//

// MisOrigination makes a router originate a prefix that belongs to another
// AS — the classic fat-finger prefix hijack.
type MisOrigination struct {
	Router string
	Prefix bgp.Prefix
}

// Class implements Fault.
func (MisOrigination) Class() checker.FaultClass { return checker.ClassOperatorMistake }

// Name implements Fault.
func (f MisOrigination) Name() string { return "mis-origination" }

// Description implements Fault.
func (f MisOrigination) Description() string {
	return fmt.Sprintf("router %s originates foreign prefix %s", f.Router, f.Prefix)
}

// Apply implements ConfigFault.
func (f MisOrigination) Apply(cfg *node.Config) {
	if cfg.Name != f.Router {
		return
	}
	cfg.Networks = append(cfg.Networks, f.Prefix)
}

// MissingImportFilter removes inbound filtering on one session: the router
// accepts any prefix its neighbor announces, so a hijacked announcement from
// that neighbor propagates. The mistake is silent until an input exercises
// it, which is exactly the kind of latent fault DiCE's exploration surfaces.
type MissingImportFilter struct {
	Router string
	// Peer is the session whose import filter the operator forgot.
	Peer string
}

// Class implements Fault.
func (MissingImportFilter) Class() checker.FaultClass { return checker.ClassOperatorMistake }

// Name implements Fault.
func (f MissingImportFilter) Name() string { return "missing-import-filter" }

// Description implements Fault.
func (f MissingImportFilter) Description() string {
	return fmt.Sprintf("router %s accepts unfiltered announcements from %s", f.Router, f.Peer)
}

// Apply implements ConfigFault.
func (f MissingImportFilter) Apply(cfg *node.Config) {
	if cfg.Name != f.Router {
		return
	}
	for i := range cfg.Neighbors {
		if cfg.Neighbors[i].Name == f.Peer {
			cfg.Neighbors[i].Import = "ALL"
		}
	}
}

//
// Policy conflicts
//

// DisputeWheel plants the classic BGP dispute wheel: each router in the cycle
// prefers routes through its clockwise neighbor over its direct route to the
// destination, a combination of locally sensible policies with no stable
// global outcome (Griffin's BAD GADGET). The conflict stays latent until
// route churn — such as the withdrawals and preference flips DiCE explores —
// kicks the system into persistent oscillation.
type DisputeWheel struct {
	// Routers lists the cycle members in order; each prefers paths via the
	// next router in the list (wrapping around).
	Routers []string
	// Prefix is the contested destination prefix.
	Prefix bgp.Prefix
}

// Class implements Fault.
func (DisputeWheel) Class() checker.FaultClass { return checker.ClassPolicyConflict }

// Name implements Fault.
func (f DisputeWheel) Name() string { return "dispute-wheel" }

// Description implements Fault.
func (f DisputeWheel) Description() string {
	return fmt.Sprintf("dispute wheel over %s among %v", f.Prefix, f.Routers)
}

// Apply implements ConfigFault.
func (f DisputeWheel) Apply(cfg *node.Config) {
	idx := -1
	for i, name := range f.Routers {
		if name == cfg.Name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	preferred := f.Routers[(idx+1)%len(f.Routers)]
	// Routes for the contested prefix learned from the preferred (clockwise)
	// neighbor get a very high LOCAL_PREF; the same prefix learned from
	// anyone else gets a low one.
	polName := "DISPUTE-" + cfg.Name
	pol := &policy.Policy{
		Name:    polName,
		Default: policy.ResultAccept,
		Statements: []*policy.Statement{
			{
				Conds:   []policy.Condition{policy.MatchPrefix{Prefix: f.Prefix, Exact: true}},
				Actions: []policy.Action{policy.ActionSetLocalPref{Value: 500}, policy.ActionAccept{}},
			},
		},
	}
	lowName := "DISPUTE-LOW-" + cfg.Name
	low := &policy.Policy{
		Name:    lowName,
		Default: policy.ResultAccept,
		Statements: []*policy.Statement{
			{
				Conds:   []policy.Condition{policy.MatchPrefix{Prefix: f.Prefix, Exact: true}},
				Actions: []policy.Action{policy.ActionSetLocalPref{Value: 10}, policy.ActionAccept{}},
			},
		},
	}
	if cfg.Policies == nil {
		cfg.Policies = map[string]*policy.Policy{}
	}
	cfg.Policies[polName] = pol
	cfg.Policies[lowName] = low
	for i := range cfg.Neighbors {
		switch cfg.Neighbors[i].Name {
		case preferred:
			cfg.Neighbors[i].Import = polName
		default:
			cfg.Neighbors[i].Import = lowName
		}
	}
}

//
// Programming errors
//

// HandlerBug is a code-level fault installed on one router's UPDATE handler.
type HandlerBug struct {
	Router      string
	BugName     string
	Explanation string
	HookFn      node.UpdateHook
}

// Class implements Fault.
func (HandlerBug) Class() checker.FaultClass { return checker.ClassProgrammingError }

// Name implements Fault.
func (b HandlerBug) Name() string { return b.BugName }

// Description implements Fault.
func (b HandlerBug) Description() string {
	return fmt.Sprintf("router %s: %s", b.Router, b.Explanation)
}

// Target implements CodeFault.
func (b HandlerBug) Target() string { return b.Router }

// Hook implements CodeFault.
func (b HandlerBug) Hook() node.UpdateHook { return b.HookFn }

// CommunityCrash builds a programming error where the handler crashes when an
// UPDATE carries a specific community value — a narrow input condition of the
// kind concolic execution is good at synthesizing. The trigger comparison is
// evaluated through the router's active concolic machine so that, under
// exploration, the guard becomes a negatable branch constraint (as it would
// be in instrumented BIRD code).
func CommunityCrash(router string, trigger bgp.Community) HandlerBug {
	return HandlerBug{
		Router:      router,
		BugName:     "community-crash",
		Explanation: fmt.Sprintf("handler dereferences a nil entry when community %s is present", trigger),
		HookFn: func(r node.HookContext, from string, u *bgp.Update) error {
			m := r.ActiveMachine()
			if m != nil && u.Sym != nil {
				for _, cv := range u.Sym.Communities {
					if m.Branch("bug/community-crash", concolic.EqConst(cv, uint64(trigger))) {
						return fmt.Errorf("nil pointer dereference while processing community %s", trigger)
					}
				}
				return nil
			}
			if u.Attrs != nil && u.Attrs.HasCommunity(trigger) {
				return fmt.Errorf("nil pointer dereference while processing community %s", trigger)
			}
			return nil
		},
	}
}

// LongPathCrash builds a programming error where AS paths longer than a
// threshold overflow a fixed-size buffer in the handler.
func LongPathCrash(router string, limit int) HandlerBug {
	return HandlerBug{
		Router:      router,
		BugName:     "long-aspath-crash",
		Explanation: fmt.Sprintf("fixed-size path buffer overflows when AS_PATH exceeds %d hops", limit),
		HookFn: func(r node.HookContext, from string, u *bgp.Update) error {
			m := r.ActiveMachine()
			if m != nil && u.Sym != nil && u.Sym.ASPathLen.Width != 0 {
				over := concolic.Gt(concolic.ZExt(u.Sym.ASPathLen, 32), concolic.Const(uint64(limit), 32))
				if m.Branch("bug/long-aspath", over) {
					return fmt.Errorf("buffer overflow: AS_PATH length %d exceeds %d", u.Attrs.PathLen(), limit)
				}
				return nil
			}
			if u.Attrs != nil && u.Attrs.PathLen() > limit {
				return fmt.Errorf("buffer overflow: AS_PATH length %d exceeds %d", u.Attrs.PathLen(), limit)
			}
			return nil
		},
	}
}

// DroppedWithdrawals builds a programming error where the handler silently
// ignores withdrawals carried in messages that also announce routes — the
// router keeps forwarding to a path that no longer exists (stale routes), a
// bug that manifests as blackholes or loops elsewhere in the system.
func DroppedWithdrawals(router string) HandlerBug {
	return HandlerBug{
		Router:      router,
		BugName:     "dropped-withdrawals",
		Explanation: "withdrawals are discarded when the UPDATE also carries announcements",
		HookFn: func(r node.HookContext, from string, u *bgp.Update) error {
			if len(u.NLRI) > 0 && len(u.Withdrawn) > 0 {
				u.Withdrawn = nil // silently lose the withdrawal
			}
			return nil
		},
	}
}

// MEDZeroCrash builds a programming error where a MED of exactly zero hits a
// division-by-zero in a metric normalization step.
func MEDZeroCrash(router string) HandlerBug {
	return HandlerBug{
		Router:      router,
		BugName:     "med-zero-crash",
		Explanation: "metric normalization divides by MED and crashes when MED == 0",
		HookFn: func(r node.HookContext, from string, u *bgp.Update) error {
			m := r.ActiveMachine()
			if m != nil && u.Sym != nil && u.Sym.HasMED {
				if m.Branch("bug/med-zero", concolic.EqConst(u.Sym.MED, 0)) {
					return fmt.Errorf("integer divide by zero normalizing MED")
				}
				return nil
			}
			if u.Attrs != nil && u.Attrs.MED != nil && *u.Attrs.MED == 0 {
				return fmt.Errorf("integer divide by zero normalizing MED")
			}
			return nil
		},
	}
}

// InstallCodeFaults installs every code fault on its target router in the
// given router map. It is applied both to the deployed cluster and to each
// shadow clone before exploration.
func InstallCodeFaults(routers map[string]node.Router, faults ...CodeFault) {
	for _, f := range faults {
		if r, ok := routers[f.Target()]; ok {
			r.SetUpdateHook(f.Hook())
		}
	}
}
