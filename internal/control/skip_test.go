package control_test

import (
	"errors"
	"strings"
	"testing"
)

// TestSubprocessSkipReason covers the chaos test's skip decision: a failing
// probe must yield an explicit reason (naming CI when CI=true) and a passing
// probe must not skip — so the de-flake path is itself asserted, not just
// exercised when an environment happens to be restricted.
func TestSubprocessSkipReason(t *testing.T) {
	probeErr := errors.New("fork/exec: operation not permitted")
	fail := func() error { return probeErr }
	pass := func() error { return nil }

	r := subprocessSkipReason(true, fail)
	if !strings.Contains(r, "CI environment (CI=true)") {
		t.Errorf("CI skip reason missing CI marker: %q", r)
	}
	if !strings.Contains(r, probeErr.Error()) {
		t.Errorf("skip reason dropped the probe error: %q", r)
	}

	r = subprocessSkipReason(false, fail)
	if strings.Contains(r, "CI") {
		t.Errorf("non-CI skip reason claims CI: %q", r)
	}
	if !strings.Contains(r, probeErr.Error()) {
		t.Errorf("skip reason dropped the probe error: %q", r)
	}

	if r := subprocessSkipReason(true, pass); r != "" {
		t.Errorf("passing probe produced skip reason %q", r)
	}
	if r := subprocessSkipReason(false, pass); r != "" {
		t.Errorf("passing probe produced skip reason %q", r)
	}
}

// TestProbeSubprocess: in any environment where the suite itself runs, the
// probe must terminate (either outcome) without panicking; where it succeeds,
// the chaos test is expected to run rather than skip.
func TestProbeSubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec probe skipped in -short mode")
	}
	if err := probeSubprocess(); err != nil {
		t.Logf("probe failed here (chaos test would skip): %v", err)
	}
}
