package control

import (
	"bytes"
	"testing"
)

// FuzzShardMessageDecode feeds arbitrary bytes to the frame decoder: every
// input must either decode into a known message type or return an error —
// never panic and never allocate unboundedly. The seed corpus covers every
// valid message plus classic corruptions (bit flips in each header field,
// truncations), and func-level seeds re-encode whatever decodes to confirm
// decode∘encode is the identity on the valid subset.
func FuzzShardMessageDecode(f *testing.F) {
	for _, msg := range sampleMessages() {
		var buf bytes.Buffer
		if _, err := EncodeFrame(&buf, msg); err != nil {
			f.Fatal(err)
		}
		frame := buf.Bytes()
		f.Add(frame)
		for i := 0; i < frameHeaderLen && i < len(frame); i++ {
			flipped := append([]byte(nil), frame...)
			flipped[i] ^= 0x41
			f.Add(flipped)
		}
		f.Add(frame[:len(frame)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{'D', 'W', WireVersion, byte(MsgHello), 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeFrame(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, and it did
		}
		if msg == nil {
			t.Fatal("nil message with nil error")
		}
		// What decodes must re-encode: the valid subset round-trips.
		var buf bytes.Buffer
		if _, err := EncodeFrame(&buf, msg); err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", msg, err)
		}
	})
}
