package control_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/agent"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/control"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/node/procdriver"
	"github.com/dice-project/dice/internal/topology"
)

// hijackedProcFixture is hijackedFixture with every router re-tagged onto
// impl — "obgpd" for the in-process reference, "proc:obgpd" for the
// subprocess-backed deployment.
func hijackedProcFixture(t *testing.T, n int, impl string) (*topology.Topology, *cluster.Cluster, cluster.Options) {
	t.Helper()
	topo := topology.Line(n)
	topo.SetImpl(impl, topo.NodeNames()...)
	victim := topo.Nodes[0].Prefixes[0]
	last := topo.Nodes[n-1].Name
	opts := cluster.Options{Seed: 1, ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: last, Prefix: victim})}
	c := cluster.MustBuild(topo, opts)
	c.Converge()
	return topo, c, opts
}

// runProcCampaign runs the standard seeded campaign over the impl-tagged
// fixture, optionally through a Controller with loopback-TCP agents.
func runProcCampaign(t *testing.T, impl string, agents int) *dice.CampaignResult {
	t.Helper()
	topo, live, copts := hijackedProcFixture(t, 4, impl)
	opts := baseOptions(topo, copts, false)

	if agents > 0 {
		ctrl := control.NewController(control.Config{
			Campaign:      "proc-itest",
			MinAgents:     agents,
			UnitsPerShard: 1,
			LeaseTTL:      5 * time.Second,
		})
		srv := httptest.NewServer(control.NewHandler(ctrl))
		t.Cleanup(srv.Close)

		agentCtx, cancelAgents := context.WithCancel(context.Background())
		t.Cleanup(cancelAgents)
		var wg sync.WaitGroup
		agentErrs := make([]error, agents)
		for i := 0; i < agents; i++ {
			ag := agent.New(agent.Config{
				Name:         fmt.Sprintf("proc-agent-%d", i),
				ControlURL:   srv.URL,
				Client:       srv.Client(),
				PollInterval: 2 * time.Millisecond,
			})
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				agentErrs[i] = ag.Run(agentCtx)
			}(i)
		}
		defer func() {
			wg.Wait()
			for i, e := range agentErrs {
				if e != nil {
					t.Errorf("agent %d exited with error: %v", i, e)
				}
			}
		}()
		opts = append(opts, dice.WithRemoteExecution(ctrl))
	}

	res, err := dice.NewCampaign(live, topo, opts...).Run(context.Background())
	if err != nil {
		t.Fatalf("%s campaign (%d agents): %v", impl, agents, err)
	}
	return res
}

// TestDistributedProcBackendMatchesInProcess closes the process-isolation
// equivalence over the real distributed path: a campaign over proc:obgpd
// subprocess nodes must yield detection fingerprints identical to in-process
// obgpd, both run directly and run through a Controller sharding units to
// agents over loopback TCP.
func TestDistributedProcBackendMatchesInProcess(t *testing.T) {
	if reason := subprocessSkipReason(false, procdriver.SpawnCheck); reason != "" {
		t.Skip(reason)
	}
	t.Cleanup(func() {
		procdriver.KillAll()
		if n := procdriver.LiveChildren(); n != 0 {
			t.Errorf("%d backend subprocesses leaked", n)
		}
	})

	reference := runProcCampaign(t, "obgpd", 0)
	if len(reference.Detections) == 0 {
		t.Fatal("in-process obgpd campaign found nothing; equivalence is vacuous")
	}
	want := detectionFingerprint(reference.Detections)

	direct := runProcCampaign(t, "proc:obgpd", 0)
	if got := detectionFingerprint(direct.Detections); got != want {
		t.Errorf("proc:obgpd detections differ from in-process obgpd:\n  proc       %s\n  in-process %s", got, want)
	}

	distributed := runProcCampaign(t, "proc:obgpd", 2)
	if got := detectionFingerprint(distributed.Detections); got != want {
		t.Errorf("distributed proc:obgpd detections differ from in-process obgpd:\n  distributed %s\n  in-process  %s", got, want)
	}
	if distributed.InputsExplored != reference.InputsExplored {
		t.Errorf("inputs explored differ: distributed=%d in-process=%d", distributed.InputsExplored, reference.InputsExplored)
	}
	if distributed.Remote == nil || distributed.Remote.Agents != 2 {
		t.Errorf("Remote stats = %+v, want 2 agents", distributed.Remote)
	}
}
