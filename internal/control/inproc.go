package control

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// InProcessClient returns an *http.Client whose transport dispatches
// requests straight into the handler, no socket involved. The distributed
// runtime's in-process transport mode runs control and agents in one process
// through the exact same frames and endpoints as loopback TCP — only the
// byte carrier differs — which is what lets tests prove the wire protocol
// itself preserves campaign results.
func InProcessClient(h http.Handler) *http.Client {
	return &http.Client{Transport: inprocTransport{h: h}}
}

type inprocTransport struct {
	h http.Handler
}

func (t inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &responseRecorder{code: http.StatusOK, header: make(http.Header)}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.code, http.StatusText(rec.code)),
		StatusCode:    rec.code,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(&rec.body),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// responseRecorder is a minimal in-memory http.ResponseWriter.
type responseRecorder struct {
	code        int
	header      http.Header
	body        bytes.Buffer
	wroteHeader bool
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.code = code
		r.wroteHeader = true
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	return r.body.Write(p)
}
