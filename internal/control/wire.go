// Package control is the control plane of distributed DiCE campaign
// execution: it holds the campaign's topology and baseline snapshot,
// partitions the plan into shards, leases shards to agents that dial in
// outbound over HTTP, reassigns the shards of agents that stop heartbeating,
// and aggregates streamed shard results into the exact merge the in-process
// campaign performs — so a campaign sharded across N agents provably equals
// the same campaign run in one process.
//
// The federation privacy boundary becomes the wire protocol here: shard
// results carry checker.Summary envelopes and per-unit result records, never
// node state, and the bytes are accounted with the same Summary.Size()
// convention the in-process bus charges.
package control

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/topology"
)

// Wire framing: a fixed header of magic "DW", a version byte, a message-type
// byte and a big-endian uint32 payload length, followed by the gob-encoded
// payload. The version byte is checked before anything is decoded, so a
// future incompatible revision fails loudly instead of misparsing.
const (
	wireMagic0 = 'D'
	wireMagic1 = 'W'
	// WireVersion is the protocol revision; bump on incompatible change.
	// Version 2: baseline snapshots ship in the deterministic codec encoding
	// (not gob) and Baseline carries the snapshot's content hash; node
	// patches inside Lease deltas carry per-node content hashes.
	// Version 3: unit results cross the wire as RemoteResult projections —
	// detections carry checker.ViolationDigest (never a Violation's free-form
	// Detail) and snapshot provenance is recomputed control-side, so the
	// result path discloses exactly what a federation summary would. A peer
	// speaking an older version would ship or expect full dice.Result values,
	// so the mismatch is rejected at the frame header, before any payload is
	// decoded.
	WireVersion = 3
	// maxFramePayload caps a frame's payload so a corrupt or hostile length
	// field cannot make the decoder allocate unboundedly.
	maxFramePayload = 64 << 20
	frameHeaderLen  = 8
)

// MsgType tags a frame's payload type.
type MsgType byte

const (
	MsgHello MsgType = iota + 1
	MsgWelcome
	MsgBaselineRequest
	MsgBaseline
	MsgLeaseRequest
	MsgLease
	MsgNoWork
	MsgHeartbeat
	MsgHeartbeatAck
	MsgShardResult
	MsgResultAck
	msgTypeEnd
)

// Hello registers an agent: its self-chosen name, the router backends its
// binary supports and the worker parallelism it offers.
type Hello struct {
	Agent    string
	Backends []string
	Workers  int
}

// Welcome acknowledges registration with the control-assigned agent ID and
// the cadence contract: heartbeat at least every HeartbeatEvery or leased
// shards are reassigned after LeaseTTL.
type Welcome struct {
	AgentID        string
	Campaign       string
	HeartbeatEvery time.Duration
	LeaseTTL       time.Duration
}

// BaselineRequest asks for the campaign baseline; agents send it once after
// registering.
type BaselineRequest struct {
	AgentID string
}

// Baseline is the one-time shipment each agent fetches before leasing: the
// topology, the baseline snapshot in its deterministic codec encoding
// (checkpoint.Encode form) and the campaign's wire-shippable spec.
// Subsequent shard leases ship only deltas against this snapshot.
type Baseline struct {
	Campaign string
	Topo     topology.Topology
	Snapshot []byte
	// SnapshotSHA256 is the content hash of Snapshot. The agent recomputes
	// it after fetching, so a corrupted or mismatched baseline fails at the
	// fetch instead of poisoning every delta applied on top of it.
	SnapshotSHA256 [32]byte
	Spec           dice.RemoteSpec
}

// LeaseRequest asks for the next available shard.
type LeaseRequest struct {
	AgentID string
}

// Lease grants a shard: the units with their plan indices, the lease attempt
// (stale results from a superseded attempt are rejected), and the snapshot
// delta against the agent's baseline. An empty delta means the shard explores
// the baseline cut itself.
type Lease struct {
	Shard       int
	Attempt     int
	UnitIndexes []int
	Units       []dice.Unit
	Delta       checkpoint.SnapshotDelta
}

// NoWork answers a lease request when nothing is assignable. Done reports
// that the campaign has finished and the agent may exit its poll loop.
type NoWork struct {
	Done bool
}

// Heartbeat renews the sender's leases.
type Heartbeat struct {
	AgentID string
}

// HeartbeatAck answers a heartbeat; Cancel tells the agent to abandon its
// current shards (campaign cancelled).
type HeartbeatAck struct {
	Cancel bool
}

// RemoteDetection is one detection's wire form: the violation reduced to its
// privacy-filtered checker.ViolationDigest plus the reproduction coordinates
// (which explored input triggered it, and when). A Violation's free-form
// Detail — the reporting domain's local evidence — never crosses the control
// wire; the digest's Class stands in for the detection's, which the campaign
// always sets from the violation anyway.
type RemoteDetection struct {
	Digest     checker.ViolationDigest
	InputIndex int
	Input      *concolic.Input
	Elapsed    time.Duration
}

// RemoteResult is one unit's dice.Result projected onto the wire: the
// exploration counters and digested detections, without the snapshot
// provenance fields (SnapshotDuration/Bytes/Nodes, InFlightMessages,
// FullStateBytes) — the control plane owns the snapshot and restamps those
// from its own stats when it reassembles the result.
type RemoteResult struct {
	Explorer       string
	FromPeer       string
	Domain         string
	InputsExplored int
	Detections     []RemoteDetection
	DisclosedBytes int
	Duration       time.Duration
	ExplorerStats  concolic.Stats
}

// RemoteResultOf projects a unit result onto its wire form — the agent-side
// half of the privacy boundary, where every detection's Violation collapses
// to checker.DigestOf. A nil result projects to nil.
func RemoteResultOf(r *dice.Result) *RemoteResult {
	if r == nil {
		return nil
	}
	out := &RemoteResult{
		Explorer:       r.Explorer,
		FromPeer:       r.FromPeer,
		Domain:         r.Domain,
		InputsExplored: r.InputsExplored,
		DisclosedBytes: r.DisclosedBytes,
		Duration:       r.Duration,
		ExplorerStats:  r.ExplorerStats,
	}
	for _, d := range r.Detections {
		out.Detections = append(out.Detections, RemoteDetection{
			Digest:     checker.DigestOf(d.Violation),
			InputIndex: d.InputIndex,
			Input:      d.Input,
			Elapsed:    d.Elapsed,
		})
	}
	return out
}

// Result reassembles the control-side dice.Result: violations are rebuilt
// from their digests with a Detail marking remote provenance, and the
// snapshot fields are left zero for the caller to restamp. A nil receiver
// reassembles to nil.
func (r *RemoteResult) Result() *dice.Result {
	if r == nil {
		return nil
	}
	out := &dice.Result{
		Explorer:       r.Explorer,
		FromPeer:       r.FromPeer,
		Domain:         r.Domain,
		InputsExplored: r.InputsExplored,
		DisclosedBytes: r.DisclosedBytes,
		Duration:       r.Duration,
		ExplorerStats:  r.ExplorerStats,
	}
	for _, d := range r.Detections {
		out.Detections = append(out.Detections, dice.Detection{
			Violation:  d.Digest.ViolationVia("remote agent"),
			Class:      d.Digest.Class,
			InputIndex: d.InputIndex,
			Input:      d.Input,
			Elapsed:    d.Elapsed,
		})
	}
	return out
}

// UnitResult is one unit's outcome inside a shard result, addressed by plan
// index. Err carries a failed unit's error text (Result nil in that case).
type UnitResult struct {
	Index  int
	Result *RemoteResult
	Err    string
}

// ShardResult reports a completed shard: per-unit outcomes plus the
// federation envelopes the agent's local bus published while exploring
// (checker.Summary payloads only — this is everything that crosses the wire
// back and the basis of the disclosure accounting). It crosses the federation
// privacy boundary, so dice-vet's privleak analyzer proves nothing beyond
// summary-grade content is reachable from it.
//
//dice:boundary
type ShardResult struct {
	AgentID   string
	Shard     int
	Attempt   int
	Units     []UnitResult
	Envelopes []federation.Envelope
}

// ResultAck acknowledges a shard result. Accepted is false when the result
// belonged to a superseded lease attempt and was discarded.
type ResultAck struct {
	Accepted bool
}

// msgTypeOf maps a payload value to its frame tag.
func msgTypeOf(msg any) (MsgType, error) {
	switch msg.(type) {
	case *Hello:
		return MsgHello, nil
	case *Welcome:
		return MsgWelcome, nil
	case *BaselineRequest:
		return MsgBaselineRequest, nil
	case *Baseline:
		return MsgBaseline, nil
	case *LeaseRequest:
		return MsgLeaseRequest, nil
	case *Lease:
		return MsgLease, nil
	case *NoWork:
		return MsgNoWork, nil
	case *Heartbeat:
		return MsgHeartbeat, nil
	case *HeartbeatAck:
		return MsgHeartbeatAck, nil
	case *ShardResult:
		return MsgShardResult, nil
	case *ResultAck:
		return MsgResultAck, nil
	default:
		return 0, fmt.Errorf("control: cannot frame %T", msg)
	}
}

// newMessage returns a fresh payload value for a frame tag.
func newMessage(t MsgType) (any, error) {
	switch t {
	case MsgHello:
		return &Hello{}, nil
	case MsgWelcome:
		return &Welcome{}, nil
	case MsgBaselineRequest:
		return &BaselineRequest{}, nil
	case MsgBaseline:
		return &Baseline{}, nil
	case MsgLeaseRequest:
		return &LeaseRequest{}, nil
	case MsgLease:
		return &Lease{}, nil
	case MsgNoWork:
		return &NoWork{}, nil
	case MsgHeartbeat:
		return &Heartbeat{}, nil
	case MsgHeartbeatAck:
		return &HeartbeatAck{}, nil
	case MsgShardResult:
		return &ShardResult{}, nil
	case MsgResultAck:
		return &ResultAck{}, nil
	default:
		return nil, fmt.Errorf("control: unknown message type %d", t)
	}
}

// EncodeFrame writes msg as one versioned frame and returns the bytes
// written (header plus payload) — the number the wire accounting records.
func EncodeFrame(w io.Writer, msg any) (int, error) {
	t, err := msgTypeOf(msg)
	if err != nil {
		return 0, err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(msg); err != nil {
		return 0, fmt.Errorf("control: encode %T: %w", msg, err)
	}
	if payload.Len() > maxFramePayload {
		return 0, fmt.Errorf("control: %T payload %d exceeds frame cap %d", msg, payload.Len(), maxFramePayload)
	}
	hdr := [frameHeaderLen]byte{wireMagic0, wireMagic1, WireVersion, byte(t)}
	binary.BigEndian.PutUint32(hdr[4:], uint32(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(payload.Bytes())
	return frameHeaderLen + n, err
}

// DecodeFrame reads one frame and returns its decoded payload. Malformed
// input — bad magic, unsupported version, unknown type, oversized or
// truncated payload, corrupt gob — returns an error; it never panics, since
// frames arrive from the network.
func DecodeFrame(r io.Reader) (msg any, err error) {
	defer func() {
		// gob decodes attacker-controlled bytes; a decoder panic must not
		// take the process down.
		if rec := recover(); rec != nil {
			msg, err = nil, fmt.Errorf("control: frame decode panicked: %v", rec)
		}
	}()
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("control: frame header: %w", err)
	}
	if hdr[0] != wireMagic0 || hdr[1] != wireMagic1 {
		return nil, errors.New("control: bad frame magic")
	}
	if hdr[2] != WireVersion {
		return nil, fmt.Errorf("control: unsupported wire version %d (have %d)", hdr[2], WireVersion)
	}
	t := MsgType(hdr[3])
	if t == 0 || t >= msgTypeEnd {
		return nil, fmt.Errorf("control: unknown message type %d", t)
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > maxFramePayload {
		return nil, fmt.Errorf("control: frame payload %d exceeds cap %d", n, maxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("control: frame payload: %w", err)
	}
	out, err := newMessage(t)
	if err != nil {
		return nil, err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return nil, fmt.Errorf("control: decode %T: %w", out, err)
	}
	return out, nil
}

// FrameSize returns the encoded frame size of msg without writing it.
func FrameSize(msg any) (int, error) {
	var cw countWriter
	return EncodeFrame(&cw, msg)
}

type countWriter int

func (c *countWriter) Write(p []byte) (int, error) {
	*c += countWriter(len(p))
	return len(p), nil
}
