package control

import "github.com/dice-project/dice/internal/obs"

// RegisterMetrics registers the control plane's shard and agent series,
// reading the controller's existing stats snapshots at exposition time (a
// nil-returning callback exposes zeros).
func RegisterMetrics(reg *obs.Registry, ctrl func() *Controller) {
	remote := func(f func(c *Controller) float64) func() float64 {
		return func() float64 {
			if c := ctrl(); c != nil {
				return f(c)
			}
			return 0
		}
	}
	reg.GaugeFunc("dice_control_agents", "Agents registered with the controller.",
		remote(func(c *Controller) float64 { return float64(c.RemoteStats().Agents) }))
	reg.GaugeFunc("dice_control_shards", "Shards the current campaign was partitioned into.",
		remote(func(c *Controller) float64 { return float64(c.RemoteStats().Shards) }))
	reg.CounterFunc("dice_control_shards_reassigned_total", "Shard leases re-issued after an agent was lost.",
		remote(func(c *Controller) float64 { return float64(c.RemoteStats().Reassigned) }))
	reg.CounterFunc("dice_control_shards_abandoned_total", "Shards failed after exhausting their lease attempts.",
		remote(func(c *Controller) float64 { return float64(c.RemoteStats().Abandoned) }))
	reg.CounterFunc("dice_control_baseline_bytes_total", "Encoded baseline bytes fetched by agents.",
		remote(func(c *Controller) float64 { return float64(c.RemoteStats().BaselineBytes) }))
	reg.CounterFunc("dice_control_shard_bytes_total", "Shard leases' wire size.",
		remote(func(c *Controller) float64 { return float64(c.RemoteStats().ShardBytes) }))
	reg.CounterFunc("dice_control_result_bytes_total", "Shard results' wire size.",
		remote(func(c *Controller) float64 { return float64(c.RemoteStats().ResultBytes) }))
	reg.GaugeVecFunc("dice_control_agent_heartbeat_age_seconds", "Seconds since each agent was last heard from.", "agent",
		func() map[string]float64 {
			c := ctrl()
			if c == nil {
				return nil
			}
			out := make(map[string]float64)
			for id, age := range c.AgentHeartbeatAges() {
				out[id] = age.Seconds()
			}
			return out
		})
	reg.GaugeVecFunc("dice_control_agent_shards_leased", "Shard leases granted per agent over the campaign.", "agent",
		func() map[string]float64 {
			c := ctrl()
			if c == nil {
				return nil
			}
			out := make(map[string]float64)
			for id, n := range c.AgentShardCounts() {
				out[id] = float64(n)
			}
			return out
		})
}
