package control

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/topology"
)

// Config parameterizes a Controller.
type Config struct {
	// Campaign names the campaign in Welcome messages and logs.
	Campaign string
	// MinAgents gates shard leasing: no shard is granted until this many
	// agents have registered (zero behaves as one). The campaign does not
	// fail below the floor — leasing just waits.
	MinAgents int
	// UnitsPerShard bounds shard size (dice.PlanShards semantics; zero or
	// negative selects 1, the cheapest unit to reassign).
	UnitsPerShard int
	// LeaseTTL is how long a shard lease lives without a heartbeat before
	// its shards are reassigned (default 10s). HeartbeatEvery is the cadence
	// told to agents (default LeaseTTL/3).
	LeaseTTL       time.Duration
	HeartbeatEvery time.Duration
	// MaxShardAttempts bounds how often one shard may be (re)leased before
	// its units are failed (default 5).
	MaxShardAttempts int
	// BaselineStore, when set, is the snapshot baseline agents fetch; shard
	// leases then ship the campaign cut as a delta against it. Nil makes the
	// campaign cut itself the baseline (empty per-shard deltas).
	BaselineStore *checkpoint.Store
	// Clock injects time for tests; nil selects time.Now.
	Clock func() time.Time
	// Logf, when set, receives control-plane progress lines.
	Logf func(format string, args ...any)
}

const (
	shardPending = iota
	shardLeased
	shardDone
)

type shardState struct {
	shard   dice.Shard
	state   int
	agent   string
	attempt int
	expiry  time.Time
}

type agentState struct {
	id       string
	name     string
	backends []string
	workers  int
	// shards the agent currently holds, renewed as one by its heartbeat.
	shards map[int]bool
	// lastSeen is the controller-clock time of the agent's last request of
	// any kind — what AgentHeartbeatAges measures staleness against.
	lastSeen time.Time
}

// campaignRun is the controller's view of one ExecuteUnits invocation.
type campaignRun struct {
	ctx       context.Context
	topo      *topology.Topology
	spec      dice.RemoteSpec
	sink      dice.RemoteSink
	baseline  Baseline
	baseStore *checkpoint.Store
	delta     checkpoint.SnapshotDelta
	shards    []*shardState
	remaining int
	finished  chan struct{}
	// cancelled (set under the controller lock) stops new results from being
	// accepted; inflight counts sink callbacks still running, so
	// ExecuteUnits never returns while a callback is mid-flight.
	cancelled bool
	inflight  sync.WaitGroup
}

// Controller is the distributed campaign scheduler. It serves agents through
// NewHandler's HTTP endpoints (agents always dial outbound) and plugs into a
// dice.Campaign as its RemoteExecutor: Run hands it the planned units, the
// controller shards and leases them out, and completed shard results stream
// back into the campaign's own merge machinery.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	agents   map[string]*agentState
	agentSeq int
	run      *campaignRun
	// done marks that a campaign ran to completion (or was cancelled) and no
	// new one has started — agents polling for leases are told to exit.
	done  bool
	stats dice.RemoteStats
	// agentsEverLeased names agents that held at least one lease — reported
	// by AgentShardCounts for smoke assertions.
	shardsByAgent map[string]int
	// drained names agents whose lease poll has already been answered with
	// Done — they are exiting through the protocol, so the control process
	// can close its listener without cutting them off mid-poll.
	drained map[string]bool
}

// NewController returns a controller ready to serve agents; start the
// campaign by passing it to dice.WithRemoteExecution.
func NewController(cfg Config) *Controller {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.LeaseTTL / 3
	}
	if cfg.MaxShardAttempts <= 0 {
		cfg.MaxShardAttempts = 5
	}
	if cfg.MinAgents <= 0 {
		cfg.MinAgents = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Controller{
		cfg:           cfg,
		agents:        make(map[string]*agentState),
		shardsByAgent: make(map[string]int),
		drained:       make(map[string]bool),
	}
}

func (c *Controller) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Register admits an agent and returns its Welcome.
func (c *Controller) Register(h *Hello) *Welcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.agentSeq++
	id := fmt.Sprintf("agent-%d", c.agentSeq)
	c.agents[id] = &agentState{
		id:       id,
		name:     h.Agent,
		backends: append([]string(nil), h.Backends...),
		workers:  h.Workers,
		shards:   make(map[int]bool),
		lastSeen: c.cfg.Clock(),
	}
	c.stats.Agents++
	c.logf("control: registered %s (%q, %d workers)", id, h.Agent, h.Workers)
	return &Welcome{
		AgentID:        id,
		Campaign:       c.cfg.Campaign,
		HeartbeatEvery: c.cfg.HeartbeatEvery,
		LeaseTTL:       c.cfg.LeaseTTL,
	}
}

// ErrNoCampaign answers baseline requests that arrive before ExecuteUnits
// has started a campaign; agents retry.
var ErrNoCampaign = errors.New("control: no campaign running")

// BaselinePayload returns the campaign baseline for an agent's one-time
// fetch, accounting its wire size.
func (c *Controller) BaselinePayload(req *BaselineRequest) (*Baseline, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.run == nil {
		return nil, ErrNoCampaign
	}
	ag := c.agents[req.AgentID]
	if ag == nil {
		return nil, fmt.Errorf("control: unknown agent %q", req.AgentID)
	}
	ag.lastSeen = c.cfg.Clock()
	n, err := FrameSize(&c.run.baseline)
	if err != nil {
		return nil, err
	}
	c.stats.BaselineBytes += n
	return &c.run.baseline, nil
}

// LeaseNext grants the next pending shard to the agent, or NoWork when
// nothing is assignable (campaign not started, agent floor not met, all
// shards leased or done). The returned message is *Lease or *NoWork.
func (c *Controller) LeaseNext(req *LeaseRequest) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	run := c.run
	if run == nil {
		if c.done {
			c.drained[req.AgentID] = true
		}
		return &NoWork{Done: c.done}, nil
	}
	if run.remaining == 0 || run.ctx.Err() != nil {
		c.drained[req.AgentID] = true
		return &NoWork{Done: true}, nil
	}
	ag := c.agents[req.AgentID]
	if ag == nil {
		return nil, fmt.Errorf("control: unknown agent %q", req.AgentID)
	}
	ag.lastSeen = c.cfg.Clock()
	if len(c.agents) < c.cfg.MinAgents {
		return &NoWork{}, nil
	}
	for _, ss := range run.shards {
		if ss.state != shardPending {
			continue
		}
		ss.state = shardLeased
		ss.agent = req.AgentID
		ss.attempt++
		ss.expiry = c.cfg.Clock().Add(c.cfg.LeaseTTL)
		ag.shards[ss.shard.ID] = true
		c.shardsByAgent[req.AgentID]++
		lease := &Lease{
			Shard:       ss.shard.ID,
			Attempt:     ss.attempt,
			UnitIndexes: append([]int(nil), ss.shard.UnitIndexes...),
			Units:       append([]dice.Unit(nil), ss.shard.Units...),
			Delta:       run.delta,
		}
		if n, err := FrameSize(lease); err == nil {
			c.stats.ShardBytes += n
		}
		c.logf("control: leased shard %d (%d units, attempt %d) to %s",
			ss.shard.ID, len(ss.shard.Units), ss.attempt, req.AgentID)
		return lease, nil
	}
	return &NoWork{}, nil
}

// HeartbeatRenew extends every lease the agent holds.
func (c *Controller) HeartbeatRenew(hb *Heartbeat) (*HeartbeatAck, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ag := c.agents[hb.AgentID]
	if ag == nil {
		return nil, fmt.Errorf("control: unknown agent %q", hb.AgentID)
	}
	ag.lastSeen = c.cfg.Clock()
	ack := &HeartbeatAck{}
	if c.run == nil {
		// A finished campaign cancels any straggler still executing a shard.
		ack.Cancel = c.done
		return ack, nil
	}
	if c.run.ctx.Err() != nil {
		ack.Cancel = true
		return ack, nil
	}
	expiry := c.cfg.Clock().Add(c.cfg.LeaseTTL)
	for id := range ag.shards {
		ss := c.run.shards[id]
		if ss.state == shardLeased && ss.agent == hb.AgentID {
			ss.expiry = expiry
		}
	}
	return ack, nil
}

// SubmitResult accepts a completed shard, rejecting results from superseded
// lease attempts so a slow former owner cannot double-report after
// reassignment. Accepted results stream into the campaign sink.
func (c *Controller) SubmitResult(sr *ShardResult) (*ResultAck, error) {
	c.mu.Lock()
	run := c.run
	if run == nil || run.cancelled || sr.Shard < 0 || sr.Shard >= len(run.shards) {
		c.mu.Unlock()
		return &ResultAck{}, nil
	}
	ss := run.shards[sr.Shard]
	// A result is current if it answers the live attempt — whether the lease
	// is still held or just expired back to pending (the worker finished,
	// only its heartbeat was late). Anything else is stale.
	if ss.state == shardDone || ss.attempt != sr.Attempt ||
		(ss.state == shardLeased && ss.agent != sr.AgentID) {
		c.mu.Unlock()
		c.logf("control: rejected stale result for shard %d attempt %d from %s", sr.Shard, sr.Attempt, sr.AgentID)
		return &ResultAck{}, nil
	}
	ss.state = shardDone
	if ag := c.agents[ss.agent]; ag != nil {
		delete(ag.shards, ss.shard.ID)
	}
	if ag := c.agents[sr.AgentID]; ag != nil {
		ag.lastSeen = c.cfg.Clock()
	}
	if n, err := FrameSize(sr); err == nil {
		c.stats.ResultBytes += n
	}
	sink := run.sink
	run.inflight.Add(1)
	c.mu.Unlock()

	// Callbacks run outside the lock: the sink feeds the campaign's event
	// stream, which may block on a slow consumer.
	for _, ur := range sr.Units {
		var err error
		if ur.Err != "" {
			err = errors.New(ur.Err)
		}
		sink.UnitDone(ur.Index, ur.Result.Result(), err)
	}
	if sink.Envelope != nil {
		for _, env := range sr.Envelopes {
			sink.Envelope(env)
		}
	}
	c.logf("control: shard %d done (%d units) from %s", sr.Shard, len(sr.Units), sr.AgentID)

	c.mu.Lock()
	run.remaining--
	if run.remaining == 0 {
		close(run.finished)
	}
	c.mu.Unlock()
	run.inflight.Done()
	return &ResultAck{Accepted: true}, nil
}

// sweep reassigns the shards of agents whose leases expired, failing shards
// that exhausted their attempts. Called periodically by ExecuteUnits; tests
// drive it directly with an injected clock.
func (c *Controller) sweep() {
	now := c.cfg.Clock()
	type failed struct {
		shard dice.Shard
		err   error
	}
	var failures []failed
	c.mu.Lock()
	run := c.run
	if run == nil || run.cancelled {
		c.mu.Unlock()
		return
	}
	sink := run.sink
	for _, ss := range run.shards {
		if ss.state != shardLeased || now.Before(ss.expiry) {
			continue
		}
		lost := ss.agent
		if ag := c.agents[lost]; ag != nil {
			delete(ag.shards, ss.shard.ID)
		}
		if ss.attempt >= c.cfg.MaxShardAttempts {
			ss.state = shardDone
			c.stats.Abandoned++
			failures = append(failures, failed{
				shard: ss.shard,
				err:   fmt.Errorf("control: shard %d abandoned after %d lease attempts (last agent %s)", ss.shard.ID, ss.attempt, lost),
			})
			continue
		}
		ss.state = shardPending
		ss.agent = ""
		c.stats.Reassigned++
		c.logf("control: lease on shard %d by %s expired; reassigning", ss.shard.ID, lost)
	}
	if len(failures) > 0 {
		run.inflight.Add(1)
	}
	c.mu.Unlock()
	if len(failures) == 0 {
		return
	}
	for _, f := range failures {
		for _, idx := range f.shard.UnitIndexes {
			sink.UnitDone(idx, nil, f.err)
		}
	}
	c.mu.Lock()
	run.remaining -= len(failures)
	if run.remaining == 0 {
		close(run.finished)
	}
	c.mu.Unlock()
	run.inflight.Done()
}

// ExecuteUnits implements dice.RemoteExecutor: shard the plan, serve leases
// until every shard is done (reassigning as agents die), and return once all
// results have streamed into the sink.
func (c *Controller) ExecuteUnits(ctx context.Context, topo *topology.Topology, snap *checkpoint.Snapshot, spec dice.RemoteSpec, units []dice.Unit, sink dice.RemoteSink) error {
	baseStore := c.cfg.BaselineStore
	if baseStore == nil {
		var err error
		baseStore, err = checkpoint.NewStore(snap)
		if err != nil {
			return fmt.Errorf("control: baseline store: %w", err)
		}
	}
	baseSnap := baseStore.Snapshot()
	encoded, err := checkpoint.Encode(baseSnap)
	if err != nil {
		return fmt.Errorf("control: encode baseline: %w", err)
	}
	delta, err := baseStore.DiffSnapshot(snap)
	if err != nil {
		return fmt.Errorf("control: delta against baseline: %w", err)
	}
	shards := dice.PlanShards(units, c.cfg.UnitsPerShard)
	run := &campaignRun{
		ctx:  ctx,
		topo: topo,
		spec: spec,
		sink: sink,
		baseline: Baseline{
			Campaign:       c.cfg.Campaign,
			Topo:           *topo,
			Snapshot:       encoded,
			SnapshotSHA256: checkpoint.HashBytes(encoded),
			Spec:           spec,
		},
		baseStore: baseStore,
		delta:     *delta,
		shards:    make([]*shardState, len(shards)),
		remaining: len(shards),
		finished:  make(chan struct{}),
	}
	for i, sh := range shards {
		run.shards[i] = &shardState{shard: sh}
	}

	c.mu.Lock()
	if c.run != nil {
		c.mu.Unlock()
		return errors.New("control: a campaign is already executing")
	}
	c.run = run
	c.done = false
	c.drained = make(map[string]bool)
	c.stats.Shards = len(shards)
	c.mu.Unlock()
	c.logf("control: campaign %q: %d units in %d shards", c.cfg.Campaign, len(units), len(shards))

	sweepEvery := c.cfg.LeaseTTL / 4
	if sweepEvery < 5*time.Millisecond {
		sweepEvery = 5 * time.Millisecond
	}
	ticker := time.NewTicker(sweepEvery)
	defer ticker.Stop()
	defer func() {
		c.mu.Lock()
		c.run = nil
		c.done = true
		c.mu.Unlock()
	}()
	for {
		select {
		case <-ctx.Done():
			// Stop accepting results, then wait out callbacks already past
			// the gate so the campaign never races a late sink call.
			c.mu.Lock()
			run.cancelled = true
			c.mu.Unlock()
			run.inflight.Wait()
			return ctx.Err()
		case <-run.finished:
			return nil
		case <-ticker.C:
			c.sweep()
		}
	}
}

// RemoteStats implements dice.RemoteExecutor.
func (c *Controller) RemoteStats() dice.RemoteStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// AgentNames maps agent IDs to the display names they registered with.
func (c *Controller) AgentNames() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.agents))
	for id, ag := range c.agents {
		out[id] = ag.name
	}
	return out
}

// AgentHeartbeatAges reports, per agent ID, how long ago (by the
// controller's clock) the agent was last heard from — through any request,
// not just heartbeats. The metrics layer exposes these as staleness gauges.
func (c *Controller) AgentHeartbeatAges() map[string]time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	out := make(map[string]time.Duration, len(c.agents))
	for id, ag := range c.agents {
		out[id] = now.Sub(ag.lastSeen)
	}
	return out
}

// AgentShardCounts reports how many shard leases each agent ID was granted —
// the distribution smoke tests assert every agent actually worked.
func (c *Controller) AgentShardCounts() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.shardsByAgent))
	for k, v := range c.shardsByAgent {
		out[k] = v
	}
	return out
}

// AwaitDrain blocks until every registered agent has observed the
// campaign-done signal through a lease poll, or the timeout elapses. The
// control process calls this before closing its listener: shutting the
// socket earlier turns an agent's next poll into a connection reset and a
// spurious nonzero exit. Returns false if some agent never drained — a
// killed or partitioned agent, which the caller may report but not wait
// on forever.
func (c *Controller) AwaitDrain(timeout time.Duration) bool {
	// Real time, not cfg.Clock: the wait paces on time.Sleep, and a test
	// clock that never advances would otherwise spin forever.
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		pending := 0
		for id := range c.agents {
			if !c.drained[id] {
				pending++
			}
		}
		c.mu.Unlock()
		if pending == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}
