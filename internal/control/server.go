package control

import (
	"errors"
	"fmt"
	"net/http"
)

// NewHandler exposes the controller over HTTP. Every endpoint exchanges one
// wire frame per request/response body; agents always dial these endpoints
// outbound, so the control plane is the only listening socket in a
// distributed deployment.
func NewHandler(c *Controller) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", func(w http.ResponseWriter, r *http.Request) {
		hello, err := decodeAs[*Hello](r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply(w, c.Register(hello))
	})
	mux.HandleFunc("POST /v1/baseline", func(w http.ResponseWriter, r *http.Request) {
		req, err := decodeAs[*BaselineRequest](r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b, err := c.BaselinePayload(req)
		if errors.Is(err, ErrNoCampaign) {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply(w, b)
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		req, err := decodeAs[*LeaseRequest](r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		msg, err := c.LeaseNext(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply(w, msg)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		hb, err := decodeAs[*Heartbeat](r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ack, err := c.HeartbeatRenew(hb)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply(w, ack)
	})
	mux.HandleFunc("POST /v1/result", func(w http.ResponseWriter, r *http.Request) {
		sr, err := decodeAs[*ShardResult](r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ack, err := c.SubmitResult(sr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply(w, ack)
	})
	return mux
}

// decodeAs decodes the request body's single frame as a specific payload.
func decodeAs[T any](r *http.Request) (T, error) {
	var zero T
	msg, err := DecodeFrame(r.Body)
	if err != nil {
		return zero, err
	}
	typed, ok := msg.(T)
	if !ok {
		return zero, fmt.Errorf("control: expected %T, got %T", zero, msg)
	}
	return typed, nil
}

func reply(w http.ResponseWriter, msg any) {
	w.Header().Set("Content-Type", "application/x-dice-frame")
	if _, err := EncodeFrame(w, msg); err != nil {
		// Headers are already out; nothing recoverable remains.
		return
	}
}
