package control_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/agent"
	"github.com/dice-project/dice/internal/control"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/node/procdriver"
)

// TestMain doubles as the chaos test's agent subprocess: when re-executed
// with DICE_AGENT_MODE=1, the test binary runs a single dice-agent against
// the control URL in the environment instead of the test suite.
func TestMain(m *testing.M) {
	// Campaigns over proc: topologies re-exec this binary as a backend
	// subprocess; divert those before anything else runs.
	procdriver.MaybeRunChild()
	switch os.Getenv("DICE_AGENT_MODE") {
	case "1":
		runAgentSubprocess()
		return
	case "probe":
		// Subprocess-permission probe: exit cleanly so the parent knows
		// re-execution works in this environment.
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// subprocessSkipReason decides whether a subprocess-based chaos test can run:
// it returns "" when the probe (re-executing the test binary) succeeds, and
// otherwise an explicit skip reason carrying the probe's error — prefixed
// with the CI marker when CI=true, so a sandboxed CI runner that forbids
// fork/exec skips with a diagnosable message instead of failing opaquely
// mid-campaign. Pure on its inputs so the skip path itself is testable.
func subprocessSkipReason(ci bool, probe func() error) string {
	err := probe()
	if err == nil {
		return ""
	}
	where := "environment"
	if ci {
		where = "CI environment (CI=true)"
	}
	return fmt.Sprintf("%s cannot re-exec the test binary as an agent subprocess: %v", where, err)
}

// probeSubprocess re-executes the test binary in probe mode: the cheapest
// faithful check that spawning (and waiting on) agent subprocesses is
// permitted here.
func probeSubprocess() error {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "DICE_AGENT_MODE=probe")
	return cmd.Run()
}

func runAgentSubprocess() {
	delay, _ := time.ParseDuration(os.Getenv("DICE_SHARD_DELAY"))
	ag := agent.New(agent.Config{
		Name:         os.Getenv("DICE_AGENT_NAME"),
		ControlURL:   os.Getenv("DICE_CONTROL_URL"),
		Workers:      2,
		PollInterval: 5 * time.Millisecond,
		ShardDelay:   delay,
	})
	if err := ag.Run(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// TestChaosAgentSIGKILLMidCampaign: 3 agent subprocesses over loopback TCP,
// one SIGKILLed while it holds a lease (its ShardDelay pins it inside the
// execution window). The control plane must reassign the orphaned shard after
// lease expiry and the surviving agents must finish with detections identical
// to the in-process run — a crashed agent loses time, never results.
func TestChaosAgentSIGKILLMidCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short mode")
	}
	if reason := subprocessSkipReason(os.Getenv("CI") == "true", probeSubprocess); reason != "" {
		t.Skip(reason)
	}
	local := runInProcess(t, false)

	topo, live, copts := hijackedFixture(t, 4)
	ctrl := control.NewController(control.Config{
		Campaign:      "chaos",
		MinAgents:     3,
		UnitsPerShard: 1,
		LeaseTTL:      500 * time.Millisecond,
	})
	srv := httptest.NewServer(control.NewHandler(ctrl))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	spawn := func(name, delay string) *exec.Cmd {
		cmd := exec.CommandContext(ctx, os.Args[0])
		cmd.Env = append(os.Environ(),
			"DICE_AGENT_MODE=1",
			"DICE_AGENT_NAME="+name,
			"DICE_CONTROL_URL="+srv.URL,
			"DICE_SHARD_DELAY="+delay,
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start agent %s: %v", name, err)
		}
		return cmd
	}
	// The victim dawdles before executing each shard so the kill reliably
	// lands while it holds an unfinished lease.
	victim := spawn("victim", "30s")
	survivors := []*exec.Cmd{spawn("s1", "10ms"), spawn("s2", "10ms")}
	defer func() {
		victim.Process.Kill()
		for _, s := range survivors {
			s.Process.Kill()
		}
	}()

	campDone := make(chan *dice.CampaignResult, 1)
	go func() {
		opts := append(baseOptions(topo, copts, false), dice.WithRemoteExecution(ctrl))
		res, err := dice.NewCampaign(live, topo, opts...).Run(context.Background())
		if err != nil {
			t.Errorf("distributed Run: %v", err)
		}
		campDone <- res
	}()

	// Kill the victim the moment the lease ledger shows it holding a shard:
	// it is then sleeping out its ShardDelay, mid-lease by construction.
	victimID := ""
	for victimID == "" {
		select {
		case <-ctx.Done():
			t.Fatal("victim never leased a shard")
		case <-time.After(5 * time.Millisecond):
		}
		for id, name := range ctrl.AgentNames() {
			if name == "victim" && ctrl.AgentShardCounts()[id] > 0 {
				victimID = id
			}
		}
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL victim: %v", err)
	}
	victim.Wait()

	res := <-campDone
	if res == nil {
		t.Fatal("no campaign result")
	}
	for i, s := range survivors {
		if err := s.Wait(); err != nil {
			t.Errorf("survivor %d exited with error: %v", i, err)
		}
	}

	if got, want := detectionFingerprint(res.Detections), detectionFingerprint(local.Detections); got != want {
		t.Errorf("detections after SIGKILL differ:\n  distributed %s\n  in-process  %s", got, want)
	}
	if res.InputsExplored != local.InputsExplored {
		t.Errorf("inputs explored differ: distributed=%d in-process=%d", res.InputsExplored, local.InputsExplored)
	}
	stats := ctrl.RemoteStats()
	if stats.Reassigned == 0 {
		t.Error("the killed agent's lease was never reassigned")
	}
	if stats.Agents != 3 {
		t.Errorf("agents registered = %d, want 3", stats.Agents)
	}
}
