package control

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/topology"
)

// testClock is a hand-driven clock for lease-expiry tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// recordingSink captures UnitDone calls.
type recordingSink struct {
	mu    sync.Mutex
	calls map[int]int
	errs  map[int]error
}

func newRecordingSink() *recordingSink {
	return &recordingSink{calls: make(map[int]int), errs: make(map[int]error)}
}

func (s *recordingSink) sink() dice.RemoteSink {
	return dice.RemoteSink{UnitDone: func(i int, r *dice.Result, err error) {
		s.mu.Lock()
		s.calls[i]++
		s.errs[i] = err
		s.mu.Unlock()
	}}
}

func testUnits(n int) []dice.Unit {
	units := make([]dice.Unit, n)
	for i := range units {
		units[i] = dice.Unit{Explorer: "R1", FromPeer: "R2", MaxInputs: 1, FuzzSeeds: 1, Seed: int64(i + 1)}
	}
	return units
}

func testSnapshot(t *testing.T) (*topology.Topology, *checkpoint.Snapshot) {
	t.Helper()
	topo := topology.Line(2)
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	c.Converge()
	return topo, c.Snapshot()
}

// TestControllerLeaseExpiryAndReassignment drives the full lease lifecycle
// with a hand clock: grant, expire, reassign, reject the stale attempt,
// accept the fresh one.
func TestControllerLeaseExpiryAndReassignment(t *testing.T) {
	topo, snap := testSnapshot(t)
	clock := newTestClock()
	c := NewController(Config{
		Campaign:      "test",
		MinAgents:     2,
		UnitsPerShard: 2,
		LeaseTTL:      10 * time.Second,
		Clock:         clock.Now,
	})

	// No campaign yet: baseline unavailable, lease says "not yet".
	wa := c.Register(&Hello{Agent: "a", Workers: 1})
	if _, err := c.BaselinePayload(&BaselineRequest{AgentID: wa.AgentID}); !errors.Is(err, ErrNoCampaign) {
		t.Fatalf("baseline before campaign: %v, want ErrNoCampaign", err)
	}
	if msg, err := c.LeaseNext(&LeaseRequest{AgentID: wa.AgentID}); err != nil {
		t.Fatal(err)
	} else if nw, ok := msg.(*NoWork); !ok || nw.Done {
		t.Fatalf("lease before campaign = %+v, want NoWork{Done:false}", msg)
	}

	rec := newRecordingSink()
	execDone := make(chan error, 1)
	go func() {
		execDone <- c.ExecuteUnits(context.Background(), topo, snap, dice.RemoteSpec{Seed: 1}, testUnits(4), rec.sink())
	}()
	waitForRun(t, c)

	// MinAgents=2 gates leasing until a second agent registers.
	if msg, _ := c.LeaseNext(&LeaseRequest{AgentID: wa.AgentID}); !isIdleNoWork(msg) {
		t.Fatalf("lease below MinAgents = %+v, want NoWork", msg)
	}
	wb := c.Register(&Hello{Agent: "b", Workers: 1})

	leaseA := mustLease(t, c, wa.AgentID)
	leaseB := mustLease(t, c, wb.AgentID)
	if leaseA.Shard == leaseB.Shard {
		t.Fatalf("both agents got shard %d", leaseA.Shard)
	}
	if len(leaseA.UnitIndexes) != 2 || leaseA.Attempt != 1 {
		t.Fatalf("lease A = %+v, want 2 units attempt 1", leaseA)
	}
	// Baseline is now servable and accounted.
	if _, err := c.BaselinePayload(&BaselineRequest{AgentID: wa.AgentID}); err != nil {
		t.Fatalf("baseline: %v", err)
	}

	// B completes its shard.
	ack, err := c.SubmitResult(&ShardResult{
		AgentID: wb.AgentID, Shard: leaseB.Shard, Attempt: leaseB.Attempt,
		Units: []UnitResult{
			{Index: leaseB.UnitIndexes[0], Result: &RemoteResult{InputsExplored: 1}},
			{Index: leaseB.UnitIndexes[1], Result: &RemoteResult{InputsExplored: 1}},
		},
	})
	if err != nil || !ack.Accepted {
		t.Fatalf("B's result not accepted: %+v, %v", ack, err)
	}

	// A goes silent: B heartbeats, A's lease expires, shard reassigned.
	clock.Advance(6 * time.Second)
	if _, err := c.HeartbeatRenew(&Heartbeat{AgentID: wb.AgentID}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(6 * time.Second)
	c.sweep()
	if got := c.RemoteStats().Reassigned; got != 1 {
		t.Fatalf("Reassigned = %d, want 1", got)
	}

	leaseB2 := mustLease(t, c, wb.AgentID)
	if leaseB2.Shard != leaseA.Shard || leaseB2.Attempt != 2 {
		t.Fatalf("reassigned lease = %+v, want shard %d attempt 2", leaseB2, leaseA.Shard)
	}

	// A's stale result (attempt 1) must be rejected; B's fresh one accepted.
	stale, err := c.SubmitResult(&ShardResult{
		AgentID: wa.AgentID, Shard: leaseA.Shard, Attempt: leaseA.Attempt,
		Units: []UnitResult{{Index: leaseA.UnitIndexes[0]}, {Index: leaseA.UnitIndexes[1]}},
	})
	if err != nil || stale.Accepted {
		t.Fatalf("stale result accepted: %+v, %v", stale, err)
	}
	fresh, err := c.SubmitResult(&ShardResult{
		AgentID: wb.AgentID, Shard: leaseB2.Shard, Attempt: leaseB2.Attempt,
		Units: []UnitResult{
			{Index: leaseB2.UnitIndexes[0], Result: &RemoteResult{InputsExplored: 1}},
			{Index: leaseB2.UnitIndexes[1], Result: &RemoteResult{InputsExplored: 1}},
		},
	})
	if err != nil || !fresh.Accepted {
		t.Fatalf("fresh result rejected: %+v, %v", fresh, err)
	}

	if err := <-execDone; err != nil {
		t.Fatalf("ExecuteUnits: %v", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i := 0; i < 4; i++ {
		if rec.calls[i] != 1 {
			t.Errorf("unit %d completed %d times, want exactly once", i, rec.calls[i])
		}
		if rec.errs[i] != nil {
			t.Errorf("unit %d error: %v", i, rec.errs[i])
		}
	}
	stats := c.RemoteStats()
	if stats.Shards != 2 || stats.Agents != 2 || stats.Reassigned != 1 {
		t.Errorf("stats = %+v, want 2 shards, 2 agents, 1 reassignment", stats)
	}
	if stats.BaselineBytes == 0 || stats.ShardBytes == 0 || stats.ResultBytes == 0 {
		t.Errorf("wire accounting missing: %+v", stats)
	}
}

// TestControllerAbandonsShardAfterMaxAttempts: a shard that keeps losing its
// agent fails its units instead of looping forever.
func TestControllerAbandonsShardAfterMaxAttempts(t *testing.T) {
	topo, snap := testSnapshot(t)
	clock := newTestClock()
	c := NewController(Config{
		Campaign:         "test",
		UnitsPerShard:    4,
		LeaseTTL:         10 * time.Second,
		MaxShardAttempts: 1,
		Clock:            clock.Now,
	})
	w := c.Register(&Hello{Agent: "a", Workers: 1})
	rec := newRecordingSink()
	execDone := make(chan error, 1)
	go func() {
		execDone <- c.ExecuteUnits(context.Background(), topo, snap, dice.RemoteSpec{Seed: 1}, testUnits(2), rec.sink())
	}()
	waitForRun(t, c)

	lease := mustLease(t, c, w.AgentID)
	clock.Advance(11 * time.Second)
	c.sweep()
	if err := <-execDone; err != nil {
		t.Fatalf("ExecuteUnits: %v", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, idx := range lease.UnitIndexes {
		if rec.errs[idx] == nil || !strings.Contains(rec.errs[idx].Error(), "abandoned") {
			t.Errorf("unit %d error = %v, want abandonment", idx, rec.errs[idx])
		}
	}
}

// TestControllerCancellation: cancelling the campaign context stops
// ExecuteUnits and flips lease responses to Done.
func TestControllerCancellation(t *testing.T) {
	topo, snap := testSnapshot(t)
	c := NewController(Config{Campaign: "test", LeaseTTL: time.Minute})
	w := c.Register(&Hello{Agent: "a", Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	rec := newRecordingSink()
	execDone := make(chan error, 1)
	go func() {
		execDone <- c.ExecuteUnits(ctx, topo, snap, dice.RemoteSpec{Seed: 1}, testUnits(2), rec.sink())
	}()
	waitForRun(t, c)
	if msg, _ := c.LeaseNext(&LeaseRequest{AgentID: w.AgentID}); msg == nil {
		t.Fatal("no lease response")
	}
	cancel()
	if err := <-execDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteUnits after cancel = %v, want context.Canceled", err)
	}
}

func isIdleNoWork(msg any) bool {
	nw, ok := msg.(*NoWork)
	return ok && !nw.Done
}

func mustLease(t *testing.T, c *Controller, agentID string) *Lease {
	t.Helper()
	msg, err := c.LeaseNext(&LeaseRequest{AgentID: agentID})
	if err != nil {
		t.Fatal(err)
	}
	lease, ok := msg.(*Lease)
	if !ok {
		t.Fatalf("lease = %+v, want *Lease", msg)
	}
	return lease
}

// waitForRun blocks until ExecuteUnits has installed its campaign run.
func waitForRun(t *testing.T, c *Controller) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		c.mu.Lock()
		ok := c.run != nil
		c.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("campaign run never started")
}

// TestAwaitDrain: the controller tracks which agents have observed the
// campaign-done signal through a lease poll, so the control process can hold
// its listener open until every agent is exiting through the protocol
// instead of cutting them off with a connection reset.
func TestAwaitDrain(t *testing.T) {
	topo, snap := testSnapshot(t)
	c := NewController(Config{Campaign: "test", LeaseTTL: time.Minute, MinAgents: 2})
	w1 := c.Register(&Hello{Agent: "a", Workers: 1})
	w2 := c.Register(&Hello{Agent: "b", Workers: 1})

	// No agent has polled past campaign end yet: the wait must time out.
	if c.AwaitDrain(10 * time.Millisecond) {
		t.Fatal("AwaitDrain succeeded with no agent drained")
	}

	ctx, cancel := context.WithCancel(context.Background())
	rec := newRecordingSink()
	execDone := make(chan error, 1)
	go func() {
		execDone <- c.ExecuteUnits(ctx, topo, snap, dice.RemoteSpec{Seed: 1}, testUnits(2), rec.sink())
	}()
	waitForRun(t, c)
	cancel()
	if err := <-execDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteUnits after cancel = %v, want context.Canceled", err)
	}

	// A Done lease response drains exactly the polling agent.
	if msg, err := c.LeaseNext(&LeaseRequest{AgentID: w1.AgentID}); err != nil {
		t.Fatal(err)
	} else if nw, ok := msg.(*NoWork); !ok || !nw.Done {
		t.Fatalf("lease after campaign end = %+v, want NoWork{Done: true}", msg)
	}
	if c.AwaitDrain(10 * time.Millisecond) {
		t.Fatal("AwaitDrain succeeded with one of two agents drained")
	}

	drainDone := make(chan bool, 1)
	go func() { drainDone <- c.AwaitDrain(5 * time.Second) }()
	if _, err := c.LeaseNext(&LeaseRequest{AgentID: w2.AgentID}); err != nil {
		t.Fatal(err)
	}
	if !<-drainDone {
		t.Fatal("AwaitDrain timed out after both agents drained")
	}
}
