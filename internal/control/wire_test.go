package control

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/topology"
)

// sampleMessages returns one populated instance of every wire message.
func sampleMessages() []any {
	return []any{
		&Hello{Agent: "a1", Backends: []string{"bird", "frr"}, Workers: 4},
		&Welcome{AgentID: "agent-1", Campaign: "demo", HeartbeatEvery: time.Second, LeaseTTL: 3 * time.Second},
		&BaselineRequest{AgentID: "agent-1"},
		&Baseline{
			Campaign: "demo",
			Topo:     *topology.Line(3),
			Snapshot: []byte{1, 2, 3, 4},
			Spec: dice.RemoteSpec{
				Seed: 7, FuzzSeeds: 4, UseConcolic: true, ShadowMaxEvents: 1000,
				HasProperties: true, Properties: []string{"origin-validity"},
				Domains:     []federation.Domain{{Name: "as1", Nodes: []string{"R1"}}},
				ClusterSeed: 1, ClusterMaxEvents: 2000,
			},
		},
		&LeaseRequest{AgentID: "agent-1"},
		&Lease{
			Shard: 2, Attempt: 1,
			UnitIndexes: []int{4, 5},
			Units: []dice.Unit{
				{Explorer: "R1", FromPeer: "R2", MaxInputs: 8, FuzzSeeds: 4, Seed: 11, Domain: "as1"},
				{Explorer: "R2", FromPeer: "R1", MaxInputs: 8, FuzzSeeds: 4, Seed: 12},
			},
			Delta: checkpoint.SnapshotDelta{
				At:         5 * time.Second,
				Consistent: true,
				Patches: []checkpoint.NodePatch{
					{Node: "R1", Impl: "bird", PrefixLen: 3, SuffixLen: 2, Patch: []byte{9, 9}, FullLen: 7},
				},
			},
		},
		&NoWork{Done: true},
		&Heartbeat{AgentID: "agent-1"},
		&HeartbeatAck{Cancel: true},
		&ShardResult{
			AgentID: "agent-1", Shard: 2, Attempt: 1,
			Units: []UnitResult{
				{Index: 4, Result: &RemoteResult{Explorer: "R1", FromPeer: "R2", InputsExplored: 8}},
				{Index: 5, Err: "boom"},
			},
			Envelopes: []federation.Envelope{
				{Seq: 0, From: "as1", To: "as2", Bytes: 42, Summary: checker.Summary{
					Domain: "as1", Checked: 3,
					Digests: []checker.ViolationDigest{{Property: "origin-validity", Class: checker.ClassOperatorMistake, Node: "R1"}},
				}},
			},
		},
		&ResultAck{Accepted: true},
	}
}

// TestWireRoundTrip: every message type must encode to one frame and decode
// back equal, and FrameSize must agree with the bytes written.
func TestWireRoundTrip(t *testing.T) {
	for _, msg := range sampleMessages() {
		var buf bytes.Buffer
		n, err := EncodeFrame(&buf, msg)
		if err != nil {
			t.Fatalf("EncodeFrame(%T): %v", msg, err)
		}
		if n != buf.Len() {
			t.Errorf("%T: EncodeFrame reported %d bytes, wrote %d", msg, n, buf.Len())
		}
		if size, err := FrameSize(msg); err != nil || size != n {
			t.Errorf("%T: FrameSize = %d (%v), want %d", msg, size, err, n)
		}
		got, err := DecodeFrame(&buf)
		if err != nil {
			t.Fatalf("DecodeFrame(%T): %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%T: round trip mismatch:\n got %+v\nwant %+v", msg, got, msg)
		}
	}
}

// TestWireRejectsMalformed: corrupted headers and truncated payloads error
// cleanly.
func TestWireRejectsMalformed(t *testing.T) {
	var good bytes.Buffer
	if _, err := EncodeFrame(&good, &Heartbeat{AgentID: "agent-1"}); err != nil {
		t.Fatal(err)
	}
	frame := good.Bytes()

	corrupt := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), frame...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":        corrupt(func(b []byte) { b[0] = 'X' }),
		"bad version":      corrupt(func(b []byte) { b[2] = 99 }),
		"zero type":        corrupt(func(b []byte) { b[3] = 0 }),
		"unknown type":     corrupt(func(b []byte) { b[3] = byte(msgTypeEnd) }),
		"huge length":      corrupt(func(b []byte) { b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff }),
		"truncated header": frame[:4],
		"truncated body":   frame[:len(frame)-1],
		"empty":            nil,
		"wrong payload":    corrupt(func(b []byte) { b[3] = byte(MsgBaseline) }),
	}
	for name, data := range cases {
		if _, err := DecodeFrame(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decoded successfully, want error", name)
		}
	}
}

// TestWireVersionGate: version skew in either direction must be rejected at
// the header — cleanly, before any payload is decoded — never misparsed.
// Version 2 changed the baseline encoding and the delta patch schema, so a
// mixed-version deployment that slipped past this gate would corrupt
// snapshots rather than error.
func TestWireVersionGate(t *testing.T) {
	frame := func(msg any) []byte {
		var buf bytes.Buffer
		if _, err := EncodeFrame(&buf, msg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Old agent → new controller: a version-1 Hello (the first frame an
	// agent ever sends) is refused by the current decoder.
	oldHello := frame(&Hello{Agent: "legacy", Backends: []string{"bird"}, Workers: 2})
	oldHello[2] = 1
	_, err := DecodeFrame(bytes.NewReader(oldHello))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("version")) {
		t.Fatalf("version-1 agent frame decoded by version-%d controller: %v", WireVersion, err)
	}

	// New controller → old agent: the version-1 decoder checked the header's
	// version byte against 1 before touching the payload (same gate, older
	// constant). A current Baseline frame announces a later version, so the old
	// binary rejects at the header instead of gob-misparsing the new fields.
	baseline := frame(&Baseline{Campaign: "c", Snapshot: []byte{0xD1, 0xCE, 1, 1}})
	if got := baseline[2]; got != WireVersion || got == 1 {
		t.Fatalf("baseline frame announces version %d, want %d (≠ 1)", got, WireVersion)
	}
	legacyDecode := func(b []byte) error { // the version-1 gate, verbatim
		if len(b) < frameHeaderLen || b[0] != wireMagic0 || b[1] != wireMagic1 {
			return errors.New("control: bad frame magic")
		}
		if b[2] != 1 {
			return fmt.Errorf("control: unsupported wire version %d (have 1)", b[2])
		}
		return nil
	}
	if err := legacyDecode(baseline); err == nil ||
		!bytes.Contains([]byte(err.Error()), []byte("version")) {
		t.Fatalf("version-1 agent accepted a version-%d baseline: %v", WireVersion, err)
	}

	// And a later revision than ours is equally refused.
	future := frame(&NoWork{})
	future[2] = WireVersion + 1
	if _, err := DecodeFrame(bytes.NewReader(future)); err == nil ||
		!bytes.Contains([]byte(err.Error()), []byte("version")) {
		t.Fatalf("future version decoded: %v", err)
	}
}

// TestWireStreamsMultipleFrames: frames are self-delimiting on one stream.
func TestWireStreamsMultipleFrames(t *testing.T) {
	var buf bytes.Buffer
	msgs := []any{&Heartbeat{AgentID: "a"}, &HeartbeatAck{}, &NoWork{Done: true}}
	for _, m := range msgs {
		if _, err := EncodeFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := DecodeFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stream decode: got %+v want %+v", got, want)
		}
	}
	if _, err := DecodeFrame(&buf); err == nil || !bytes.Contains([]byte(err.Error()), []byte("header")) {
		t.Errorf("exhausted stream should report a header error, got %v", err)
	}
	_ = io.EOF
}

// TestFrameSubHeaderInputs: inputs shorter than the 8-byte frame header —
// including empty and single-byte reads — must error cleanly, never panic.
func TestFrameSubHeaderInputs(t *testing.T) {
	var good bytes.Buffer
	if _, err := EncodeFrame(&good, &Heartbeat{AgentID: "a"}); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < frameHeaderLen; n++ {
		if _, err := DecodeFrame(bytes.NewReader(good.Bytes()[:n])); err == nil {
			t.Errorf("%d-byte frame prefix decoded without error", n)
		}
	}
}
