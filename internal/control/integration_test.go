package control_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/agent"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/control"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/topology"
)

// hijackedFixture deploys a line cluster whose last router mis-originates the
// first router's prefix — the standard campaign scenario with guaranteed
// detections (mirrors the dice package's own equivalence fixtures).
func hijackedFixture(t *testing.T, n int) (*topology.Topology, *cluster.Cluster, cluster.Options) {
	t.Helper()
	topo := topology.Line(n)
	victim := topo.Nodes[0].Prefixes[0]
	last := topo.Nodes[n-1].Name
	opts := cluster.Options{Seed: 1, ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: last, Prefix: victim})}
	c := cluster.MustBuild(topo, opts)
	c.Converge()
	return topo, c, opts
}

func detectionFingerprint(ds []dice.Detection) string {
	keys := make([]string, 0, len(ds))
	for _, d := range ds {
		keys = append(keys, fmt.Sprintf("%s@%d", d.Violation.Key(), d.InputIndex))
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// baseOptions returns the deterministic campaign configuration every
// equivalence run shares; fed swaps the plain strategy for per-AS federation.
func baseOptions(topo *topology.Topology, copts cluster.Options, fed bool) []dice.CampaignOption {
	opts := []dice.CampaignOption{
		dice.WithBudget(dice.Budget{TotalInputs: 12}),
		dice.WithFuzzSeeds(4),
		dice.WithSeed(3),
		dice.WithClusterOptions(copts),
		dice.WithWorkers(2),
	}
	if fed {
		opts = append(opts, dice.WithFederation(federation.PartitionByAS(topo)))
	} else {
		opts = append(opts, dice.WithStrategy(dice.AllNodesStrategy{}))
	}
	return opts
}

// runInProcess is the reference: the ordinary single-process campaign.
func runInProcess(t *testing.T, fed bool) *dice.CampaignResult {
	t.Helper()
	topo, live, copts := hijackedFixture(t, 4)
	res, err := dice.NewCampaign(live, topo, baseOptions(topo, copts, fed)...).Run(context.Background())
	if err != nil {
		t.Fatalf("in-process Run: %v", err)
	}
	return res
}

// runDistributed runs the same campaign through a Controller with n agents,
// over the in-process transport or a real loopback TCP server.
func runDistributed(t *testing.T, n int, useTCP, fed bool) (*dice.CampaignResult, *control.Controller) {
	t.Helper()
	topo, live, copts := hijackedFixture(t, 4)
	ctrl := control.NewController(control.Config{
		Campaign:      "itest",
		MinAgents:     n,
		UnitsPerShard: 1,
		LeaseTTL:      5 * time.Second,
	})
	handler := control.NewHandler(ctrl)

	var url string
	var client *http.Client
	if useTCP {
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		url, client = srv.URL, srv.Client()
	} else {
		url, client = "http://control.inproc", control.InProcessClient(handler)
	}

	agentCtx, cancelAgents := context.WithCancel(context.Background())
	t.Cleanup(cancelAgents)
	var wg sync.WaitGroup
	agentErrs := make([]error, n)
	for i := 0; i < n; i++ {
		ag := agent.New(agent.Config{
			Name:         fmt.Sprintf("agent-%d", i),
			ControlURL:   url,
			Client:       client,
			PollInterval: 2 * time.Millisecond,
		})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			agentErrs[i] = ag.Run(agentCtx)
		}(i)
	}

	opts := append(baseOptions(topo, copts, fed), dice.WithRemoteExecution(ctrl))
	res, err := dice.NewCampaign(live, topo, opts...).Run(context.Background())
	if err != nil {
		t.Fatalf("distributed Run (%d agents, tcp=%v, fed=%v): %v", n, useTCP, fed, err)
	}
	wg.Wait()
	for i, e := range agentErrs {
		if e != nil {
			t.Errorf("agent %d exited with error: %v", i, e)
		}
	}
	return res, ctrl
}

// assertEqualCampaigns is the headline check: distributed detection sets,
// exploration accounting, and (when federated) disclosure accounting must be
// identical to the in-process run.
func assertEqualCampaigns(t *testing.T, local, remote *dice.CampaignResult) {
	t.Helper()
	if len(local.Detections) == 0 {
		t.Fatal("in-process campaign found nothing; equivalence is vacuous")
	}
	if got, want := detectionFingerprint(remote.Detections), detectionFingerprint(local.Detections); got != want {
		t.Errorf("distributed detections differ from in-process:\n  distributed %s\n  in-process  %s", got, want)
	}
	if remote.InputsExplored != local.InputsExplored {
		t.Errorf("inputs explored differ: distributed=%d in-process=%d", remote.InputsExplored, local.InputsExplored)
	}
	if local.Federated {
		if !remote.Federated {
			t.Fatal("distributed campaign lost the Federated flag")
		}
		if remote.Disclosed != local.Disclosed {
			t.Errorf("disclosure accounting differs: distributed=%+v in-process=%+v", remote.Disclosed, local.Disclosed)
		}
		if remote.DisclosedBytes != local.DisclosedBytes {
			t.Errorf("disclosed bytes differ: distributed=%d in-process=%d", remote.DisclosedBytes, local.DisclosedBytes)
		}
		for i := range local.Domains {
			if remote.Domains[i] != local.Domains[i] {
				t.Errorf("domain %s breakdown differs:\n  distributed %+v\n  in-process  %+v",
					local.Domains[i].Domain, remote.Domains[i], local.Domains[i])
			}
		}
	}
}

// TestDistributedOneAgentMatchesInProcess: 1 agent over the in-process
// transport reproduces the in-process campaign exactly.
func TestDistributedOneAgentMatchesInProcess(t *testing.T) {
	local := runInProcess(t, false)
	remote, _ := runDistributed(t, 1, false, false)
	assertEqualCampaigns(t, local, remote)
	if remote.Remote == nil || remote.Remote.Agents != 1 {
		t.Errorf("Remote stats = %+v, want 1 agent", remote.Remote)
	}
}

// TestDistributedThreeAgentsMatchesInProcess: sharding across 3 agents
// changes who executes, never what is found — and the wire carries summaries
// and results, not node state.
func TestDistributedThreeAgentsMatchesInProcess(t *testing.T) {
	local := runInProcess(t, false)
	remote, ctrl := runDistributed(t, 3, false, false)
	assertEqualCampaigns(t, local, remote)

	stats := remote.Remote
	if stats == nil || stats.Agents != 3 {
		t.Fatalf("Remote stats = %+v, want 3 agents", stats)
	}
	if stats.Shards == 0 || stats.BaselineBytes == 0 || stats.ShardBytes == 0 || stats.ResultBytes == 0 {
		t.Errorf("wire accounting incomplete: %+v", stats)
	}
	// The privacy boundary on the wire: per-unit results are summaries and
	// verdicts, below the full-state counterfactual (every explored input
	// shipping a full snapshot back). The margin is 2x, not more: the binary
	// codec shrank snapshots roughly threefold versus gob, so the
	// counterfactual itself is a much lower bar than it used to be.
	if full := remote.FullStateBytes * remote.InputsExplored; full > 0 && stats.ResultBytes*2 >= full {
		t.Errorf("result wire bytes %d not well below full-state counterfactual %d", stats.ResultBytes, full)
	}
	total := 0
	for _, n := range ctrl.AgentShardCounts() {
		total += n
	}
	if total < stats.Shards {
		t.Errorf("lease ledger covers %d grants for %d shards", total, stats.Shards)
	}
}

// TestDistributedLoopbackTCPMatchesInProcess: same equivalence over real TCP
// sockets — the byte carrier must not matter.
func TestDistributedLoopbackTCPMatchesInProcess(t *testing.T) {
	local := runInProcess(t, false)
	remote, _ := runDistributed(t, 3, true, false)
	assertEqualCampaigns(t, local, remote)
}

// TestDistributedFederatedMatchesInProcess: the federated campaign's
// privacy-preserving coordination survives distribution — envelopes captured
// on agent buses and replayed control-side yield identical disclosure
// accounting, over both transports.
func TestDistributedFederatedMatchesInProcess(t *testing.T) {
	local := runInProcess(t, true)
	t.Run("inprocess-transport", func(t *testing.T) {
		remote, _ := runDistributed(t, 3, false, true)
		assertEqualCampaigns(t, local, remote)
	})
	t.Run("loopback-tcp", func(t *testing.T) {
		remote, _ := runDistributed(t, 3, true, true)
		assertEqualCampaigns(t, local, remote)
	})
}
