// Package live implements DiCE's online mode: a runtime that runs beside a
// deployed (emulated) cluster carrying live traffic, periodically takes
// low-pause consistent checkpoints into a rolling epoch ring, and drives
// back-to-back shadow campaigns against each fresh epoch — continuously, for
// as long as the deployment runs, without ever mutating it.
//
// The loop per epoch:
//
//	drive live traffic ─→ pause: consistent cut + state fingerprint
//	       ▲                          │ (microseconds; governed by PauseBudget)
//	       │                          ▼
//	  resume traffic          decode → epoch ring (bounded, delta-measured)
//	       │                          │
//	       │                          ▼
//	       │              scenario scheduler draws churn generators
//	       │              (weighted, adaptive, dedupe-cached)
//	       │                          │
//	       │                          ▼
//	       └──────────── shadow campaigns on pooled clones
//	                       detections → Report (minimized, re-verified traces)
//
// A resource governor keeps the runtime a good neighbor: the shadow worker
// pool gets a bounded CPU share, each checkpoint has a pause budget (pauses
// over budget stretch the checkpoint cadence), and in pipelined mode
// exploration that lags checkpointing is backpressured by superseding stale
// epochs instead of queueing them.
package live

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/topology"
)

// TrafficDriver injects one epoch's worth of live traffic into the deployed
// cluster. The runtime advances the deployment by Options.TrafficStep of
// virtual time after the driver returns, so a driver only schedules
// messages; a driver that injects nothing models an idle deployment (whose
// epochs then dedupe against each other).
type TrafficDriver func(c *cluster.Cluster, rng *rand.Rand, epoch int)

// DefaultTraffic returns the default churn driver: per epoch, churn random
// origins withdraw and re-announce one of their own prefixes to a random
// neighbor at random offsets within the traffic step — steady, Internet-like
// control-plane background noise.
func DefaultTraffic(churn int) TrafficDriver {
	if churn <= 0 {
		churn = 3
	}
	return func(c *cluster.Cluster, rng *rand.Rand, epoch int) {
		names := c.RouterNames()
		for i := 0; i < churn; i++ {
			name := names[rng.Intn(len(names))]
			r := c.Router(name)
			cfg := r.Config()
			if len(cfg.Networks) == 0 {
				continue
			}
			pfx := cfg.Networks[rng.Intn(len(cfg.Networks))]
			neighbors := c.Topo.NeighborsOf(name)
			if len(neighbors) == 0 {
				continue
			}
			to := neighbors[rng.Intn(len(neighbors))]
			attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{cfg.AS}, NextHop: uint32(cfg.RouterID)}
			at := time.Duration(rng.Int63n(int64(500 * time.Millisecond)))
			c.Net.InjectMessage(netem.NodeID(name), netem.NodeID(to),
				bgp.Encode(&bgp.Update{Withdrawn: []bgp.Prefix{pfx}}), at)
			c.Net.InjectMessage(netem.NodeID(name), netem.NodeID(to),
				bgp.Encode(&bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{pfx}}), at+100*time.Millisecond)
		}
	}
}

// Options configure a live runtime.
type Options struct {
	// Seed drives the traffic driver, the scenario scheduler and the
	// per-campaign seeds (which additionally mix in the epoch's state
	// fingerprint).
	Seed int64
	// ClusterOptions must match the deployed cluster's options; shadow clones
	// are restored with them.
	ClusterOptions cluster.Options

	// TrafficStep is the virtual time the deployment advances per traffic
	// step (2s when unset). The checkpoint cadence starts at one step per
	// epoch and is stretched by the governor when pauses run over budget.
	TrafficStep time.Duration
	// Traffic injects each step's live traffic; nil selects
	// DefaultTraffic(3).
	Traffic TrafficDriver
	// MaxEpochs bounds the soak (zero: run until the context ends).
	MaxEpochs int
	// RingCapacity bounds the epoch ring's retention (8 when unset).
	RingCapacity int

	// Governor knobs.
	//
	// ShadowCPUShare is the fraction of GOMAXPROCS the shadow worker pool may
	// use, 0.5 when unset; Workers overrides the derived count directly.
	ShadowCPUShare float64
	Workers        int
	// PauseBudget is the per-checkpoint pause budget (25ms when unset). A
	// pause over budget doubles the number of traffic steps per checkpoint
	// (up to 8), trading checkpoint freshness for deployment throughput; the
	// cadence relaxes back when pauses are well under budget.
	PauseBudget time.Duration
	// Overlap pipelines exploration with checkpointing: campaigns run on
	// their own goroutine while the deployment keeps moving, and when
	// exploration lags, a fresh epoch supersedes the stale pending one
	// (counted in Stats.EpochsSuperseded) instead of queueing behind it. Off,
	// the loop explores every epoch before taking the next checkpoint.
	Overlap bool

	// Exploration knobs.
	//
	// ScenariosPerEpoch is how many scenarios the scheduler draws per epoch;
	// zero or anything at least the registry size runs them all.
	ScenariosPerEpoch int
	// InputsPerScenario is each scenario campaign's input budget (24 when
	// unset).
	InputsPerScenario int
	// FuzzSeeds is the per-unit grammar-fuzzed seed count (4 when unset).
	FuzzSeeds int
	// Scenarios overrides the scheduler's scenario registry; nil selects
	// faults.Scenarios(topo, Seed).
	Scenarios []faults.Scenario
	// Explorers restricts campaign planning to these routers; nil lets the
	// strategy default (the best-connected router) decide.
	Explorers []string
	// Strategy overrides campaign planning; nil selects
	// dice.DegreeStrategy{PeersPerExplorer: -1} (every session of each
	// explorer).
	Strategy dice.Strategy
	// Properties are the checked properties; nil selects
	// checker.DefaultProperties.
	Properties []checker.Property
	// CodeFaults are installed on every shadow clone (mirroring faulty
	// binaries on the deployed nodes).
	CodeFaults []faults.CodeFault
	// ShadowMaxEvents bounds each clone run (20000 when unset).
	ShadowMaxEvents int

	// MinimizeReplays is the per-finding replay budget of the greedy trace
	// minimizer (64 when unset); negative disables minimization.
	MinimizeReplays int
	// Cache is the cross-epoch path-dedupe cache; nil builds a fresh one.
	// Pass a loaded cache to resume a previous soak's dedupe state. Entries
	// are keyed by the exploration configuration as well as the state
	// fingerprint, so resuming with a different budget, property set or
	// fault set re-explores rather than trusting shallower past campaigns.
	Cache *PathCache

	// Partition, when non-nil, runs every shadow campaign federated over
	// these administrative domains: units are planned per domain and
	// cross-domain verdicts travel as summary-grade disclosures. The
	// disclosures are mirrored onto the runtime's long-lived Bus, so a soak's
	// cumulative per-domain disclosure accounting is observable (the metrics
	// layer reads it).
	Partition *federation.Partition

	// OnFinding, when non-nil, is called synchronously for every new finding
	// (after minimization), always from the exploring goroutine, never
	// concurrently.
	OnFinding func(*Finding)
	// OnEpoch, when non-nil, is called synchronously from the exploring
	// goroutine after each epoch's campaigns finish, with that epoch's
	// summary row. In Overlap mode an epoch superseded before exploration
	// produces no row. Never called concurrently.
	OnEpoch func(EpochSummary)
	// OnCampaignEvent, when non-nil, receives every campaign progress event
	// (unit starts, detections, summaries) tagged with the epoch and
	// scenario — the feed for span tracing. Called synchronously from the
	// exploring goroutine.
	OnCampaignEvent func(epoch int, scenario string, ev dice.Event)
	// Trace, when non-nil, receives progress lines. Invocations are
	// serialized by the runtime (in Overlap mode both the checkpoint loop
	// and the explorer emit lines), so the callback itself needs no locking.
	Trace func(string)
}

func (o Options) withDefaults() Options {
	if o.TrafficStep <= 0 {
		o.TrafficStep = 2 * time.Second
	}
	if o.Traffic == nil {
		o.Traffic = DefaultTraffic(3)
	}
	if o.RingCapacity <= 0 {
		o.RingCapacity = 8
	}
	if o.ShadowCPUShare <= 0 || o.ShadowCPUShare > 1 {
		o.ShadowCPUShare = 0.5
	}
	if o.Workers <= 0 {
		o.Workers = int(o.ShadowCPUShare * float64(runtime.GOMAXPROCS(0)))
		if o.Workers < 1 {
			o.Workers = 1
		}
	}
	if o.PauseBudget <= 0 {
		o.PauseBudget = 25 * time.Millisecond
	}
	if o.InputsPerScenario <= 0 {
		o.InputsPerScenario = 24
	}
	if o.FuzzSeeds <= 0 {
		o.FuzzSeeds = 4
	}
	if o.Strategy == nil {
		o.Strategy = dice.DegreeStrategy{PeersPerExplorer: -1}
	}
	if o.ShadowMaxEvents <= 0 {
		o.ShadowMaxEvents = 20000
	}
	if o.MinimizeReplays == 0 {
		o.MinimizeReplays = 64
	}
	if o.Cache == nil {
		o.Cache = NewPathCache()
	}
	return o
}

// maxStride bounds how far the governor stretches the checkpoint cadence.
const maxStride = 8

// Stats aggregates a soak's activity. All counters are cumulative.
type Stats struct {
	// Epochs is the number of checkpoints taken.
	Epochs int

	// Checkpoint pause accounting: the pause is only the consistent cut plus
	// the state fingerprint — decoding, measuring and ring bookkeeping happen
	// off the critical path (CheckpointProcessTotal) while traffic resumes.
	CheckpointPauseTotal   time.Duration
	CheckpointPauseMax     time.Duration
	CheckpointProcessTotal time.Duration
	// PauseBudgetExceeded counts checkpoints whose pause ran over budget.
	// StrideStretches counts the governor actually doubling the cadence in
	// response — at the stride cap an overrun increments PauseBudgetExceeded
	// but not StrideStretches, so the two diverge exactly when the governor
	// has run out of room. StrideRelaxes counts cadence halvings on
	// comfortably-under-budget pauses. CheckpointStride is the final cadence
	// (traffic steps per checkpoint).
	PauseBudgetExceeded int
	StrideStretches     int
	StrideRelaxes       int
	CheckpointStride    int

	// Epoch footprint accounting.
	SnapshotBytesTotal int
	DeltaBytesTotal    int

	// Exploration accounting. The *Saved counters are what the cross-epoch
	// dedupe cache avoided re-running on unchanged state.
	Campaigns        int
	CampaignsDeduped int
	InputsExplored   int
	InputsSaved      int
	PathsExplored    int
	PathsSaved       int

	// Wall-clock split: live traffic vs shadow exploration.
	TrafficTime time.Duration
	ExploreTime time.Duration

	// EpochsSuperseded counts epochs replaced by a fresher one before
	// exploration got to them (Overlap mode backpressure).
	EpochsSuperseded int

	// Findings and minimization.
	Findings           int
	FindingsReverified int
	TraceStepsBefore   int
	TraceStepsAfter    int
	MinimizeReplays    int
	// FirstDetectionEpoch is the epoch of the first finding (0: none yet).
	FirstDetectionEpoch int
}

// PauseMean returns the mean checkpoint pause.
func (s Stats) PauseMean() time.Duration {
	if s.Epochs == 0 {
		return 0
	}
	return s.CheckpointPauseTotal / time.Duration(s.Epochs)
}

// ShadowOverheadPercent reports steady-state shadow overhead: exploration
// wall clock relative to everything the deployment itself needed (traffic
// plus checkpointing, pause and processing).
func (s Stats) ShadowOverheadPercent() float64 {
	liveSide := s.TrafficTime + s.CheckpointPauseTotal + s.CheckpointProcessTotal
	if liveSide <= 0 {
		return 0
	}
	return 100 * float64(s.ExploreTime) / float64(liveSide)
}

// DedupeSavedFraction reports the fraction of would-be inputs the dedupe
// cache skipped.
func (s Stats) DedupeSavedFraction() float64 {
	total := s.InputsExplored + s.InputsSaved
	if total == 0 {
		return 0
	}
	return float64(s.InputsSaved) / float64(total)
}

// EpochSummary is one epoch's row of soak history: what the checkpoint cost
// and what its exploration did. Duration and byte fields are this epoch's
// own, not cumulative; delivered via Options.OnEpoch after the epoch's
// campaigns finish.
type EpochSummary struct {
	// Seq is the epoch's ring sequence number; UnixNano the wall-clock time
	// its checkpoint was taken (from the ring's clock seam).
	Seq      int
	UnixNano int64

	// Checkpoint-side costs.
	Pause      time.Duration
	Process    time.Duration
	Traffic    time.Duration
	OverBudget bool
	Stride     int

	// Footprint.
	Bytes        int
	DeltaBytes   int
	NodesChanged int

	// Exploration activity (this epoch only).
	Explore          time.Duration
	Campaigns        int
	CampaignsDeduped int
	Inputs           int
	InputsSaved      int
	Paths            int
	PathsSaved       int
	Findings         int
}

// epochMeta carries the checkpoint loop's measurements for one epoch to the
// exploring goroutine, which folds in exploration deltas and emits the
// EpochSummary.
type epochMeta struct {
	pause      time.Duration
	process    time.Duration
	traffic    time.Duration
	overBudget bool
	stride     int
}

// epochWork pairs an epoch with its checkpoint measurements in the Overlap
// mailbox.
type epochWork struct {
	ep   *checkpoint.Epoch
	meta epochMeta
}

// Runtime attaches DiCE to a running deployment and soaks it: traffic,
// checkpoint, explore, repeat. Construct with NewRuntime, then call Run
// once.
type Runtime struct {
	live *cluster.Cluster
	topo *topology.Topology
	opts Options

	ring   *checkpoint.Ring
	sched  *Scheduler
	cache  *PathCache
	report *Report
	props  []checker.Property
	bus    *federation.Bus

	start time.Time

	mu      sync.Mutex
	stats   Stats
	started bool
	// poolStats accumulates retired epochs' clone-pool activity; activePool
	// is the currently exploring epoch's pool (nil between epochs). PoolStats
	// folds the two, so the soak-wide view never loses an epoch.
	poolStats  cluster.PoolStats
	activePool *cluster.ClonePool
	// traceMu serializes Trace callback invocations (see tracef).
	traceMu sync.Mutex
	// pathHigh is each scenario's high-water mark of unique paths explored
	// in one campaign. "New paths" for scheduler rewarding means exceeding
	// it: every executed campaign trivially explores >= 1 path, so rewarding
	// the raw count would make the decay branch unreachable and saturate
	// every weight at the ceiling.
	pathHigh map[string]int
	// configDigest folds every option that shapes what a campaign explores
	// into the dedupe-cache key (see cacheKey).
	configDigest uint64
}

// exploreConfigDigest hashes the options that determine a campaign's
// exploration: identical (fingerprint, digest, scenario) triples run
// byte-identical campaigns, which is the dedupe cache's soundness condition.
// Worker count is excluded on purpose — campaigns are deterministic in it.
func exploreConfigDigest(o Options, strategyName string, props []checker.Property) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "inputs=%d|fuzz=%d|maxev=%d|strategy=%s", o.InputsPerScenario, o.FuzzSeeds, o.ShadowMaxEvents, strategyName)
	for _, e := range o.Explorers {
		fmt.Fprintf(h, "|explorer=%s", e)
	}
	for _, p := range props {
		fmt.Fprintf(h, "|prop=%s", p.Name())
	}
	for _, f := range o.CodeFaults {
		fmt.Fprintf(h, "|codefault=%s@%s", f.Name(), f.Target())
	}
	return h.Sum64()
}

// ErrRuntimeReused is returned when Run is called more than once.
var ErrRuntimeReused = errors.New("live: runtime already run; construct a new one")

// NewRuntime returns a live runtime attached to the deployed cluster.
func NewRuntime(liveCluster *cluster.Cluster, topo *topology.Topology, opts Options) (*Runtime, error) {
	if liveCluster == nil {
		return nil, errors.New("live: runtime requires a deployed cluster")
	}
	if topo == nil {
		return nil, errors.New("live: runtime requires a topology")
	}
	opts = opts.withDefaults()
	scenarios := opts.Scenarios
	if scenarios == nil {
		scenarios = faults.Scenarios(topo, opts.Seed)
	}
	if len(scenarios) == 0 {
		return nil, errors.New("live: no scenarios registered")
	}
	props := opts.Properties
	if props == nil {
		props = checker.DefaultProperties(topo)
	}
	return &Runtime{
		live:         liveCluster,
		topo:         topo,
		opts:         opts,
		ring:         checkpoint.NewRing(opts.RingCapacity),
		sched:        NewScheduler(opts.Seed, scenarios),
		cache:        opts.Cache,
		report:       NewReport(),
		bus:          federation.NewBus(),
		pathHigh:     make(map[string]int),
		configDigest: exploreConfigDigest(opts, opts.Strategy.Name(), props),
		props:        props,
	}, nil
}

// Ring returns the runtime's epoch ring.
func (rt *Runtime) Ring() *checkpoint.Ring { return rt.ring }

// Scheduler returns the runtime's scenario scheduler.
func (rt *Runtime) Scheduler() *Scheduler { return rt.sched }

// Cache returns the cross-epoch dedupe cache (persist it with
// PathCache.Save to resume a soak later).
func (rt *Runtime) Cache() *PathCache { return rt.cache }

// Report returns the violation store (live: findings appear while Run is
// still soaking).
func (rt *Runtime) Report() *Report { return rt.report }

// Stats returns a snapshot of the soak counters.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// Bus returns the runtime's long-lived federation bus. Campaigns run under
// Options.Partition mirror every disclosure onto it, so its counters are the
// soak's cumulative cross-domain disclosure accounting; without a partition
// it stays at zero.
func (rt *Runtime) Bus() *federation.Bus { return rt.bus }

// PoolStats returns clone-pool activity accumulated across every epoch,
// including the epoch currently exploring.
func (rt *Runtime) PoolStats() cluster.PoolStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s := rt.poolStats
	if rt.activePool != nil {
		s = s.Add(rt.activePool.Stats())
	}
	return s
}

// PoolOutstanding returns the currently exploring epoch's leased-not-released
// clone count (zero between epochs — retired pools are always quiesced).
func (rt *Runtime) PoolOutstanding() int {
	rt.mu.Lock()
	pool := rt.activePool
	rt.mu.Unlock()
	if pool == nil {
		return 0
	}
	return pool.Outstanding()
}

// busMirror mirrors a federated campaign's disclosures onto the runtime's
// long-lived bus, re-accounting each envelope there.
type busMirror struct{ bus *federation.Bus }

// Deliver implements federation.Transport.
func (m busMirror) Deliver(e federation.Envelope) { m.bus.Record(e) }

// tracef serializes all Trace callback invocations: in Overlap mode the
// checkpoint loop and the explorer goroutine both emit progress lines, and
// the callback contract is that it is never called concurrently (so a
// callback appending to a plain slice or writer stays correct).
func (rt *Runtime) tracef(format string, args ...interface{}) {
	if rt.opts.Trace == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	rt.traceMu.Lock()
	defer rt.traceMu.Unlock()
	rt.opts.Trace(line)
}

// Run soaks the deployment: per epoch, drive live traffic, take a low-pause
// checkpoint into the epoch ring, and explore the fresh epoch with
// scheduler-drawn scenario campaigns. It returns the report when MaxEpochs
// is reached, or the report plus the context's error when the caller ends
// the soak early. Run may be called once per runtime.
func (rt *Runtime) Run(ctx context.Context) (*Report, error) {
	rt.mu.Lock()
	if rt.started {
		rt.mu.Unlock()
		return nil, ErrRuntimeReused
	}
	rt.started = true
	rt.mu.Unlock()
	rt.start = time.Now()

	trafficRNG := rand.New(rand.NewSource(rt.opts.Seed))

	// In Overlap mode exploration runs on its own goroutine, consuming only
	// the freshest epoch; deliver() supersedes a stale pending epoch.
	var (
		mailbox chan epochWork
		wg      sync.WaitGroup
	)
	if rt.opts.Overlap {
		mailbox = make(chan epochWork, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := range mailbox {
				rt.exploreEpoch(ctx, w.ep, w.meta)
			}
		}()
		// Every exit of Run — normal completion, cancellation, or a
		// checkpoint error — must stop the explorer, or the goroutine (and
		// the epoch stores it references) leaks for the life of the process.
		defer func() {
			close(mailbox)
			wg.Wait()
		}()
	}

	stride := 1
	for epoch := 1; rt.opts.MaxEpochs == 0 || epoch <= rt.opts.MaxEpochs; epoch++ {
		if ctx.Err() != nil {
			break
		}

		// Live traffic: the deployment moves stride steps forward.
		tStart := time.Now()
		for s := 0; s < stride; s++ {
			rt.opts.Traffic(rt.live, trafficRNG, epoch)
			rt.live.Run(rt.live.Net.Now() + rt.opts.TrafficStep)
		}
		trafficTime := time.Since(tStart)

		// The pause: the consistent cut, nothing else. Content hashing rides
		// with the other off-critical-path work inside Ring.Push.
		pauseStart := time.Now()
		snap := rt.live.Snapshot()
		pause := time.Since(pauseStart)

		// Governor: stretch the cadence when the pause ran over budget,
		// relax it when pauses are comfortably under.
		overBudget := pause > rt.opts.PauseBudget
		stretched, relaxed := false, false
		if overBudget && stride < maxStride {
			stride *= 2
			stretched = true
		} else if !overBudget && pause*4 < rt.opts.PauseBudget && stride > 1 {
			stride /= 2
			relaxed = true
		}

		// Off the critical path (the snapshot is immutable; traffic could
		// already be flowing again): encode, content-hash, measure, delta,
		// ring.
		procStart := time.Now()
		ep, err := rt.ring.Push(snap)
		procTime := time.Since(procStart)
		if err != nil {
			return rt.report, err
		}

		rt.mu.Lock()
		rt.stats.Epochs++
		rt.stats.TrafficTime += trafficTime
		rt.stats.CheckpointPauseTotal += pause
		if pause > rt.stats.CheckpointPauseMax {
			rt.stats.CheckpointPauseMax = pause
		}
		rt.stats.CheckpointProcessTotal += procTime
		if overBudget {
			rt.stats.PauseBudgetExceeded++
		}
		if stretched {
			rt.stats.StrideStretches++
		}
		if relaxed {
			rt.stats.StrideRelaxes++
		}
		rt.stats.CheckpointStride = stride
		rt.stats.SnapshotBytesTotal += ep.Bytes
		rt.stats.DeltaBytesTotal += ep.DeltaBytes
		rt.mu.Unlock()

		rt.tracef("epoch %d: cut %v (%d bytes, delta %d, %d/%d nodes changed)",
			ep.Seq, pause.Round(time.Microsecond), ep.Bytes, ep.DeltaBytes, ep.NodesChanged, len(snap.Nodes))

		meta := epochMeta{pause: pause, process: procTime, traffic: trafficTime, overBudget: overBudget, stride: stride}
		if rt.opts.Overlap {
			rt.deliver(mailbox, epochWork{ep: ep, meta: meta})
		} else {
			rt.exploreEpoch(ctx, ep, meta)
		}
	}

	return rt.report, ctx.Err()
}

// deliver hands an epoch to the explorer goroutine, superseding a stale
// pending epoch rather than queueing behind it — the backpressure that keeps
// exploration working on the freshest state when it lags checkpointing.
func (rt *Runtime) deliver(mailbox chan epochWork, w epochWork) {
	for {
		select {
		case mailbox <- w:
			return
		default:
		}
		select {
		case stale := <-mailbox:
			rt.mu.Lock()
			rt.stats.EpochsSuperseded++
			rt.mu.Unlock()
			rt.tracef("epoch %d superseded by epoch %d before exploration", stale.ep.Seq, w.ep.Seq)
		default:
		}
	}
}

// exploreEpoch runs the epoch's campaigns and, when the caller subscribed,
// emits its EpochSummary — exploration deltas diffed around the explore call
// (exploration stats have a single writer, this goroutine, so the diff is
// exact even while the checkpoint loop updates traffic counters
// concurrently in Overlap mode).
func (rt *Runtime) exploreEpoch(ctx context.Context, ep *checkpoint.Epoch, meta epochMeta) {
	if rt.opts.OnEpoch == nil {
		rt.explore(ctx, ep)
		return
	}
	before := rt.Stats()
	rt.explore(ctx, ep)
	after := rt.Stats()
	rt.opts.OnEpoch(EpochSummary{
		Seq:              ep.Seq,
		UnixNano:         ep.Taken.UnixNano(),
		Pause:            meta.pause,
		Process:          meta.process,
		Traffic:          meta.traffic,
		OverBudget:       meta.overBudget,
		Stride:           meta.stride,
		Bytes:            ep.Bytes,
		DeltaBytes:       ep.DeltaBytes,
		NodesChanged:     ep.NodesChanged,
		Explore:          after.ExploreTime - before.ExploreTime,
		Campaigns:        after.Campaigns - before.Campaigns,
		CampaignsDeduped: after.CampaignsDeduped - before.CampaignsDeduped,
		Inputs:           after.InputsExplored - before.InputsExplored,
		InputsSaved:      after.InputsSaved - before.InputsSaved,
		Paths:            after.PathsExplored - before.PathsExplored,
		PathsSaved:       after.PathsSaved - before.PathsSaved,
		Findings:         after.Findings - before.Findings,
	})
}

// seedFor derives a campaign seed from the epoch's state fingerprint and the
// scenario — not from the epoch number, so identical state plus identical
// scenario means an identical campaign, which is what makes the dedupe cache
// sound.
func seedFor(fingerprint uint64, scenario string) int64 {
	h := fnv.New64a()
	h.Write([]byte(scenario))
	return int64((fingerprint ^ h.Sum64()) & 0x7fffffffffffffff)
}

// explore runs the epoch's scenario campaigns.
func (rt *Runtime) explore(ctx context.Context, ep *checkpoint.Epoch) {
	// All of an epoch's scenario campaigns explore the same immutable store,
	// so they share one clone pool: the cold clone builds are paid once per
	// worker per epoch, not once per worker per scenario. Built lazily — a
	// fully deduped epoch never builds clones at all.
	var pool *cluster.ClonePool
	// Retire the epoch's pool into the soak-wide accumulator on every exit
	// path, so PoolStats never loses an epoch (or double-counts one).
	defer func() {
		if pool == nil {
			return
		}
		rt.mu.Lock()
		rt.poolStats = rt.poolStats.Add(pool.Stats())
		rt.activePool = nil
		rt.mu.Unlock()
	}()
	for _, sc := range rt.sched.Draw(rt.opts.ScenariosPerEpoch) {
		if ctx.Err() != nil {
			return
		}
		key := cacheKey(ep.Fingerprint, rt.configDigest, sc.Name())
		if hit, ok := rt.cache.Lookup(key); ok {
			rt.mu.Lock()
			rt.stats.CampaignsDeduped++
			rt.stats.InputsSaved += hit.Inputs
			rt.stats.PathsSaved += hit.Paths
			rt.mu.Unlock()
			rt.sched.Reward(sc.Name(), 0, 0)
			rt.tracef("epoch %d: scenario %s deduped (state unchanged; %d inputs, %d paths saved)",
				ep.Seq, sc.Name(), hit.Inputs, hit.Paths)
			continue
		}
		if pool == nil {
			pool = cluster.NewClonePool(rt.topo, ep.Store, rt.opts.ClusterOptions)
			rt.mu.Lock()
			rt.activePool = pool
			rt.mu.Unlock()
		}

		prelude := recordPrelude(sc)
		exStart := time.Now()
		res, err := rt.runCampaign(ctx, ep, sc, prelude, pool)
		exTime := time.Since(exStart)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			rt.tracef("epoch %d: scenario %s failed: %v", ep.Seq, sc.Name(), err)
			continue
		}

		paths := 0
		newViolations := 0
		// Findings co-detected on the same clone execution share one trace;
		// grouping them keeps minimization amortized (one greedy pass per
		// detecting input, not per violation). Findings are minimized fully
		// BEFORE they are published to the report: the report is read
		// concurrently (OnFinding consumers, callers polling Report() while
		// the soak runs), so a published finding must never be mutated again.
		// Exploration is single-goroutine (even in Overlap mode), so the
		// Find-then-Add below cannot race with another publisher; claimed
		// dedupes within this campaign's own result set.
		var groups [][]*Finding
		claimed := make(map[string]bool)
		for _, unit := range res.Units {
			if unit == nil {
				continue
			}
			paths += unit.ExplorerStats.UniquePaths
			byInput := make(map[int][]*Finding)
			var inputOrder []int
			for i := range unit.Detections {
				d := &unit.Detections[i]
				key := d.Violation.Key()
				if claimed[key] || rt.report.Find(key) != nil {
					continue
				}
				claimed[key] = true
				f := &Finding{
					Epoch:      ep.Seq,
					Scenario:   sc.Name(),
					Explorer:   unit.Explorer,
					FromPeer:   unit.FromPeer,
					Domain:     unit.Domain,
					InputIndex: d.InputIndex,
					Class:      d.Class,
					Violation:  d.Violation,
					Elapsed:    time.Since(rt.start),
					Trace:      traceOf(prelude, unit.FromPeer, unit.Explorer, d),
				}
				f.TraceOriginal = len(f.Trace)
				newViolations++
				if len(byInput[d.InputIndex]) == 0 {
					inputOrder = append(inputOrder, d.InputIndex)
				}
				byInput[d.InputIndex] = append(byInput[d.InputIndex], f)
			}
			for _, idx := range inputOrder {
				groups = append(groups, byInput[idx])
			}
		}
		// Minimization replays are shadow-side work too: their cold rebuilds
		// and quiescent runs are charged to ExploreTime, or the shadow
		// overhead metric would understate the runtime's actual cost in
		// finding-heavy soaks.
		minStart := time.Now()
		for _, group := range groups {
			rt.minimizeGroup(ep, group)
			for _, f := range group {
				rt.report.Add(f)
				rt.mu.Lock()
				rt.stats.Findings++
				if f.Reverified {
					rt.stats.FindingsReverified++
				}
				rt.stats.TraceStepsBefore += f.TraceOriginal
				rt.stats.TraceStepsAfter += len(f.Trace)
				if rt.stats.FirstDetectionEpoch == 0 {
					rt.stats.FirstDetectionEpoch = ep.Seq
				}
				rt.mu.Unlock()
				rt.tracef("finding: %s", f)
				if rt.opts.OnFinding != nil {
					rt.opts.OnFinding(f)
				}
			}
		}
		minTime := time.Since(minStart)

		rt.cache.Store(key, CacheEntry{Inputs: res.InputsExplored, Paths: paths})
		rt.mu.Lock()
		// Reward "new paths" only beyond the scenario's high-water mark:
		// every executed campaign explores at least one path, so the raw
		// count would boost unconditionally and the decay branch could never
		// fire for an executed campaign.
		newPaths := paths - rt.pathHigh[sc.Name()]
		if newPaths > 0 {
			rt.pathHigh[sc.Name()] = paths
		} else {
			newPaths = 0
		}
		rt.stats.Campaigns++
		rt.stats.InputsExplored += res.InputsExplored
		rt.stats.PathsExplored += paths
		rt.stats.ExploreTime += exTime + minTime
		rt.mu.Unlock()
		rt.sched.Reward(sc.Name(), newViolations, newPaths)
	}
}

// runCampaign drives one scenario campaign against the epoch's store, on
// the epoch's shared clone pool.
func (rt *Runtime) runCampaign(ctx context.Context, ep *checkpoint.Epoch, sc faults.Scenario, prelude []TraceStep, pool *cluster.ClonePool) (*dice.CampaignResult, error) {
	opts := []dice.CampaignOption{
		dice.WithSnapshotStore(ep.Store),
		dice.WithClonePool(pool),
		dice.WithStrategy(rt.opts.Strategy),
		dice.WithBudget(dice.Budget{TotalInputs: rt.opts.InputsPerScenario}),
		dice.WithFuzzSeeds(rt.opts.FuzzSeeds),
		dice.WithSeed(seedFor(ep.Fingerprint, sc.Name())),
		dice.WithWorkers(rt.opts.Workers),
		dice.WithCodeFaults(rt.opts.CodeFaults...),
		dice.WithClusterOptions(rt.opts.ClusterOptions),
		dice.WithProperties(rt.props...),
		dice.WithShadowMaxEvents(rt.opts.ShadowMaxEvents),
	}
	if len(rt.opts.Explorers) > 0 {
		opts = append(opts, dice.WithExplorers(rt.opts.Explorers...))
	}
	if rt.opts.Partition != nil {
		// Federated campaign: disclosures cross domain boundaries as
		// summaries, mirrored onto the runtime's long-lived bus so the soak's
		// cumulative per-domain accounting is observable.
		opts = append(opts,
			dice.WithFederation(rt.opts.Partition),
			dice.WithFederationTransport(busMirror{bus: rt.bus}))
	}
	if rt.opts.OnCampaignEvent != nil {
		epoch, scenario := ep.Seq, sc.Name()
		opts = append(opts, dice.WithOnEvent(func(ev dice.Event) {
			rt.opts.OnCampaignEvent(epoch, scenario, ev)
		}))
	}
	if len(prelude) > 0 {
		opts = append(opts, dice.WithClonePrelude(func(shadow *cluster.Cluster) {
			replaySteps(shadow, prelude, rt.opts.ShadowMaxEvents)
		}))
	}
	// The campaign gets a nil live cluster on purpose: an epoch campaign
	// must never touch the deployment, which may be driving traffic on
	// another goroutine in Overlap mode.
	return dice.NewCampaign(nil, rt.topo, opts...).Run(ctx)
}

// traceRecorder captures a scenario's injections as trace steps.
type traceRecorder struct {
	steps []TraceStep
}

// InjectUpdate implements faults.ChurnTarget.
func (tr *traceRecorder) InjectUpdate(fromPeer, to string, update *bgp.Update) {
	tr.steps = append(tr.steps, TraceStep{From: fromPeer, To: to, Wire: bgp.Encode(update)})
}

// recordPrelude runs the scenario's Prime against a recorder and returns the
// injected sequence. Priming is deterministic, so recording once per
// campaign and replaying into every clone is exact.
func recordPrelude(sc faults.Scenario) []TraceStep {
	var tr traceRecorder
	sc.Prime(&tr)
	return tr.steps
}

// replaySteps applies a recorded trace to a clone, letting the system settle
// after every step. Per-step settling is the trace's defined semantics, and
// using it on BOTH the campaign prelude and the cold re-verification replays
// keeps their interleavings identical — injecting everything at once and
// settling once would process the detecting input before the prelude's
// ripples propagate, a different execution than the one that detected.
func replaySteps(c *cluster.Cluster, steps []TraceStep, maxEvents int) {
	for _, s := range steps {
		c.InjectRaw(s.From, s.To, s.Wire)
		c.Net.RunQuiescent(maxEvents)
	}
}

// traceOf builds a detection's full replayable trace: the scenario prelude
// followed by the explored input that surfaced the violation, framed exactly
// as the campaign's clone runner injected it.
func traceOf(prelude []TraceStep, fromPeer, explorer string, d *dice.Detection) []TraceStep {
	steps := cloneSteps(prelude)
	if d.Input != nil {
		steps = append(steps, TraceStep{From: fromPeer, To: explorer, Wire: bgp.FrameUpdate(d.Input.Region("update"))})
	}
	return steps
}

// replayKeys replays a trace against a cold clone of the epoch — a full
// FromSnapshot rebuild, no pooling, no store shortcuts beyond the immutable
// snapshot itself — and returns the violation keys the replayed state
// exhibits.
func (rt *Runtime) replayKeys(ep *checkpoint.Epoch, steps []TraceStep) map[string]bool {
	shadow, err := cluster.FromSnapshot(rt.topo, ep.Store.Snapshot(), rt.opts.ClusterOptions)
	if err != nil {
		return nil
	}
	faults.InstallCodeFaults(shadow.Routers, rt.opts.CodeFaults...)
	replaySteps(shadow, steps, rt.opts.ShadowMaxEvents)
	shadow.Net.RunQuiescent(rt.opts.ShadowMaxEvents)
	out := make(map[string]bool)
	for _, v := range checker.CheckAll(shadow, rt.props).Violations() {
		out[v.Key()] = true
	}
	return out
}

// reproduces reports whether replaying the trace on a cold clone reproduces
// the given violation.
func (rt *Runtime) reproduces(ep *checkpoint.Epoch, steps []TraceStep, violationKey string) bool {
	return rt.replayKeys(ep, steps)[violationKey]
}

// minimize shrinks a single finding's trace; see minimizeGroup.
func (rt *Runtime) minimize(ep *checkpoint.Epoch, f *Finding) {
	rt.minimizeGroup(ep, []*Finding{f})
}

// minimizeGroup greedily shrinks the shared trace of findings co-detected on
// one clone execution: drop each step whose removal still reproduces every
// reverifiable violation of the group on a cold clone, within the replay
// budget. Minimizing per group rather than per finding amortizes the cold
// replays — one detecting input often surfaces dozens of violation keys, all
// with the identical trace.
//
// A finding whose violation does not reproduce concretely even from the full
// trace (the detection depended on a counterfactual symbolic choice) keeps
// its original trace with Reverified false; the others get the jointly
// minimized trace, re-verified by construction — every accepted removal was
// validated against a cold clone.
func (rt *Runtime) minimizeGroup(ep *checkpoint.Epoch, group []*Finding) {
	if rt.opts.MinimizeReplays < 0 || len(group) == 0 {
		return
	}
	budget := rt.opts.MinimizeReplays
	replays := 0
	replay := func(steps []TraceStep) map[string]bool {
		replays++
		return rt.replayKeys(ep, steps)
	}
	defer func() {
		rt.mu.Lock()
		rt.stats.MinimizeReplays += replays
		rt.mu.Unlock()
	}()

	full := replay(group[0].Trace)
	var want []string
	var verifiable []*Finding
	for _, f := range group {
		if full[f.Violation.Key()] {
			want = append(want, f.Violation.Key())
			verifiable = append(verifiable, f)
		} else {
			f.Reverified = false
		}
	}
	if len(verifiable) == 0 {
		return
	}
	covers := func(got map[string]bool) bool {
		for _, k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	steps := cloneSteps(group[0].Trace)
	for i := 0; i < len(steps) && replays < budget; {
		candidate := append(cloneSteps(steps[:i]), cloneSteps(steps[i+1:])...)
		if covers(replay(candidate)) {
			steps = candidate
		} else {
			i++
		}
	}
	// The joint pass minimizes to the union requirement: a steady-state
	// violation grouped with an input-dependent one keeps whatever steps its
	// groupmates need. One extra replay of the empty trace refines that —
	// any finding the cold clone already exhibits gets the empty trace, its
	// true minimum, no matter what it was co-detected with.
	var steady map[string]bool
	if len(steps) > 0 && replays < budget {
		steady = replay(nil)
	}
	for _, f := range verifiable {
		if steady[f.Violation.Key()] {
			f.Trace = nil
		} else {
			f.Trace = cloneSteps(steps)
		}
		f.Reverified = true
	}
}
