package live

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/topology"
)

// soakFixture deploys a Line(3) with a mis-origination planted at R3 (it
// hijacks R1's prefix) and converges it.
func soakFixture(t *testing.T) (*cluster.Cluster, *topology.Topology, cluster.Options) {
	t.Helper()
	topo := topology.Line(3)
	victim := topo.Nodes[0].Prefixes[0]
	opts := cluster.Options{Seed: 1, ConfigOverride: faults.ApplyConfigFaults(
		faults.MisOrigination{Router: "R3", Prefix: victim})}
	c, err := cluster.Build(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Converge()
	return c, topo, opts
}

func TestRuntimeSoakDetectsMisOrigination(t *testing.T) {
	deployed, topo, opts := soakFixture(t)
	before := deployed.TotalBestChanges()

	rt, err := NewRuntime(deployed, topo, Options{
		Seed:              1,
		ClusterOptions:    opts,
		MaxEpochs:         2,
		InputsPerScenario: 4,
		FuzzSeeds:         2,
		Explorers:         []string{"R2"},
		Workers:           1,
		Traffic:           func(*cluster.Cluster, *rand.Rand, int) {}, // idle: determinism
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := rt.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats := rt.Stats()
	if stats.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2", stats.Epochs)
	}
	if !report.Detected(checker.ClassOperatorMistake) {
		t.Fatalf("mis-origination not detected online; findings: %v", report.Findings())
	}
	if stats.FirstDetectionEpoch != 1 {
		t.Errorf("first detection in epoch %d, want 1 (steady-state violation)", stats.FirstDetectionEpoch)
	}
	for _, f := range report.Findings() {
		if f.Epoch < 1 || f.Epoch > 2 {
			t.Errorf("finding with bad epoch provenance: %v", f)
		}
		if f.Scenario == "" || f.Explorer == "" || f.InputIndex < 1 {
			t.Errorf("finding with incomplete provenance: %v", f)
		}
		if !f.Reverified {
			t.Errorf("finding not re-verified against a cold clone: %v", f)
		}
		if len(f.Trace) > f.TraceOriginal {
			t.Errorf("minimized trace longer than original: %v", f)
		}
	}
	// The mis-origination is a steady-state violation: its minimal trace is
	// empty (the cold clone already violates).
	if f := report.Find(firstKey(report)); f != nil && f.Class == checker.ClassOperatorMistake && len(f.Trace) != 0 {
		for _, g := range report.Findings() {
			if g.Class == checker.ClassOperatorMistake && len(g.Trace) == 0 {
				goto ok
			}
		}
		t.Errorf("no operator-mistake finding minimized to the empty trace")
	ok:
	}
	// Exploration never perturbs the deployment.
	if deployed.TotalBestChanges() != before {
		t.Errorf("live cluster mutated by the soak")
	}
	// Ring retained both epochs, tagged in order.
	if got := rt.Ring().Seqs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("ring seqs = %v", got)
	}
	// Run is single-use.
	if _, err := rt.Run(context.Background()); err != ErrRuntimeReused {
		t.Errorf("second Run err = %v, want ErrRuntimeReused", err)
	}
}

func firstKey(r *Report) string {
	fs := r.Findings()
	if len(fs) == 0 {
		return ""
	}
	return fs[0].Violation.Key()
}

// TestRuntimeDedupeOnIdleEpochs pins the cross-epoch dedupe claim: epochs
// whose state fingerprint is unchanged skip their scenario campaigns
// entirely, charging the saved inputs and paths to the dedupe counters.
func TestRuntimeDedupeOnIdleEpochs(t *testing.T) {
	deployed, topo, opts := soakFixture(t)
	rt, err := NewRuntime(deployed, topo, Options{
		Seed:              1,
		ClusterOptions:    opts,
		MaxEpochs:         3,
		InputsPerScenario: 3,
		FuzzSeeds:         2,
		Explorers:         []string{"R2"},
		Workers:           1,
		MinimizeReplays:   -1,                                         // irrelevant here
		Traffic:           func(*cluster.Cluster, *rand.Rand, int) {}, // idle: state never changes
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()
	n := rt.Scheduler().Len()
	if stats.Campaigns != n {
		t.Errorf("campaigns = %d, want %d (only epoch 1 explores)", stats.Campaigns, n)
	}
	if stats.CampaignsDeduped != 2*n {
		t.Errorf("deduped = %d, want %d (epochs 2 and 3 fully skipped)", stats.CampaignsDeduped, 2*n)
	}
	if stats.InputsSaved <= 0 || stats.InputsSaved != 2*stats.InputsExplored {
		t.Errorf("inputs saved = %d, explored = %d; want saved == 2x explored", stats.InputsSaved, stats.InputsExplored)
	}
	if stats.DedupeSavedFraction() < 0.6 {
		t.Errorf("dedupe fraction = %.2f, want >= 0.66", stats.DedupeSavedFraction())
	}
	if rt.Cache().Len() != n {
		t.Errorf("cache entries = %d, want %d", rt.Cache().Len(), n)
	}
}

// TestRuntimeChurnChangesFingerprints is the dedupe counter-case: with real
// traffic between epochs the fingerprints differ and every epoch explores.
func TestRuntimeChurnChangesFingerprints(t *testing.T) {
	deployed, topo, opts := soakFixture(t)
	rt, err := NewRuntime(deployed, topo, Options{
		Seed:              1,
		ClusterOptions:    opts,
		MaxEpochs:         2,
		InputsPerScenario: 2,
		FuzzSeeds:         2,
		ScenariosPerEpoch: 1,
		Explorers:         []string{"R2"},
		Workers:           1,
		MinimizeReplays:   -1,
		Traffic:           DefaultTraffic(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	eps := rt.Ring().Seqs()
	if len(eps) != 2 {
		t.Fatalf("ring seqs = %v", eps)
	}
	a, b := rt.Ring().Get(eps[0]), rt.Ring().Get(eps[1])
	if a.Fingerprint == b.Fingerprint {
		t.Fatalf("churned epochs share a fingerprint")
	}
	if b.NodesChanged == 0 {
		t.Errorf("churned epoch reports no changed nodes")
	}
	if rt.Stats().CampaignsDeduped != 0 {
		t.Errorf("churned epochs deduped: %d", rt.Stats().CampaignsDeduped)
	}
}

// TestMinimizerShrinksTrace drives the greedy minimizer directly: a trace
// padded with removable churn around the one hijack injection that matters
// must shrink to exactly that injection, re-verified on a cold clone.
func TestMinimizerShrinksTrace(t *testing.T) {
	topo := topology.Line(3)
	opts := cluster.Options{Seed: 1}
	deployed := cluster.MustBuild(topo, opts)
	deployed.Converge()

	rt, err := NewRuntime(deployed, topo, Options{Seed: 1, ClusterOptions: opts, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := rt.Ring().Push(deployed.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	victim := topo.Nodes[2].Prefixes[0] // R3's prefix, hijacked by R1
	ownPfx := topo.Nodes[0].Prefixes[0]
	legit := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{topo.Nodes[0].AS}, NextHop: 1}
	wire := func(u *bgp.Update) []byte { return bgp.Encode(u) }
	trace := []TraceStep{
		// Removable noise: R1 re-announces and withdraws its own prefix.
		{From: "R1", To: "R2", Wire: wire(&bgp.Update{Attrs: legit, NLRI: []bgp.Prefix{ownPfx}})},
		{From: "R1", To: "R2", Wire: wire(&bgp.Update{Withdrawn: []bgp.Prefix{ownPfx}})},
		{From: "R1", To: "R2", Wire: wire(&bgp.Update{Attrs: legit, NLRI: []bgp.Prefix{ownPfx}})},
		// The step that matters: R1 hijacks R3's prefix.
		{From: "R1", To: "R2", Wire: wire(&bgp.Update{Attrs: legit, NLRI: []bgp.Prefix{victim}})},
	}

	// Recover the violation the full trace produces.
	var violation checker.Violation
	found := false
	shadow, err := cluster.FromSnapshot(topo, ep.Store.Snapshot(), opts)
	if err != nil {
		t.Fatal(err)
	}
	replaySteps(shadow, trace, 20000)
	for _, v := range checker.CheckAll(shadow, rt.props).Violations() {
		if v.Class == checker.ClassOperatorMistake {
			violation, found = v, true
			break
		}
	}
	if !found {
		t.Fatal("fixture trace produces no operator-mistake violation")
	}

	f := &Finding{Violation: violation, Class: violation.Class, Trace: cloneSteps(trace), TraceOriginal: len(trace)}
	rt.minimize(ep, f)
	if !f.Reverified {
		t.Fatalf("minimized trace not re-verified")
	}
	if len(f.Trace) != 1 {
		t.Fatalf("minimized to %d steps, want 1: %v", len(f.Trace), f.Trace)
	}
	if !bytes.Equal(f.Trace[0].Wire, trace[3].Wire) {
		t.Fatalf("minimizer kept the wrong step: %v", f.Trace[0])
	}
	if !rt.reproduces(ep, f.Trace, violation.Key()) {
		t.Fatalf("minimized trace does not reproduce from a cold clone")
	}
}

func TestGovernorStretchesCadenceOnPauseOverrun(t *testing.T) {
	deployed, topo, opts := soakFixture(t)
	rt, err := NewRuntime(deployed, topo, Options{
		Seed:              1,
		ClusterOptions:    opts,
		MaxEpochs:         3,
		PauseBudget:       time.Nanosecond, // every real pause overruns
		InputsPerScenario: 2,
		FuzzSeeds:         2,
		ScenariosPerEpoch: 1,
		Explorers:         []string{"R2"},
		Workers:           1,
		MinimizeReplays:   -1,
		Traffic:           func(*cluster.Cluster, *rand.Rand, int) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()
	if stats.PauseBudgetExceeded != 3 {
		t.Errorf("budget exceeded = %d, want 3", stats.PauseBudgetExceeded)
	}
	if stats.CheckpointStride != 8 {
		t.Errorf("final stride = %d, want 8 (doubled each epoch, capped)", stats.CheckpointStride)
	}
	if stats.StrideStretches != 3 {
		t.Errorf("stride stretches = %d, want 3 (one per doubling: 1→2→4→8)", stats.StrideStretches)
	}
	if stats.StrideRelaxes != 0 {
		t.Errorf("stride relaxes = %d, want 0", stats.StrideRelaxes)
	}
	if stats.CheckpointPauseMax <= 0 || stats.PauseMean() <= 0 {
		t.Errorf("pause accounting empty: %+v", stats)
	}
}

// TestGovernorOverrunsAtStrideCap pins the promoted governor counters apart:
// once the stride caps at 8, further overruns keep incrementing
// PauseBudgetExceeded but produce no stretch — StrideStretches counts actual
// cadence doublings, exactly one per stretch, never one per overrun.
func TestGovernorOverrunsAtStrideCap(t *testing.T) {
	deployed, topo, opts := soakFixture(t)
	rt, err := NewRuntime(deployed, topo, Options{
		Seed:              1,
		ClusterOptions:    opts,
		MaxEpochs:         5,
		PauseBudget:       time.Nanosecond, // every real pause overruns
		InputsPerScenario: 2,
		FuzzSeeds:         2,
		ScenariosPerEpoch: 1,
		Explorers:         []string{"R2"},
		Workers:           1,
		MinimizeReplays:   -1,
		Traffic:           func(*cluster.Cluster, *rand.Rand, int) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()
	if stats.PauseBudgetExceeded != 5 {
		t.Errorf("budget exceeded = %d, want 5 (every epoch overran)", stats.PauseBudgetExceeded)
	}
	if stats.StrideStretches != 3 {
		t.Errorf("stride stretches = %d, want 3 (1→2→4→8, then capped)", stats.StrideStretches)
	}
	if stats.CheckpointStride != 8 {
		t.Errorf("final stride = %d, want 8", stats.CheckpointStride)
	}
}

func TestDeliverSupersedesStaleEpoch(t *testing.T) {
	rt := &Runtime{}
	deployedTopo := topology.Line(2)
	c := cluster.MustBuild(deployedTopo, cluster.Options{Seed: 1})
	c.Converge()
	ring := checkpoint.NewRing(2)
	ep1, err := ring.Push(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := ring.Push(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	mailbox := make(chan epochWork, 1)
	rt.deliver(mailbox, epochWork{ep: ep1})
	rt.deliver(mailbox, epochWork{ep: ep2}) // supersedes ep1
	got := <-mailbox
	if got.ep != ep2 {
		t.Fatalf("mailbox holds epoch %d, want %d", got.ep.Seq, ep2.Seq)
	}
	if rt.stats.EpochsSuperseded != 1 {
		t.Fatalf("superseded = %d, want 1", rt.stats.EpochsSuperseded)
	}
}

func TestRuntimeOverlapSoak(t *testing.T) {
	deployed, topo, opts := soakFixture(t)
	rt, err := NewRuntime(deployed, topo, Options{
		Seed:              1,
		ClusterOptions:    opts,
		MaxEpochs:         3,
		Overlap:           true,
		InputsPerScenario: 3,
		FuzzSeeds:         2,
		ScenariosPerEpoch: 2,
		Explorers:         []string{"R2"},
		Workers:           1,
		MinimizeReplays:   -1,
		Traffic:           DefaultTraffic(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	report, err := rt.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Pipelined exploration still finds the planted fault; every epoch was
	// either explored or superseded by a fresher one.
	if !report.Detected(checker.ClassOperatorMistake) {
		t.Fatalf("overlap soak missed the planted fault")
	}
	stats := rt.Stats()
	if stats.Epochs != 3 {
		t.Errorf("epochs = %d", stats.Epochs)
	}
	explored := stats.Campaigns + stats.CampaignsDeduped
	if explored == 0 {
		t.Errorf("no epochs explored at all")
	}
}

func TestRuntimeCancellation(t *testing.T) {
	deployed, topo, opts := soakFixture(t)
	rt, err := NewRuntime(deployed, topo, Options{
		Seed:              1,
		ClusterOptions:    opts,
		MaxEpochs:         0, // unbounded: only the context ends the soak
		InputsPerScenario: 2,
		FuzzSeeds:         2,
		ScenariosPerEpoch: 1,
		Explorers:         []string{"R2"},
		Workers:           1,
		MinimizeReplays:   -1,
		Traffic:           func(*cluster.Cluster, *rand.Rand, int) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = rt.Run(ctx)
		close(done)
	}()
	for rt.Stats().Epochs == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("soak did not stop on cancellation")
	}
	if runErr != context.Canceled {
		t.Errorf("Run err = %v, want context.Canceled", runErr)
	}
}
