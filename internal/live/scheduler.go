package live

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"

	"github.com/dice-project/dice/internal/faults"
)

// Scheduler weight dynamics. A scenario that just surfaced a new violation is
// the most promising thing to run again (the fault may have siblings); one
// that at least explored fresh paths keeps earning a small boost; one that
// produced nothing — or was skipped by the dedupe cache because the state it
// would explore is unchanged — decays toward the floor. The floor keeps every
// scenario drawable: a quiet scenario is cheap insurance, not dead weight.
const (
	weightInitial        = 1.0
	weightViolationBoost = 2.0
	weightPathBoost      = 1.25
	weightDecay          = 0.85
	weightFloor          = 0.05
	weightCeiling        = 16.0
)

// Scheduler is the live runtime's adaptive scenario queue: a weighted
// priority queue over the registered scenario generators whose weights adapt
// online to what each scenario has recently produced. Draws are weighted
// sampling without replacement from a seeded source, so a soak is
// reproducible given its seed and reward history.
//
// A Scheduler is safe for concurrent use.
type Scheduler struct {
	mu      sync.Mutex
	rng     *rand.Rand
	entries []*schedEntry
	byName  map[string]*schedEntry
}

type schedEntry struct {
	scenario faults.Scenario
	weight   float64
}

// NewScheduler returns a scheduler over the scenarios, all at the initial
// weight, drawing from a source seeded with seed.
func NewScheduler(seed int64, scenarios []faults.Scenario) *Scheduler {
	s := &Scheduler{
		rng:    rand.New(rand.NewSource(seed)),
		byName: make(map[string]*schedEntry, len(scenarios)),
	}
	for _, sc := range scenarios {
		if _, dup := s.byName[sc.Name()]; dup {
			panic(fmt.Sprintf("live: duplicate scenario %q", sc.Name()))
		}
		e := &schedEntry{scenario: sc, weight: weightInitial}
		s.entries = append(s.entries, e)
		s.byName[sc.Name()] = e
	}
	return s
}

// Len returns the number of registered scenarios.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Draw returns k scenarios sampled without replacement, proportionally to
// their current weights. k not positive, or at least the registry size,
// returns every scenario in registration order (the "run them all" setting
// of small deployments and the E12 experiment).
func (s *Scheduler) Draw(k int) []faults.Scenario {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k <= 0 || k >= len(s.entries) {
		out := make([]faults.Scenario, len(s.entries))
		for i, e := range s.entries {
			out[i] = e.scenario
		}
		return out
	}
	pool := append([]*schedEntry(nil), s.entries...)
	out := make([]faults.Scenario, 0, k)
	for len(out) < k {
		total := 0.0
		for _, e := range pool {
			total += e.weight
		}
		pick := s.rng.Float64() * total
		idx := len(pool) - 1
		for i, e := range pool {
			pick -= e.weight
			if pick < 0 {
				idx = i
				break
			}
		}
		out = append(out, pool[idx].scenario)
		pool = append(pool[:idx], pool[idx+1:]...)
	}
	return out
}

// Reward adapts the named scenario's weight after a campaign (or a dedupe
// skip, with both counts zero): new violations double it, new explored paths
// nudge it up, nothing decays it.
func (s *Scheduler) Reward(name string, newViolations, newPaths int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.byName[name]
	if e == nil {
		return
	}
	switch {
	case newViolations > 0:
		e.weight *= weightViolationBoost
	case newPaths > 0:
		e.weight *= weightPathBoost
	default:
		e.weight *= weightDecay
	}
	if e.weight < weightFloor {
		e.weight = weightFloor
	}
	if e.weight > weightCeiling {
		e.weight = weightCeiling
	}
}

// Weight returns the named scenario's current weight (zero when unknown).
func (s *Scheduler) Weight(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.byName[name]; e != nil {
		return e.weight
	}
	return 0
}

// Weights returns a copy of the current weight table.
func (s *Scheduler) Weights() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.entries))
	for name, e := range s.byName {
		out[name] = e.weight
	}
	return out
}

// CacheEntry records what one (epoch state, scenario) campaign explored; a
// later epoch with the same state fingerprint skips the campaign and charges
// these to the dedupe savings instead.
type CacheEntry struct {
	Inputs int `json:"inputs"`
	Paths  int `json:"paths"`
}

// PathCache is the cross-epoch path-dedupe cache: it remembers which (state
// fingerprint, scenario) combinations have been explored, so epochs whose
// state did not change since they were last explored are not re-explored.
// Campaign seeds derive from the state fingerprint, not the epoch number, so
// a cache hit really would have re-run a byte-identical campaign.
//
// Retention is bounded: beyond the capacity the oldest entries are evicted
// (a fingerprint of state that has since changed never recurs, so an
// unbounded soak would otherwise accumulate dead keys forever). The cache
// persists: Save/Load serialize it as JSON, so a soak can resume where the
// previous one left off. It is safe for concurrent use.
type PathCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]CacheEntry
	order    []string // insertion order, oldest first, for eviction
}

// defaultPathCacheCapacity bounds the dedupe cache of an unbounded soak:
// enough for thousands of (fingerprint, scenario) pairs — many days of
// epochs — at negligible memory.
const defaultPathCacheCapacity = 4096

// NewPathCache returns an empty cache with the default retention bound.
func NewPathCache() *PathCache {
	return &PathCache{capacity: defaultPathCacheCapacity, entries: make(map[string]CacheEntry)}
}

// cacheKey builds the lookup key for one explored combination: the epoch's
// state fingerprint, the exploration-config digest, and the scenario. The
// config digest is what keeps a persisted cache sound across soaks — a
// resumed soak with a bigger input budget or a different property set must
// re-explore state a shallower configuration only skimmed, so entries from
// other configurations must never hit.
func cacheKey(fingerprint, configDigest uint64, scenario string) string {
	return fmt.Sprintf("%016x|%016x|%s", fingerprint, configDigest, scenario)
}

// Lookup returns the cached entry for the key, if present.
func (c *PathCache) Lookup(key string) (CacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

// Store records an entry, evicting the oldest beyond the capacity.
func (c *PathCache) Store(key string, e CacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists {
		c.order = append(c.order, key)
	}
	c.entries[key] = e
	for c.capacity > 0 && len(c.entries) > c.capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
}

// Len returns the number of cached entries.
func (c *PathCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Save writes the cache as JSON.
func (c *PathCache) Save(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return json.NewEncoder(w).Encode(c.entries)
}

// Load replaces the cache contents with a previously saved JSON form
// (restored entries age in sorted-key order for eviction purposes).
func (c *PathCache) Load(r io.Reader) error {
	entries := make(map[string]CacheEntry)
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("live: load path cache: %w", err)
	}
	order := make([]string, 0, len(entries))
	for k := range entries {
		order = append(order, k)
	}
	sort.Strings(order)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = entries
	c.order = order
	for c.capacity > 0 && len(c.entries) > c.capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	return nil
}
