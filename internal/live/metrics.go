package live

import (
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/obs"
)

// RegisterMetrics registers the runtime's soak series on the registry. All
// collectors read existing stats snapshots at exposition time — no locks or
// atomics are added to the soak's hot paths. The rt callback returns the
// runtime to read (nil while no soak is attached, which exposes zeros), so a
// daemon registers once and re-points the callback across soaks without
// tripping the registry's duplicate-name panic.
func RegisterMetrics(reg *obs.Registry, rt func() *Runtime) {
	stats := func() Stats {
		if r := rt(); r != nil {
			return r.Stats()
		}
		return Stats{}
	}

	// Checkpoint loop.
	reg.CounterFunc("dice_live_epochs_total", "Checkpoints taken into the epoch ring.",
		func() float64 { return float64(stats().Epochs) })
	reg.CounterFunc("dice_live_checkpoint_pause_seconds_total", "Cumulative consistent-cut pause time.",
		func() float64 { return stats().CheckpointPauseTotal.Seconds() })
	reg.GaugeFunc("dice_live_checkpoint_pause_max_seconds", "Largest single checkpoint pause.",
		func() float64 { return stats().CheckpointPauseMax.Seconds() })
	reg.CounterFunc("dice_live_checkpoint_process_seconds_total", "Cumulative off-critical-path checkpoint processing time.",
		func() float64 { return stats().CheckpointProcessTotal.Seconds() })
	reg.CounterFunc("dice_live_pause_budget_overruns_total", "Checkpoint pauses that ran over PauseBudget.",
		func() float64 { return float64(stats().PauseBudgetExceeded) })
	reg.CounterFunc("dice_live_stride_stretches_total", "Governor cadence doublings in response to pause overruns.",
		func() float64 { return float64(stats().StrideStretches) })
	reg.CounterFunc("dice_live_stride_relaxes_total", "Governor cadence halvings on comfortably under-budget pauses.",
		func() float64 { return float64(stats().StrideRelaxes) })
	reg.GaugeFunc("dice_live_checkpoint_stride", "Current checkpoint cadence in traffic steps.",
		func() float64 { return float64(stats().CheckpointStride) })
	reg.CounterFunc("dice_live_snapshot_bytes_total", "Cumulative encoded snapshot bytes checkpointed.",
		func() float64 { return float64(stats().SnapshotBytesTotal) })
	reg.CounterFunc("dice_live_delta_bytes_total", "Cumulative delta-shipping cost of the checkpoint stream.",
		func() float64 { return float64(stats().DeltaBytesTotal) })
	reg.CounterFunc("dice_live_epochs_superseded_total", "Epochs replaced by a fresher one before exploration (Overlap backpressure).",
		func() float64 { return float64(stats().EpochsSuperseded) })

	// Epoch lag: the sequence number and checkpoint wall-clock timestamp of
	// the newest ring epoch. Lag is derived at query time (time() − this
	// gauge) — exposing a now−Taken age directly would change every scrape
	// and break the byte-deterministic exposition contract.
	reg.GaugeFunc("dice_live_last_epoch_seq", "Sequence number of the newest ring epoch.",
		func() float64 {
			if r := rt(); r != nil {
				if ep := r.Ring().Latest(); ep != nil {
					return float64(ep.Seq)
				}
			}
			return 0
		})
	reg.GaugeFunc("dice_live_last_epoch_unix_seconds", "Wall-clock time the newest epoch was checkpointed (epoch lag = now - this).",
		func() float64 {
			if r := rt(); r != nil {
				if ep := r.Ring().Latest(); ep != nil {
					return float64(ep.Taken.UnixNano()) / 1e9
				}
			}
			return 0
		})

	// Exploration.
	reg.CounterFunc("dice_live_campaigns_total", "Scenario campaigns executed.",
		func() float64 { return float64(stats().Campaigns) })
	reg.CounterFunc("dice_live_campaigns_deduped_total", "Scenario campaigns skipped by the cross-epoch dedupe cache.",
		func() float64 { return float64(stats().CampaignsDeduped) })
	reg.CounterFunc("dice_live_inputs_explored_total", "Inputs explored across all campaigns.",
		func() float64 { return float64(stats().InputsExplored) })
	reg.CounterFunc("dice_live_inputs_saved_total", "Inputs the dedupe cache avoided re-exploring.",
		func() float64 { return float64(stats().InputsSaved) })
	reg.CounterFunc("dice_live_paths_explored_total", "Unique execution paths explored.",
		func() float64 { return float64(stats().PathsExplored) })
	reg.CounterFunc("dice_live_traffic_seconds_total", "Wall clock spent driving live traffic.",
		func() float64 { return stats().TrafficTime.Seconds() })
	reg.CounterFunc("dice_live_explore_seconds_total", "Wall clock spent on shadow exploration and minimization.",
		func() float64 { return stats().ExploreTime.Seconds() })
	reg.GaugeFunc("dice_live_pathcache_hit_ratio", "Fraction of would-be inputs the dedupe cache skipped.",
		func() float64 { return stats().DedupeSavedFraction() })
	reg.GaugeFunc("dice_live_pathcache_entries", "Entries in the cross-epoch dedupe cache.",
		func() float64 {
			if r := rt(); r != nil {
				return float64(r.Cache().Len())
			}
			return 0
		})

	// Findings.
	reg.CounterFunc("dice_live_findings_total", "Violations found, minimized and published.",
		func() float64 { return float64(stats().Findings) })
	reg.CounterFunc("dice_live_findings_reverified_total", "Findings whose minimized trace re-verified on a cold clone.",
		func() float64 { return float64(stats().FindingsReverified) })
	reg.CounterFunc("dice_live_minimize_replays_total", "Cold-clone replays spent by the trace minimizer.",
		func() float64 { return float64(stats().MinimizeReplays) })
	reg.GaugeFunc("dice_live_first_detection_epoch", "Epoch of the first finding (0: none yet).",
		func() float64 { return float64(stats().FirstDetectionEpoch) })

	// Scheduler weights, one labeled series per scenario.
	reg.GaugeVecFunc("dice_live_scheduler_weight", "Adaptive scenario scheduler weight.", "scenario",
		func() map[string]float64 {
			if r := rt(); r != nil {
				return r.Scheduler().Weights()
			}
			return nil
		})

	// The runtime-owned subsystems ride along under their own prefixes.
	checkpoint.RegisterRingMetrics(reg, func() *checkpoint.Ring {
		if r := rt(); r != nil {
			return r.Ring()
		}
		return nil
	})
	cluster.RegisterPoolMetrics(reg, "dice_pool",
		func() cluster.PoolStats {
			if r := rt(); r != nil {
				return r.PoolStats()
			}
			return cluster.PoolStats{}
		},
		func() int {
			if r := rt(); r != nil {
				return r.PoolOutstanding()
			}
			return 0
		})
	federation.RegisterBusMetrics(reg, func() *federation.Bus {
		if r := rt(); r != nil {
			return r.Bus()
		}
		return nil
	})
}
