package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/checker"
)

// TraceStep is one injected message of a finding's replayable trace: a raw
// wire message delivered to a router as if sent by a peer. A finding's trace
// replays from a cold clone of its epoch: inject every step, run to
// quiescence, check — the violation reappears.
type TraceStep struct {
	// From and To name the session the message is delivered on.
	From, To string
	// Wire is the full wire message (header included).
	Wire []byte
}

// String renders the step compactly.
func (s TraceStep) String() string {
	return fmt.Sprintf("%s->%s (%d bytes)", s.From, s.To, len(s.Wire))
}

// cloneSteps deep-copies a trace.
func cloneSteps(steps []TraceStep) []TraceStep {
	out := make([]TraceStep, len(steps))
	for i, s := range steps {
		out[i] = TraceStep{From: s.From, To: s.To, Wire: append([]byte(nil), s.Wire...)}
	}
	return out
}

// Finding is one violation detected by the live runtime, with full per-epoch
// provenance: which epoch's state it was found in, which scenario primed the
// clone, which exploration unit and input surfaced it, and the minimized
// trace that reproduces it from a cold clone of that epoch.
type Finding struct {
	// Epoch is the checkpoint epoch the violation was detected in.
	Epoch int
	// Scenario is the scheduler scenario that primed the detecting clone.
	Scenario string
	// Explorer, FromPeer and Domain identify the exploration unit.
	Explorer, FromPeer, Domain string
	// InputIndex is the 1-based input number within the unit.
	InputIndex int
	// Class and Violation are the finding itself.
	Class     checker.FaultClass
	Violation checker.Violation
	// Elapsed is the wall-clock time from the start of the soak to the
	// detection.
	Elapsed time.Duration
	// Trace is the minimized replayable trace: scenario prelude plus explored
	// input, greedily shrunk to the steps the violation actually needs. An
	// empty trace means the violation is already present in the epoch's
	// captured state (a steady-state violation — no input required).
	Trace []TraceStep
	// TraceOriginal is the step count before minimization.
	TraceOriginal int
	// Reverified reports that the (minimized) trace was replayed against a
	// cold clone of the epoch — a full rebuild, no pooling — and reproduced
	// the violation.
	Reverified bool
}

// String renders the finding with its provenance.
func (f *Finding) String() string {
	return fmt.Sprintf("epoch %d [%s] %s<-%s input %d: %s (trace %d/%d steps, reverified %v)",
		f.Epoch, f.Scenario, f.Explorer, f.FromPeer, f.InputIndex, f.Violation, len(f.Trace), f.TraceOriginal, f.Reverified)
}

// Report is the live runtime's violation store. Findings are deduplicated by
// violation key across the whole soak: the first detection of a violation
// wins and keeps its provenance; later epochs re-detecting the same
// violation are not news.
//
// A Report is safe for concurrent use.
type Report struct {
	mu       sync.Mutex
	findings []*Finding
	byKey    map[string]*Finding
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{byKey: make(map[string]*Finding)}
}

// Add records the finding unless an equivalent violation is already stored;
// it reports whether the finding was new.
func (r *Report) Add(f *Finding) bool {
	key := f.Violation.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byKey[key]; dup {
		return false
	}
	r.byKey[key] = f
	r.findings = append(r.findings, f)
	return true
}

// Len returns the number of stored findings.
func (r *Report) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.findings)
}

// Findings returns the stored findings in detection order.
func (r *Report) Findings() []*Finding {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Finding(nil), r.findings...)
}

// Find returns the finding for a violation key, or nil.
func (r *Report) Find(key string) *Finding {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byKey[key]
}

// ByClass groups the findings by fault class.
func (r *Report) ByClass() map[checker.FaultClass][]*Finding {
	out := make(map[checker.FaultClass][]*Finding)
	for _, f := range r.Findings() {
		out[f.Class] = append(out[f.Class], f)
	}
	return out
}

// ByScenario counts findings per scheduler scenario, sorted by name.
func (r *Report) ByScenario() []ScenarioCount {
	counts := make(map[string]int)
	for _, f := range r.Findings() {
		counts[f.Scenario]++
	}
	out := make([]ScenarioCount, 0, len(counts))
	for name, n := range counts {
		out = append(out, ScenarioCount{Scenario: name, Findings: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scenario < out[j].Scenario })
	return out
}

// ScenarioCount is one row of the per-scenario finding breakdown.
type ScenarioCount struct {
	Scenario string
	Findings int
}

// Detected reports whether any finding of the class is stored.
func (r *Report) Detected(class checker.FaultClass) bool {
	for _, f := range r.Findings() {
		if f.Class == class {
			return true
		}
	}
	return false
}
