package live

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/topology"
)

func testScenarios(t *testing.T) []faults.Scenario {
	t.Helper()
	return faults.Scenarios(topology.Line(3), 1)
}

func TestSchedulerRewardDynamics(t *testing.T) {
	s := NewScheduler(1, testScenarios(t))
	name := "link-flap"
	if w := s.Weight(name); w != 1.0 {
		t.Fatalf("initial weight = %v", w)
	}
	s.Reward(name, 3, 100)
	if w := s.Weight(name); w != 2.0 {
		t.Fatalf("violation boost: weight = %v, want 2.0", w)
	}
	s.Reward(name, 0, 5)
	if w := s.Weight(name); w != 2.5 {
		t.Fatalf("path boost: weight = %v, want 2.5", w)
	}
	s.Reward(name, 0, 0)
	if w := s.Weight(name); w != 2.125 {
		t.Fatalf("decay: weight = %v, want 2.125", w)
	}
	// Clamping on both ends.
	for i := 0; i < 64; i++ {
		s.Reward(name, 1, 0)
	}
	if w := s.Weight(name); w != weightCeiling {
		t.Fatalf("ceiling: weight = %v", w)
	}
	for i := 0; i < 256; i++ {
		s.Reward(name, 0, 0)
	}
	if w := s.Weight(name); w != weightFloor {
		t.Fatalf("floor: weight = %v (must stay drawable)", w)
	}
	if s.Weight("no-such-scenario") != 0 {
		t.Fatalf("unknown scenario has a weight")
	}
}

func TestSchedulerDrawDeterministicAndWeighted(t *testing.T) {
	draw := func() []string {
		s := NewScheduler(7, testScenarios(t))
		s.Reward("session-reset", 5, 0) // heavily boosted
		var names []string
		for _, sc := range s.Draw(2) {
			names = append(names, sc.Name())
		}
		return names
	}
	a := draw()
	if got := draw(); !reflect.DeepEqual(a, got) {
		t.Fatalf("same seed drew %v then %v", a, got)
	}
	// Drawing everything (k <= 0 or k >= len) returns the full registry.
	s := NewScheduler(7, testScenarios(t))
	if got := s.Draw(0); len(got) != s.Len() {
		t.Fatalf("Draw(0) returned %d of %d", len(got), s.Len())
	}
	if got := s.Draw(99); len(got) != s.Len() {
		t.Fatalf("Draw(99) returned %d of %d", len(got), s.Len())
	}
	// A heavily boosted scenario dominates repeated single draws.
	s = NewScheduler(7, testScenarios(t))
	for i := 0; i < 6; i++ {
		s.Reward("session-reset", 1, 0)
	}
	hits := 0
	for i := 0; i < 40; i++ {
		if s.Draw(1)[0].Name() == "session-reset" {
			hits++
		}
	}
	if hits < 25 {
		t.Fatalf("boosted scenario drawn %d/40 times; weights not driving the draw", hits)
	}
}

// TestConfigDigestSeparatesCacheKeys pins the resume-soundness rule: a
// persisted cache from one exploration configuration must never satisfy a
// soak with a deeper or different configuration.
func TestConfigDigestSeparatesCacheKeys(t *testing.T) {
	topo := topology.Line(3)
	props := checker.DefaultProperties(topo)
	base := Options{InputsPerScenario: 8, FuzzSeeds: 2}.withDefaults()
	digest := exploreConfigDigest(base, base.Strategy.Name(), props)
	if again := exploreConfigDigest(base, base.Strategy.Name(), props); again != digest {
		t.Fatalf("identical config produced different digests")
	}
	variants := []Options{
		func() Options { o := base; o.InputsPerScenario = 64; return o }(),
		func() Options { o := base; o.FuzzSeeds = 8; return o }(),
		func() Options { o := base; o.ShadowMaxEvents = 999; return o }(),
		func() Options { o := base; o.Explorers = []string{"R2"}; return o }(),
		func() Options { o := base; o.CodeFaults = []faults.CodeFault{faults.MEDZeroCrash("R2")}; return o }(),
	}
	for i, v := range variants {
		if exploreConfigDigest(v, v.Strategy.Name(), props) == digest {
			t.Errorf("variant %d shares the base digest; stale cache entries would hit", i)
		}
	}
	if exploreConfigDigest(base, base.Strategy.Name(), props[:2]) == digest {
		t.Errorf("different property set shares the base digest")
	}
	if cacheKey(1, digest, "baseline") == cacheKey(1, digest+1, "baseline") {
		t.Errorf("cache key ignores the config digest")
	}
}

func TestPathCacheSaveLoadAndEviction(t *testing.T) {
	c := NewPathCache()
	key1 := cacheKey(0xabc, 0x1, "link-flap")
	c.Store(key1, CacheEntry{Inputs: 8, Paths: 3})
	c.Store(cacheKey(0xdef, 0x1, "baseline"), CacheEntry{Inputs: 4, Paths: 1})
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if e, ok := c.Lookup(key1); !ok || e.Inputs != 8 || e.Paths != 3 {
		t.Fatalf("lookup = %+v %v", e, ok)
	}
	if _, ok := c.Lookup(cacheKey(0x123, 0x1, "baseline")); ok {
		t.Fatalf("phantom hit")
	}

	// Round-trip through the persisted form.
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewPathCache()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored len = %d", restored.Len())
	}
	if e, ok := restored.Lookup(key1); !ok || e != (CacheEntry{Inputs: 8, Paths: 3}) {
		t.Fatalf("restored entry = %+v %v", e, ok)
	}

	// Retention is bounded: the oldest entries are evicted.
	small := &PathCache{capacity: 3, entries: make(map[string]CacheEntry)}
	for i := 0; i < 5; i++ {
		small.Store(fmt.Sprintf("key-%d", i), CacheEntry{Inputs: i})
	}
	if small.Len() != 3 {
		t.Fatalf("bounded cache holds %d entries, want 3", small.Len())
	}
	if _, ok := small.Lookup("key-0"); ok {
		t.Fatalf("oldest entry not evicted")
	}
	if _, ok := small.Lookup("key-4"); !ok {
		t.Fatalf("newest entry evicted")
	}
	// Re-storing an existing key must not grow the order queue unboundedly.
	for i := 0; i < 10; i++ {
		small.Store("key-4", CacheEntry{Inputs: i})
	}
	if small.Len() != 3 {
		t.Fatalf("re-store changed size: %d", small.Len())
	}
}
