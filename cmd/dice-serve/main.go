// Command dice-serve is the long-running operational daemon around the live
// runtime: it holds one attached deployment, runs soaks on demand, and
// exposes /healthz, Prometheus /metrics and a JSON control API
// (attach/detach, soak start/stop, findings, history, trace). Soak history
// is persisted through the deterministic checkpoint codec, so a restarted
// daemon resumes its trendline byte-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"github.com/dice-project/dice/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7780", "address to serve the API on")
	history := flag.String("history", "dice-serve-history.bin", "soak-history file (codec artifact; empty disables persistence)")
	traceCap := flag.Int("trace-capacity", 4096, "finished trace spans retained")
	flag.Parse()

	if err := run(*listen, *history, *traceCap); err != nil {
		fmt.Fprintln(os.Stderr, "dice-serve:", err)
		os.Exit(1)
	}
}

func run(listen, history string, traceCap int) error {
	s, err := serve.New(serve.Config{
		HistoryPath:   history,
		TraceCapacity: traceCap,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	// The line the smoke driver parses for the dial address.
	fmt.Printf("serve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("serve: shutting down")
	return srv.Close()
}
