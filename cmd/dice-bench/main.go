// Command dice-bench regenerates the paper's evaluation artifacts. Each
// experiment (e1..e11, see EXPERIMENTS.md) can be run individually or all
// together; -quick shrinks budgets for a fast smoke run. e8 is the
// campaign-scaling experiment: the same multi-explorer campaign executed
// serially and on a full worker pool. e9 is the clone-lifecycle experiment:
// cold FromSnapshot rebuilds vs the pooled shadow-cluster runtime. e10 is
// the federation experiment: centralized vs per-AS federated detection on
// the hijack scenario. e11 is the heterogeneity experiment: the mixed
// bird+frr demo with differential conformance checking. -json writes the
// selected experiment's machine-readable result (`-exp e9 -json
// BENCH_clone.json` and `-exp e10 -json BENCH_federation.json` are the
// artifacts CI tracks across PRs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	dice "github.com/dice-project/dice"
)

// cloneBench is the schema of the -json artifact. Field names are stable:
// CI archives one of these per PR to track the clone-lifecycle perf
// trajectory.
type cloneBench struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	Seed       int64  `json:"seed"`
	Routers    int    `json:"routers"`

	CloneSamples    int     `json:"clone_samples"`
	ColdNsPerClone  int64   `json:"cold_ns_per_clone"`
	ResetNsPerClone int64   `json:"reset_ns_per_clone"`
	CloneSpeedup    float64 `json:"clone_speedup"`

	TotalInputs        int     `json:"total_inputs"`
	Workers            int     `json:"workers"`
	ColdCampaignNs     int64   `json:"cold_campaign_ns"`
	PooledCampaignNs   int64   `json:"pooled_campaign_ns"`
	ColdInputsPerSec   float64 `json:"cold_inputs_per_sec"`
	PooledInputsPerSec float64 `json:"pooled_inputs_per_sec"`
	CampaignSpeedup    float64 `json:"campaign_speedup"`

	Detections     int  `json:"detections"`
	SameDetections bool `json:"same_detections"`

	MeanNodeBytes  int `json:"mean_node_bytes"`
	MeanDeltaBytes int `json:"mean_delta_bytes"`
}

// federationBench is the schema of the e10 -json artifact. Field names are
// stable: CI archives one per PR so the perf trajectory captures
// federated-mode overhead alongside the clone-lifecycle numbers.
type federationBench struct {
	Experiment string `json:"experiment"`
	Quick      bool   `json:"quick"`
	Seed       int64  `json:"seed"`
	Routers    int    `json:"routers"`
	Domains    int    `json:"domains"`

	TotalInputs     int     `json:"total_inputs"`
	Workers         int     `json:"workers"`
	CentralizedNs   int64   `json:"centralized_ns"`
	FederatedNs     int64   `json:"federated_ns"`
	OverheadPercent float64 `json:"overhead_percent"`

	Detections     int  `json:"detections"`
	SameDetections bool `json:"same_detections"`

	Summaries            int     `json:"summaries"`
	SummaryBytes         int     `json:"summary_bytes"`
	SummaryBytesPerInput int     `json:"summary_bytes_per_input"`
	FullStateBytes       int     `json:"full_state_bytes"`
	ReductionVsFullState float64 `json:"reduction_vs_full_state"`
}

func writeFederationJSON(path string, cfg dice.ExperimentConfig, r *dice.E10Result) error {
	out := federationBench{
		Experiment:           "e10",
		Quick:                cfg.Quick,
		Seed:                 cfg.Seed,
		Routers:              r.Routers,
		Domains:              r.Domains,
		TotalInputs:          r.TotalInputs,
		Workers:              r.Workers,
		CentralizedNs:        r.CentralizedDuration.Nanoseconds(),
		FederatedNs:          r.FederatedDuration.Nanoseconds(),
		OverheadPercent:      r.OverheadPercent,
		Detections:           r.Detections,
		SameDetections:       r.SameDetections,
		Summaries:            r.Summaries,
		SummaryBytes:         r.SummaryBytes,
		SummaryBytesPerInput: r.SummaryBytesPerInput,
		FullStateBytes:       r.FullStateBytes,
		ReductionVsFullState: r.ReductionVsFullState,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeCloneJSON(path string, cfg dice.ExperimentConfig, r *dice.E9Result) error {
	out := cloneBench{
		Experiment:         "e9",
		Quick:              cfg.Quick,
		Seed:               cfg.Seed,
		Routers:            r.Routers,
		CloneSamples:       r.CloneSamples,
		ColdNsPerClone:     r.ColdClonePer.Nanoseconds(),
		ResetNsPerClone:    r.PooledResetPer.Nanoseconds(),
		CloneSpeedup:       r.CloneSpeedup,
		TotalInputs:        r.TotalInputs,
		Workers:            r.Workers,
		ColdCampaignNs:     r.ColdDuration.Nanoseconds(),
		PooledCampaignNs:   r.PooledDuration.Nanoseconds(),
		ColdInputsPerSec:   r.ColdInputsPerSec,
		PooledInputsPerSec: r.PooledInputsPerSec,
		CampaignSpeedup:    r.CampaignSpeedup,
		Detections:         r.Detections,
		SameDetections:     r.SameDetections,
		MeanNodeBytes:      r.MeanNodeBytes,
		MeanDeltaBytes:     r.MeanDeltaBytes,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e11 or all")
	quick := flag.Bool("quick", false, "use reduced budgets")
	seed := flag.Int64("seed", 1, "random seed")
	jsonPath := flag.String("json", "", "write a machine-readable result to this path: the e10 federation artifact when -exp e10 is selected, otherwise the e9 clone-lifecycle artifact (running e9 if needed)")
	flag.Parse()

	cfg := dice.ExperimentConfig{Quick: *quick, Seed: *seed}
	which := strings.ToLower(*exp)
	run := func(name string) bool { return which == "all" || which == name }
	failed := false

	report := func(name string, out fmt.Stringer, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			failed = true
			return
		}
		fmt.Println(out.String())
	}

	if run("e1") {
		res, err := dice.RunE1(cfg)
		report("E1", res, err)
	}
	if run("e2") {
		res, err := dice.RunE2(cfg)
		report("E2", res, err)
	}
	if run("e3") {
		rows, err := dice.RunE3(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E3 failed: %v\n", err)
			failed = true
		} else {
			fmt.Println(dice.FormatE3(rows))
		}
	}
	if run("e4") {
		res, err := dice.RunE4(cfg)
		report("E4", res, err)
	}
	if run("e5") {
		rows, err := dice.RunE5(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E5 failed: %v\n", err)
			failed = true
		} else {
			fmt.Println(dice.FormatE5(rows))
		}
	}
	if run("e6") {
		res, err := dice.RunE6(cfg)
		report("E6", res, err)
	}
	if run("e7") {
		res, err := dice.RunE7(cfg)
		report("E7", res, err)
	}
	if run("e8") {
		res, err := dice.RunE8(cfg)
		report("E8", res, err)
	}
	if run("e9") || (*jsonPath != "" && which != "e10") {
		res, err := dice.RunE9(cfg)
		report("E9", res, err)
		if err == nil && *jsonPath != "" && which != "e10" {
			if werr := writeCloneJSON(*jsonPath, cfg, res); werr != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, werr)
				failed = true
			} else {
				fmt.Printf("wrote %s\n", *jsonPath)
			}
		}
	}
	if run("e10") {
		res, err := dice.RunE10(cfg)
		report("E10", res, err)
		if err == nil && *jsonPath != "" && which == "e10" {
			if werr := writeFederationJSON(*jsonPath, cfg, res); werr != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, werr)
				failed = true
			} else {
				fmt.Printf("wrote %s\n", *jsonPath)
			}
		}
	}
	if run("e11") {
		res, err := dice.RunE11(cfg)
		report("E11", res, err)
	}
	if failed {
		os.Exit(1)
	}
}
