// Command dice-bench regenerates the paper's evaluation artifacts. Each
// experiment (e1..e12, see EXPERIMENTS.md) can be run individually or all
// together; -quick shrinks budgets for a fast smoke run. e8 is the
// campaign-scaling experiment: the same multi-explorer campaign executed
// serially and on a full worker pool. e9 is the clone-lifecycle experiment:
// cold FromSnapshot rebuilds vs the pooled shadow-cluster runtime. e10 is
// the federation experiment: centralized vs per-AS federated detection on
// the hijack scenario. e11 is the heterogeneity experiment: the mixed
// bird+frr demo with differential conformance checking. e12 is the live-mode
// experiment: a bounded online soak (checkpoint epochs, scenario campaigns,
// dedupe, minimized traces). e13 is the distributed-execution experiment:
// the same campaign in-process, on one agent, and sharded across three
// agents through the control plane. e14 is the three-way conformance
// experiment: the bird+obgpd+frr demo under the majority-vote differential
// oracle, plus the out-of-process driver's result-equivalence leg (skipped
// where the environment cannot fork/exec). e15 is the observability
// experiment: the same soak bare vs under the full dice-serve
// instrumentation layer, with exposition latency/determinism and the
// codec-persisted soak history. codec is the checkpoint-serialization
// experiment: gob vs the deterministic binary codec on encode/decode/
// measure/restore, plus the content-addressed ring's quiet-epoch retention.
// -json writes the selected experiment's machine-readable result (`-exp e9
// -json BENCH_clone.json`, `-exp e10 -json BENCH_federation.json`, `-exp e12
// -json BENCH_live.json`, `-exp e13 -json BENCH_distributed.json`, `-exp e14
// -json BENCH_hetero3.json`, `-exp e15 -json BENCH_serve.json` and `-exp
// codec -json BENCH_codec.json` are the artifacts CI tracks across PRs).
//
// Every JSON artifact is stamped with a schema version, the experiment id,
// the seed and the Go runtime metadata (version, GOOS/GOARCH, GOMAXPROCS),
// so the bench trajectory is self-describing and comparable across PRs and
// machines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	dice "github.com/dice-project/dice"
	"github.com/dice-project/dice/internal/node/procdriver"
)

// benchSchemaVersion is bumped whenever any artifact's field set changes
// incompatibly; consumers of the bench trajectory key on it.
// v3: e9 gained gob-vs-codec snapshot encode/decode fields, e13 gained the
// gob baseline counterfactual, and the codec experiment (BENCH_codec.json)
// was added.
// v4: the e14 three-way conformance experiment (BENCH_hetero3.json) was
// added; existing artifact schemas are unchanged.
// v5: the e15 observability-overhead experiment (BENCH_serve.json) was
// added; existing artifact schemas are unchanged.
const benchSchemaVersion = 5

// benchMeta is the self-describing header embedded in every BENCH_*.json
// artifact.
type benchMeta struct {
	SchemaVersion int    `json:"schema_version"`
	Experiment    string `json:"experiment"`
	Quick         bool   `json:"quick"`
	Seed          int64  `json:"seed"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
}

func newBenchMeta(exp string, cfg dice.ExperimentConfig) benchMeta {
	return benchMeta{
		SchemaVersion: benchSchemaVersion,
		Experiment:    exp,
		Quick:         cfg.Quick,
		Seed:          cfg.Seed,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
	}
}

// cloneBench is the schema of the e9 -json artifact. Field names are stable:
// CI archives one of these per PR to track the clone-lifecycle perf
// trajectory.
type cloneBench struct {
	benchMeta
	Routers int `json:"routers"`

	CloneSamples    int     `json:"clone_samples"`
	ColdNsPerClone  int64   `json:"cold_ns_per_clone"`
	ResetNsPerClone int64   `json:"reset_ns_per_clone"`
	CloneSpeedup    float64 `json:"clone_speedup"`

	TotalInputs        int     `json:"total_inputs"`
	Workers            int     `json:"workers"`
	ColdCampaignNs     int64   `json:"cold_campaign_ns"`
	PooledCampaignNs   int64   `json:"pooled_campaign_ns"`
	ColdInputsPerSec   float64 `json:"cold_inputs_per_sec"`
	PooledInputsPerSec float64 `json:"pooled_inputs_per_sec"`
	CampaignSpeedup    float64 `json:"campaign_speedup"`

	Detections     int  `json:"detections"`
	SameDetections bool `json:"same_detections"`

	MeanNodeBytes  int `json:"mean_node_bytes"`
	MeanDeltaBytes int `json:"mean_delta_bytes"`

	CodecIters         int     `json:"codec_iters"`
	GobEncodeNs        int64   `json:"gob_encode_ns"`
	CodecEncodeNs      int64   `json:"codec_encode_ns"`
	CodecEncodeSpeedup float64 `json:"codec_encode_speedup"`
	GobDecodeNs        int64   `json:"gob_decode_ns"`
	CodecDecodeNs      int64   `json:"codec_decode_ns"`
	CodecDecodeSpeedup float64 `json:"codec_decode_speedup"`
	GobSnapshotBytes   int     `json:"gob_snapshot_bytes"`
	CodecSnapshotBytes int     `json:"codec_snapshot_bytes"`
	CodecSizeRatio     float64 `json:"codec_size_ratio"`
}

// federationBench is the schema of the e10 -json artifact.
type federationBench struct {
	benchMeta
	Routers int `json:"routers"`
	Domains int `json:"domains"`

	TotalInputs     int     `json:"total_inputs"`
	Workers         int     `json:"workers"`
	CentralizedNs   int64   `json:"centralized_ns"`
	FederatedNs     int64   `json:"federated_ns"`
	OverheadPercent float64 `json:"overhead_percent"`

	Detections     int  `json:"detections"`
	SameDetections bool `json:"same_detections"`

	Summaries            int     `json:"summaries"`
	SummaryBytes         int     `json:"summary_bytes"`
	SummaryBytesPerInput int     `json:"summary_bytes_per_input"`
	FullStateBytes       int     `json:"full_state_bytes"`
	ReductionVsFullState float64 `json:"reduction_vs_full_state"`
}

// liveBench is the schema of the e12 -json artifact: the live-mode soak's
// checkpoint pauses, epoch footprints, shadow overhead, dedupe savings and
// minimized-trace sizes.
type liveBench struct {
	benchMeta
	Routers int `json:"routers"`
	Epochs  int `json:"epochs"`

	PauseMeanNs         int64 `json:"pause_mean_ns"`
	PauseMaxNs          int64 `json:"pause_max_ns"`
	PauseBudgetExceeded int   `json:"pause_budget_exceeded"`
	CheckpointStride    int   `json:"checkpoint_stride"`

	SnapshotBytesPerEpoch int `json:"snapshot_bytes_per_epoch"`
	DeltaBytesPerEpoch    int `json:"delta_bytes_per_epoch"`

	Campaigns             int     `json:"campaigns"`
	CampaignsDeduped      int     `json:"campaigns_deduped"`
	InputsExplored        int     `json:"inputs_explored"`
	InputsSaved           int     `json:"inputs_saved"`
	PathsSaved            int     `json:"paths_saved"`
	DedupeSavedFraction   float64 `json:"dedupe_saved_fraction"`
	ShadowOverheadPercent float64 `json:"shadow_overhead_percent"`

	Findings            int  `json:"findings"`
	FirstDetectionEpoch int  `json:"first_detection_epoch"`
	AllReverified       bool `json:"all_reverified"`
	TraceStepsBefore    int  `json:"trace_steps_before"`
	TraceStepsAfter     int  `json:"trace_steps_after"`
}

// distributedBench is the schema of the e13 -json artifact: the same
// campaign in-process vs 1 agent vs 3 agents, with the wire accounting of
// the shard protocol (baseline shipment, lease traffic, summary-only
// results) against the full-state counterfactual.
type distributedBench struct {
	benchMeta
	Routers int `json:"routers"`
	Shards  int `json:"shards"`

	TotalInputs  int   `json:"total_inputs"`
	Workers      int   `json:"workers"`
	InProcessNs  int64 `json:"in_process_ns"`
	OneAgentNs   int64 `json:"one_agent_ns"`
	ThreeAgentNs int64 `json:"three_agent_ns"`

	Detections                int  `json:"detections"`
	SameDetectionsOneAgent    bool `json:"same_detections_one_agent"`
	SameDetectionsThreeAgents bool `json:"same_detections_three_agents"`

	AgentsLeased int `json:"agents_leased"`
	Reassigned   int `json:"reassigned"`

	BaselineBytes        int     `json:"baseline_bytes"`
	ShardBytes           int     `json:"shard_bytes"`
	ResultBytes          int     `json:"result_bytes"`
	ResultBytesPerInput  int     `json:"result_bytes_per_input"`
	FullStatePerInput    int     `json:"full_state_bytes_per_input"`
	ReductionVsFullState float64 `json:"reduction_vs_full_state"`

	GobBaselineSnapshotBytes   int     `json:"gob_baseline_snapshot_bytes"`
	CodecBaselineSnapshotBytes int     `json:"codec_baseline_snapshot_bytes"`
	BaselineReductionVsGob     float64 `json:"baseline_reduction_vs_gob"`
}

// codecBench is the schema of the codec -json artifact (BENCH_codec.json):
// gob vs deterministic-codec encode/decode/measure/restore on the same
// snapshot, plus the content-addressed ring's quiet-epoch retention.
type codecBench struct {
	benchMeta
	Routers    int `json:"routers"`
	Iterations int `json:"iterations"`

	GobEncodeNs   int64   `json:"gob_encode_ns"`
	CodecEncodeNs int64   `json:"codec_encode_ns"`
	EncodeSpeedup float64 `json:"encode_speedup"`
	GobDecodeNs   int64   `json:"gob_decode_ns"`
	CodecDecodeNs int64   `json:"codec_decode_ns"`
	DecodeSpeedup float64 `json:"decode_speedup"`

	GobBytes   int     `json:"gob_bytes"`
	CodecBytes int     `json:"codec_bytes"`
	SizeRatio  float64 `json:"size_ratio"`

	GobMeasureNs   int64   `json:"gob_measure_ns"`
	CodecMeasureNs int64   `json:"codec_measure_ns"`
	MeasureSpeedup float64 `json:"measure_speedup"`

	GobRestoreNs   int64   `json:"gob_restore_ns"`
	CodecRestoreNs int64   `json:"codec_restore_ns"`
	RestoreSpeedup float64 `json:"restore_speedup"`

	RingEpochs        int `json:"ring_epochs"`
	RingCopiedBytes   int `json:"ring_copied_bytes"`
	RingRetainedBytes int `json:"ring_retained_bytes"`
	QuietEpochDeltaB  int `json:"quiet_epoch_delta_bytes"`
	QuietEpochChanged int `json:"quiet_epoch_nodes_changed"`
}

// hetero3Bench is the schema of the e14 -json artifact (BENCH_hetero3.json):
// the three-way differential conformance oracle's vote breakdown and the
// out-of-process driver's result-equivalence leg.
type hetero3Bench struct {
	benchMeta
	Routers         int            `json:"routers"`
	Implementations map[string]int `json:"implementations"`

	TotalInputs   int   `json:"total_inputs"`
	Workers       int   `json:"workers"`
	HomogeneousNs int64 `json:"homogeneous_ns"`
	MixedNs       int64 `json:"mixed_ns"`

	SafetyDetections        int  `json:"safety_detections"`
	SameSafetyClasses       bool `json:"same_safety_classes"`
	SafetyDiffering         int  `json:"safety_differing"`
	DivergenceExplainsDiffs bool `json:"divergence_explains_diffs"`

	Divergences             int      `json:"divergences"`
	DivergentNodes          []string `json:"divergent_nodes"`
	MajorityOutvoted        int      `json:"majority_outvoted"`
	PairwiseLegal           int      `json:"pairwise_legal"`
	DeterministicDivergence bool     `json:"deterministic_divergence"`
	SteadyStateDivergence   bool     `json:"steady_state_divergence"`

	ProcChecked         bool    `json:"proc_checked"`
	ProcSkipReason      string  `json:"proc_skip_reason,omitempty"`
	ProcRouters         int     `json:"proc_routers"`
	InProcNs            int64   `json:"in_proc_ns"`
	ProcNs              int64   `json:"proc_ns"`
	ProcSameDetections  bool    `json:"proc_same_detections"`
	ProcOverheadPercent float64 `json:"proc_overhead_percent"`
}

// serveBench is the schema of the e15 -json artifact (BENCH_serve.json):
// the dice-serve observability layer's soak overhead against the bare soak,
// plus exposition size/latency/determinism and the soak-history artifact.
type serveBench struct {
	benchMeta
	Routers int `json:"routers"`
	Epochs  int `json:"epochs"`

	BareNs          int64   `json:"bare_ns"`
	InstrumentedNs  int64   `json:"instrumented_ns"`
	OverheadPercent float64 `json:"overhead_percent"`

	SeriesCount             int   `json:"series_count"`
	ExpositionBytes         int   `json:"exposition_bytes"`
	ExpositionMeanNs        int64 `json:"exposition_mean_ns"`
	ExpositionDeterministic bool  `json:"exposition_deterministic"`

	Findings          int  `json:"findings"`
	SameFindings      bool `json:"same_findings"`
	SpansRecorded     int  `json:"spans_recorded"`
	HistoryBytes      int  `json:"history_bytes"`
	HistoryRoundTrips bool `json:"history_round_trips"`
}

func writeJSON(path string, out interface{}) error {
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeFederationJSON(path string, cfg dice.ExperimentConfig, r *dice.E10Result) error {
	return writeJSON(path, federationBench{
		benchMeta:            newBenchMeta("e10", cfg),
		Routers:              r.Routers,
		Domains:              r.Domains,
		TotalInputs:          r.TotalInputs,
		Workers:              r.Workers,
		CentralizedNs:        r.CentralizedDuration.Nanoseconds(),
		FederatedNs:          r.FederatedDuration.Nanoseconds(),
		OverheadPercent:      r.OverheadPercent,
		Detections:           r.Detections,
		SameDetections:       r.SameDetections,
		Summaries:            r.Summaries,
		SummaryBytes:         r.SummaryBytes,
		SummaryBytesPerInput: r.SummaryBytesPerInput,
		FullStateBytes:       r.FullStateBytes,
		ReductionVsFullState: r.ReductionVsFullState,
	})
}

func writeCloneJSON(path string, cfg dice.ExperimentConfig, r *dice.E9Result) error {
	return writeJSON(path, cloneBench{
		benchMeta:          newBenchMeta("e9", cfg),
		Routers:            r.Routers,
		CloneSamples:       r.CloneSamples,
		ColdNsPerClone:     r.ColdClonePer.Nanoseconds(),
		ResetNsPerClone:    r.PooledResetPer.Nanoseconds(),
		CloneSpeedup:       r.CloneSpeedup,
		TotalInputs:        r.TotalInputs,
		Workers:            r.Workers,
		ColdCampaignNs:     r.ColdDuration.Nanoseconds(),
		PooledCampaignNs:   r.PooledDuration.Nanoseconds(),
		ColdInputsPerSec:   r.ColdInputsPerSec,
		PooledInputsPerSec: r.PooledInputsPerSec,
		CampaignSpeedup:    r.CampaignSpeedup,
		Detections:         r.Detections,
		SameDetections:     r.SameDetections,
		MeanNodeBytes:      r.MeanNodeBytes,
		MeanDeltaBytes:     r.MeanDeltaBytes,
		CodecIters:         r.CodecIters,
		GobEncodeNs:        r.GobEncodePer.Nanoseconds(),
		CodecEncodeNs:      r.CodecEncodePer.Nanoseconds(),
		CodecEncodeSpeedup: r.CodecEncodeSpeedup,
		GobDecodeNs:        r.GobDecodePer.Nanoseconds(),
		CodecDecodeNs:      r.CodecDecodePer.Nanoseconds(),
		CodecDecodeSpeedup: r.CodecDecodeSpeedup,
		GobSnapshotBytes:   r.GobSnapshotBytes,
		CodecSnapshotBytes: r.CodecSnapshotBytes,
		CodecSizeRatio:     r.CodecSizeRatio,
	})
}

func writeCodecJSON(path string, cfg dice.ExperimentConfig, r *dice.ECodecResult) error {
	return writeJSON(path, codecBench{
		benchMeta:         newBenchMeta("codec", cfg),
		Routers:           r.Routers,
		Iterations:        r.Iterations,
		GobEncodeNs:       r.GobEncodePer.Nanoseconds(),
		CodecEncodeNs:     r.CodecEncodePer.Nanoseconds(),
		EncodeSpeedup:     r.EncodeSpeedup,
		GobDecodeNs:       r.GobDecodePer.Nanoseconds(),
		CodecDecodeNs:     r.CodecDecodePer.Nanoseconds(),
		DecodeSpeedup:     r.DecodeSpeedup,
		GobBytes:          r.GobBytes,
		CodecBytes:        r.CodecBytes,
		SizeRatio:         r.SizeRatio,
		GobMeasureNs:      r.GobMeasurePer.Nanoseconds(),
		CodecMeasureNs:    r.CodecMeasurePer.Nanoseconds(),
		MeasureSpeedup:    r.MeasureSpeedup,
		GobRestoreNs:      r.GobRestorePer.Nanoseconds(),
		CodecRestoreNs:    r.CodecRestorePer.Nanoseconds(),
		RestoreSpeedup:    r.RestoreSpeedup,
		RingEpochs:        r.RingEpochs,
		RingCopiedBytes:   r.RingCopiedBytes,
		RingRetainedBytes: r.RingRetainedBytes,
		QuietEpochDeltaB:  r.QuietEpochDeltaB,
		QuietEpochChanged: r.QuietEpochChanged,
	})
}

func writeLiveJSON(path string, cfg dice.ExperimentConfig, r *dice.E12Result) error {
	return writeJSON(path, liveBench{
		benchMeta:             newBenchMeta("e12", cfg),
		Routers:               r.Routers,
		Epochs:                r.Epochs,
		PauseMeanNs:           r.PauseMean.Nanoseconds(),
		PauseMaxNs:            r.PauseMax.Nanoseconds(),
		PauseBudgetExceeded:   r.PauseBudgetExceeded,
		CheckpointStride:      r.CheckpointStride,
		SnapshotBytesPerEpoch: r.SnapshotBytesPerEpoch,
		DeltaBytesPerEpoch:    r.DeltaBytesPerEpoch,
		Campaigns:             r.Campaigns,
		CampaignsDeduped:      r.CampaignsDeduped,
		InputsExplored:        r.InputsExplored,
		InputsSaved:           r.InputsSaved,
		PathsSaved:            r.PathsSaved,
		DedupeSavedFraction:   r.DedupeSavedFraction,
		ShadowOverheadPercent: r.ShadowOverheadPercent,
		Findings:              r.Findings,
		FirstDetectionEpoch:   r.FirstDetectionEpoch,
		AllReverified:         r.AllReverified,
		TraceStepsBefore:      r.TraceStepsBefore,
		TraceStepsAfter:       r.TraceStepsAfter,
	})
}

func writeHetero3JSON(path string, cfg dice.ExperimentConfig, r *dice.E14Result) error {
	return writeJSON(path, hetero3Bench{
		benchMeta:               newBenchMeta("e14", cfg),
		Routers:                 r.Routers,
		Implementations:         r.Implementations,
		TotalInputs:             r.TotalInputs,
		Workers:                 r.Workers,
		HomogeneousNs:           r.HomogeneousDuration.Nanoseconds(),
		MixedNs:                 r.MixedDuration.Nanoseconds(),
		SafetyDetections:        r.SafetyDetections,
		SameSafetyClasses:       r.SameSafetyClasses,
		SafetyDiffering:         r.SafetyDiffering,
		DivergenceExplainsDiffs: r.DivergenceExplainsDiffs,
		Divergences:             r.Divergences,
		DivergentNodes:          r.DivergentNodes,
		MajorityOutvoted:        r.MajorityOutvoted,
		PairwiseLegal:           r.PairwiseLegal,
		DeterministicDivergence: r.DeterministicDivergence,
		SteadyStateDivergence:   r.SteadyStateDivergence,
		ProcChecked:             r.ProcChecked,
		ProcSkipReason:          r.ProcSkipReason,
		ProcRouters:             r.ProcRouters,
		InProcNs:                r.InProcDuration.Nanoseconds(),
		ProcNs:                  r.ProcDuration.Nanoseconds(),
		ProcSameDetections:      r.ProcSameDetections,
		ProcOverheadPercent:     r.ProcOverheadPercent,
	})
}

func writeDistributedJSON(path string, cfg dice.ExperimentConfig, r *dice.E13Result) error {
	return writeJSON(path, distributedBench{
		benchMeta:                 newBenchMeta("e13", cfg),
		Routers:                   r.Routers,
		Shards:                    r.Shards,
		TotalInputs:               r.TotalInputs,
		Workers:                   r.Workers,
		InProcessNs:               r.InProcessDuration.Nanoseconds(),
		OneAgentNs:                r.OneAgentDuration.Nanoseconds(),
		ThreeAgentNs:              r.ThreeAgentDuration.Nanoseconds(),
		Detections:                r.Detections,
		SameDetectionsOneAgent:    r.SameDetectionsOneAgent,
		SameDetectionsThreeAgents: r.SameDetectionsThreeAgents,
		AgentsLeased:              r.AgentsLeased,
		Reassigned:                r.Reassigned,
		BaselineBytes:             r.BaselineBytes,
		ShardBytes:                r.ShardBytes,
		ResultBytes:               r.ResultBytes,
		ResultBytesPerInput:       r.ResultBytesPerInput,
		FullStatePerInput:         r.FullStatePerInput,
		ReductionVsFullState:      r.ReductionVsFullState,

		GobBaselineSnapshotBytes:   r.GobBaselineSnapshotBytes,
		CodecBaselineSnapshotBytes: r.CodecBaselineSnapshotBytes,
		BaselineReductionVsGob:     r.BaselineReductionVsGob,
	})
}

func writeServeJSON(path string, cfg dice.ExperimentConfig, r *dice.E15Result) error {
	return writeJSON(path, serveBench{
		benchMeta:               newBenchMeta("e15", cfg),
		Routers:                 r.Routers,
		Epochs:                  r.Epochs,
		BareNs:                  r.BareDuration.Nanoseconds(),
		InstrumentedNs:          r.InstrumentedDuration.Nanoseconds(),
		OverheadPercent:         r.OverheadPercent,
		SeriesCount:             r.SeriesCount,
		ExpositionBytes:         r.ExpositionBytes,
		ExpositionMeanNs:        r.ExpositionMean.Nanoseconds(),
		ExpositionDeterministic: r.ExpositionDeterministic,
		Findings:                r.Findings,
		SameFindings:            r.SameFindings,
		SpansRecorded:           r.SpansRecorded,
		HistoryBytes:            r.HistoryBytes,
		HistoryRoundTrips:       r.HistoryRoundTrips,
	})
}

func main() {
	// E14's process-isolation leg re-execs this binary as a backend
	// subprocess; divert those re-executions before flag parsing.
	procdriver.MaybeRunChild()
	exp := flag.String("exp", "all", "experiment to run: e1..e15, codec, or all")
	quick := flag.Bool("quick", false, "use reduced budgets")
	seed := flag.Int64("seed", 1, "random seed")
	jsonPath := flag.String("json", "", "write the selected experiment's machine-readable artifact to this path (e10, e12, e13 and codec write their own schemas; any other selection writes the e9 clone-lifecycle artifact, running e9 if needed)")
	flag.Parse()

	cfg := dice.ExperimentConfig{Quick: *quick, Seed: *seed}
	which := strings.ToLower(*exp)
	run := func(name string) bool { return which == "all" || which == name }
	failed := false

	report := func(name string, out fmt.Stringer, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			failed = true
			return
		}
		fmt.Println(out.String())
	}

	wrote := func(path string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			failed = true
			return
		}
		fmt.Printf("wrote %s\n", path)
	}

	// The -json artifact follows the selected experiment when it has its own
	// schema (e10, e12, e13, e14, e15, codec); every other selection tracks
	// the e9 clone artifact.
	jsonOwner := "e9"
	if which == "e10" || which == "e12" || which == "e13" || which == "e14" || which == "e15" || which == "codec" {
		jsonOwner = which
	}

	if run("e1") {
		res, err := dice.RunE1(cfg)
		report("E1", res, err)
	}
	if run("e2") {
		res, err := dice.RunE2(cfg)
		report("E2", res, err)
	}
	if run("e3") {
		rows, err := dice.RunE3(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E3 failed: %v\n", err)
			failed = true
		} else {
			fmt.Println(dice.FormatE3(rows))
		}
	}
	if run("e4") {
		res, err := dice.RunE4(cfg)
		report("E4", res, err)
	}
	if run("e5") {
		rows, err := dice.RunE5(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E5 failed: %v\n", err)
			failed = true
		} else {
			fmt.Println(dice.FormatE5(rows))
		}
	}
	if run("e6") {
		res, err := dice.RunE6(cfg)
		report("E6", res, err)
	}
	if run("e7") {
		res, err := dice.RunE7(cfg)
		report("E7", res, err)
	}
	if run("e8") {
		res, err := dice.RunE8(cfg)
		report("E8", res, err)
	}
	if run("e9") || (*jsonPath != "" && jsonOwner == "e9") {
		res, err := dice.RunE9(cfg)
		report("E9", res, err)
		if err == nil && *jsonPath != "" && jsonOwner == "e9" {
			wrote(*jsonPath, writeCloneJSON(*jsonPath, cfg, res))
		}
	}
	if run("e10") {
		res, err := dice.RunE10(cfg)
		report("E10", res, err)
		if err == nil && *jsonPath != "" && jsonOwner == "e10" {
			wrote(*jsonPath, writeFederationJSON(*jsonPath, cfg, res))
		}
	}
	if run("e11") {
		res, err := dice.RunE11(cfg)
		report("E11", res, err)
	}
	if run("e12") {
		res, err := dice.RunE12(cfg)
		report("E12", res, err)
		if err == nil && *jsonPath != "" && jsonOwner == "e12" {
			wrote(*jsonPath, writeLiveJSON(*jsonPath, cfg, res))
		}
	}
	if run("e13") {
		res, err := dice.RunE13(cfg)
		report("E13", res, err)
		if err == nil && *jsonPath != "" && jsonOwner == "e13" {
			wrote(*jsonPath, writeDistributedJSON(*jsonPath, cfg, res))
		}
	}
	if run("e14") {
		res, err := dice.RunE14(cfg)
		report("E14", res, err)
		if err == nil && *jsonPath != "" && jsonOwner == "e14" {
			wrote(*jsonPath, writeHetero3JSON(*jsonPath, cfg, res))
		}
	}
	if run("e15") {
		res, err := dice.RunE15(cfg)
		report("E15", res, err)
		if err == nil && *jsonPath != "" && jsonOwner == "e15" {
			wrote(*jsonPath, writeServeJSON(*jsonPath, cfg, res))
		}
	}
	if run("codec") {
		res, err := dice.RunECodec(cfg)
		report("ECodec", res, err)
		if err == nil && *jsonPath != "" && jsonOwner == "codec" {
			wrote(*jsonPath, writeCodecJSON(*jsonPath, cfg, res))
		}
	}
	if failed {
		os.Exit(1)
	}
}
