// Command dice-bench regenerates the paper's evaluation artifacts. Each
// experiment (e1..e8, see DESIGN.md and EXPERIMENTS.md) can be run
// individually or all together; -quick shrinks budgets for a fast smoke run.
// e8 is the campaign-scaling experiment: the same multi-explorer campaign
// executed serially and on a full worker pool.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	dice "github.com/dice-project/dice"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e8 or all")
	quick := flag.Bool("quick", false, "use reduced budgets")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := dice.ExperimentConfig{Quick: *quick, Seed: *seed}
	which := strings.ToLower(*exp)
	run := func(name string) bool { return which == "all" || which == name }
	failed := false

	report := func(name string, out fmt.Stringer, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			failed = true
			return
		}
		fmt.Println(out.String())
	}

	if run("e1") {
		res, err := dice.RunE1(cfg)
		report("E1", res, err)
	}
	if run("e2") {
		res, err := dice.RunE2(cfg)
		report("E2", res, err)
	}
	if run("e3") {
		rows, err := dice.RunE3(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E3 failed: %v\n", err)
			failed = true
		} else {
			fmt.Println(dice.FormatE3(rows))
		}
	}
	if run("e4") {
		res, err := dice.RunE4(cfg)
		report("E4", res, err)
	}
	if run("e5") {
		rows, err := dice.RunE5(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E5 failed: %v\n", err)
			failed = true
		} else {
			fmt.Println(dice.FormatE5(rows))
		}
	}
	if run("e6") {
		res, err := dice.RunE6(cfg)
		report("E6", res, err)
	}
	if run("e7") {
		res, err := dice.RunE7(cfg)
		report("E7", res, err)
	}
	if run("e8") {
		res, err := dice.RunE8(cfg)
		report("E8", res, err)
	}
	if failed {
		os.Exit(1)
	}
}
