// Command dice-vet runs the DiCE static-analysis suite: five domain-specific
// analyzers that mechanically enforce the invariants the repository's test
// history kept re-proving by hand — deterministic byte output (detrange,
// detsource), clone lease balance (leasebalance), the federation disclosure
// guarantee (privleak) and codec field-count pins (codecpin).
//
// Usage:
//
//	dice-vet [-checks list] [-sarif file.sarif] [-C dir] [packages...]
//
// Packages default to ./... relative to -C (default: current directory,
// which must be inside the module). Exit status: 0 clean, 1 findings,
// 2 operational error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/dice-project/dice/internal/analysis"
	"github.com/dice-project/dice/internal/analysis/codecpin"
	"github.com/dice-project/dice/internal/analysis/detrange"
	"github.com/dice-project/dice/internal/analysis/detsource"
	"github.com/dice-project/dice/internal/analysis/leasebalance"
	"github.com/dice-project/dice/internal/analysis/privleak"
)

// All is the full suite, in the order findings are attributed.
func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrange.Analyzer,
		detsource.Analyzer,
		leasebalance.Analyzer,
		privleak.Analyzer,
		codecpin.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dice-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	sarif := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	dir := fs.String("C", ".", "directory to resolve packages from (inside the module)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dice-vet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all() {
			fmt.Fprintf(stderr, "  %-13s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range all() {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	selected, known, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintf(stderr, "dice-vet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader(*dir)
	units, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "dice-vet: %v\n", err)
		return 2
	}
	driver := analysis.NewDriver(selected...)
	driver.Known = known
	findings, err := driver.Run(units)
	if err != nil {
		fmt.Fprintf(stderr, "dice-vet: %v\n", err)
		return 2
	}
	analysis.WriteText(stdout, findings)
	if *sarif != "" {
		f, err := os.Create(*sarif)
		if err != nil {
			fmt.Fprintf(stderr, "dice-vet: %v\n", err)
			return 2
		}
		werr := analysis.WriteSARIF(f, *dir, selected, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "dice-vet: writing SARIF: %v\n", werr)
			return 2
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "dice-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -checks flag; known always carries every
// analyzer name so //dice:allow hygiene distinguishes "not running" from
// "no such analyzer".
func selectAnalyzers(checks string) (selected []*analysis.Analyzer, known []string, err error) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all() {
		byName[a.Name] = a
		known = append(known, a.Name)
	}
	if checks == "" {
		return all(), known, nil
	}
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, strings.Join(known, ", "))
		}
		selected = append(selected, a)
	}
	return selected, known, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
