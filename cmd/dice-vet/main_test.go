package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestSelfCheck: the full suite must run clean over the repository itself.
// This is the same gate CI applies; it keeps every //dice:allow honest (an
// unused or unjustified one is itself a finding) and makes re-introducing a
// flagged pattern a test failure, not just a lint failure.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo analysis is not short")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", moduleRoot(t), "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("dice-vet over the repo exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

// TestFindingsExit: a package with violations exits 1 and prints them.
func TestFindingsExit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", moduleRoot(t), "./internal/analysis/detrange/testdata/a"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "detrange:") {
		t.Errorf("findings missing detrange diagnostics:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing finding count: %s", stderr.String())
	}
}

// TestChecksFlag: -checks narrows the suite — the detrange fixture is clean
// under detsource alone.
func TestChecksFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", moduleRoot(t), "-checks", "detsource", "./internal/analysis/detrange/testdata/a"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestSARIF: -sarif writes a report alongside the text findings.
func TestSARIF(t *testing.T) {
	out := filepath.Join(t.TempDir(), "vet.sarif")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", moduleRoot(t), "-sarif", out, "./internal/analysis/detrange/testdata/a"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"2.1.0"`, `"dice-vet"`, `"detrange"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("SARIF output missing %s", want)
		}
	}
}

// TestList prints every analyzer.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, a := range all() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %s:\n%s", a.Name, stdout.String())
		}
	}
}

// TestBadInvocation: unknown analyzers and unknown flags are operational
// errors (exit 2), distinct from findings (exit 1).
func TestBadInvocation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-checks", "nonesuch"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing analyzer error: %s", stderr.String())
	}
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-sarif", filepath.Join(t.TempDir(), "no", "such", "dir", "x.sarif"),
		"-C", moduleRoot(t), "./internal/analysis/detrange/testdata/a"}, &stdout, &stderr); code != 2 {
		t.Errorf("uncreatable SARIF path: exit %d, want 2", code)
	}
}
