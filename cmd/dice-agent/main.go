// Command dice-agent is the execution side of distributed DiCE: it dials a
// dice-control plane outbound, registers its capabilities, fetches the
// campaign baseline snapshot once, then leases shards and runs each through
// the ordinary campaign/clone-pool machinery locally. Only per-unit results
// and checker.Summary envelopes are posted back — node state never leaves
// the agent. The process exits 0 once the control plane reports the
// campaign done.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	dice "github.com/dice-project/dice"
	"github.com/dice-project/dice/internal/agent"
	"github.com/dice-project/dice/internal/obs"
)

func main() {
	name := flag.String("name", hostname(), "agent display name")
	controlURL := flag.String("control", "http://127.0.0.1:7777", "control plane base URL")
	workers := flag.Int("workers", runtime.NumCPU(), "local clone parallelism")
	poll := flag.Duration("poll", 50*time.Millisecond, "idle wait between lease polls")
	metricsAddr := flag.String("metrics", "", "optional address to serve /metrics and /healthz on")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ag := dice.NewAgent(dice.AgentConfig{
		Name:         *name,
		ControlURL:   *controlURL,
		Workers:      *workers,
		PollInterval: *poll,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dice-agent:", err)
			os.Exit(1)
		}
		reg := obs.NewRegistry()
		agent.RegisterMetrics(reg, func() *agent.Agent { return ag })
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, "{\"status\":\"ok\",\"shards_run\":%d}\n", ag.ShardsRun())
		})
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = reg.WritePrometheus(w)
		})
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("agent %s: metrics on http://%s\n", *name, ln.Addr())
	}
	if err := ag.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "dice-agent:", err)
		os.Exit(1)
	}
	fmt.Printf("agent %s: %d shards run\n", *name, ag.ShardsRun())
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "agent"
	}
	return h
}
