// Command dice-control is the campaign-side control plane of distributed
// DiCE: it deploys the demo topology (with the demo's planted faults),
// snapshots it, plans the campaign, and serves shard leases over HTTP to
// dice-agent processes that dial in outbound. Shards ship as snapshot deltas
// against a baseline each agent fetches once; only per-unit results and
// checker.Summary envelopes travel back. The campaign starts once -agents
// agents have registered and the process exits 0 when it completes, after
// printing the detection set and per-agent shard counts (the smoke test in
// examples/distributed asserts on both).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	dice "github.com/dice-project/dice"
	"github.com/dice-project/dice/internal/control"
	"github.com/dice-project/dice/internal/obs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to serve the control API on")
	agents := flag.Int("agents", 1, "registered agents required before the campaign starts")
	unitsPerShard := flag.Int("units-per-shard", 2, "exploration units leased per shard")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "shard lease expiry (heartbeats renew it)")
	inputs := flag.Int("inputs", 54, "total exploration inputs")
	fuzzSeeds := flag.Int("fuzz-seeds", 2, "grammar-fuzzed seeds per unit")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker hint shipped to agents")
	federated := flag.Bool("federated", false, "run the campaign federated per-AS; summaries remain the only cross-domain traffic")
	timeout := flag.Duration("timeout", 5*time.Minute, "campaign deadline")
	flag.Parse()

	if err := run(*listen, *agents, *unitsPerShard, *leaseTTL, *inputs, *fuzzSeeds, *seed, *workers, *federated, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "dice-control:", err)
		os.Exit(1)
	}
}

func run(listen string, agents, unitsPerShard int, leaseTTL time.Duration, inputs, fuzzSeeds int, seed int64, workers int, federated bool, timeout time.Duration) error {
	topo := dice.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	opts := dice.DeployOptions{
		Seed: seed,
		ConfigOverride: dice.ApplyConfigFaults(
			dice.MisOrigination{Router: "R12", Prefix: victim},
			dice.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		return err
	}
	deployment.Converge()

	ctrl := dice.NewController(dice.ControllerConfig{
		Campaign:      "demo27",
		MinAgents:     agents,
		UnitsPerShard: unitsPerShard,
		LeaseTTL:      leaseTTL,
		Logf: func(format string, args ...any) {
			fmt.Printf("control: "+format+"\n", args...)
		},
	})

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	control.RegisterMetrics(reg, func() *control.Controller { return ctrl })
	mux := http.NewServeMux()
	mux.Handle("/", dice.NewControlHandler(ctrl))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"agents\":%d}\n", len(ctrl.AgentNames()))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	// The line agents (and the smoke driver) parse for the dial address.
	fmt.Printf("control: listening on http://%s\n", ln.Addr())

	campaignOpts := []dice.CampaignOption{
		dice.WithBudget(dice.Budget{TotalInputs: inputs}),
		dice.WithFuzzSeeds(fuzzSeeds),
		dice.WithSeed(seed),
		dice.WithClusterOptions(opts),
		dice.WithWorkers(workers),
		dice.WithRemoteExecution(ctrl),
	}
	if federated {
		campaignOpts = append(campaignOpts, dice.WithFederation(dice.PartitionByAS(topo)))
	} else {
		campaignOpts = append(campaignOpts, dice.WithStrategy(dice.AllNodesStrategy{}))
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	res, err := dice.NewCampaign(deployment, topo, campaignOpts...).Run(ctx)
	if err != nil {
		return err
	}

	fmt.Printf("control: campaign done in %v: %d inputs explored, %d detections\n",
		time.Since(start).Round(time.Millisecond), res.InputsExplored, len(res.Detections))
	for _, d := range res.Detections {
		fmt.Printf("  detection %-18s %s (input %d)\n", d.Class, d.Violation.Key(), d.InputIndex)
	}
	stats := ctrl.RemoteStats()
	fmt.Printf("control: %d shards, %d agents, %d reassignments; wire: baseline %d B, shards %d B, results %d B\n",
		stats.Shards, stats.Agents, stats.Reassigned, stats.BaselineBytes, stats.ShardBytes, stats.ResultBytes)

	names := ctrl.AgentNames()
	counts := ctrl.AgentShardCounts()
	ids := make([]string, 0, len(names))
	for id := range names {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return names[ids[i]] < names[ids[j]] })
	for _, id := range ids {
		fmt.Printf("control: agent %s ran %d shards\n", names[id], counts[id])
	}
	// Linger until every agent has seen campaign-done through a lease poll;
	// returning earlier closes the listener mid-poll and turns the agents'
	// clean protocol exit into a connection-reset failure.
	if !ctrl.AwaitDrain(5 * time.Second) {
		fmt.Println("control: exiting with undrained agents (killed or partitioned)")
	}
	return nil
}
