// Command dice-demo reproduces the paper's demo (Figure 1) as a live textual
// report: it deploys 27 emulated BGP routers under Internet-like conditions,
// plants one fault of each class, runs a multi-explorer DiCE campaign on a
// parallel worker pool, and streams each detection as exploration finds it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	dice "github.com/dice-project/dice"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced exploration budgets")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel clone executions")
	campaignMode := flag.Bool("campaign", false, "explore every router of the demo, not just R1")
	federated := flag.Bool("federated", false, "split the campaign into per-AS administrative domains exchanging only privacy-filtered summaries (implies -campaign)")
	timeout := flag.Duration("timeout", 0, "optional campaign deadline (e.g. 30s)")
	flag.Parse()

	fmt.Println("DiCE demo: online testing of a federated 27-router BGP deployment")
	fmt.Println("faults planted: mis-origination (R12), missing import filter (R1<-R4),")
	fmt.Println("                dispute wheel (R1,R2,R3), community-triggered crash (R1)")
	fmt.Println()

	if *campaignMode || *federated {
		runCampaign(*quick, *seed, *workers, *timeout, *federated)
		return
	}

	res, err := dice.RunE1(dice.ExperimentConfig{Quick: *quick, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "demo failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.String())

	fmt.Println()
	if len(res.DetectedClasses) == 0 {
		fmt.Println("no faults detected in this round — increase the input budget")
		os.Exit(1)
	}
	fmt.Println("fault classes detected this round:")
	for class := range res.DetectedClasses {
		fmt.Printf("  - %s\n", class)
	}
}

// runCampaign deploys the demo with the same fault set and explores every
// router in one campaign, streaming detections as they are found. In
// federated mode the campaign is split into one administrative domain per
// AS; only checker.Summary digests cross domain boundaries.
func runCampaign(quick bool, seed int64, workers int, timeout time.Duration, federated bool) {
	topo := dice.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	opts := dice.DeployOptions{
		Seed: seed,
		ConfigOverride: dice.ApplyConfigFaults(
			dice.MisOrigination{Router: "R12", Prefix: victim},
			dice.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deploy failed: %v\n", err)
		os.Exit(1)
	}
	deployment.Converge()

	budget := dice.Budget{TotalInputs: 216, MaxDuration: timeout}
	if quick {
		budget.TotalInputs = 54
	}
	copts := []dice.CampaignOption{
		dice.WithBudget(budget),
		dice.WithSeed(seed),
		dice.WithClusterOptions(opts),
		dice.WithWorkers(workers),
	}
	if federated {
		copts = append(copts, dice.WithFederation(dice.PartitionByAS(topo)))
	} else {
		copts = append(copts, dice.WithStrategy(dice.AllNodesStrategy{}))
	}
	campaign := dice.NewCampaign(deployment, topo, copts...)
	events := campaign.Events()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			switch ev.Kind {
			case dice.EventCampaignStart, dice.EventDetection, dice.EventCampaignEnd:
				fmt.Println(ev)
			}
		}
	}()

	res, err := campaign.Run(context.Background())
	<-done
	if err != nil && (res == nil || !res.Cancelled) {
		fmt.Fprintf(os.Stderr, "campaign failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Printf("campaign (%s strategy, %d workers): %d units, %d inputs in %v\n",
		res.Strategy, res.Workers, len(res.Units), res.InputsExplored, res.Duration.Round(time.Millisecond))
	if res.BudgetExhausted {
		fmt.Println("time budget exhausted; results cover what completed in time")
	}
	if res.Federated {
		fmt.Printf("federated: %d domains, %d summaries crossed boundaries (%d bytes disclosed vs %d bytes full state)\n",
			len(res.Domains), res.Disclosed.Summaries, res.Disclosed.Bytes, res.FullStateBytes)
		reporting := 0
		for _, d := range res.Domains {
			if d.Detections > 0 {
				reporting++
			}
		}
		fmt.Printf("           %d domains contributed detections\n", reporting)
	}
	byClass := res.DetectionsByClass()
	for _, class := range []dice.FaultClass{dice.OperatorMistake, dice.PolicyConflict, dice.ProgrammingError} {
		if ds := byClass[class]; len(ds) > 0 {
			fmt.Printf("  detected %-18s %d violations\n", class.String()+":", len(ds))
		}
	}
	if len(res.Detections) == 0 {
		fmt.Println("no faults detected — increase the input budget")
		os.Exit(1)
	}
}
