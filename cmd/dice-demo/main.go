// Command dice-demo reproduces the paper's demo (Figure 1) as a live textual
// report: it deploys 27 emulated BGP routers under Internet-like conditions,
// plants one fault of each class, runs a multi-explorer DiCE campaign on a
// parallel worker pool, and streams each detection as exploration finds it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	dice "github.com/dice-project/dice"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced exploration budgets")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel clone executions")
	campaignMode := flag.Bool("campaign", false, "explore every router of the demo, not just R1")
	timeout := flag.Duration("timeout", 0, "optional campaign deadline (e.g. 30s)")
	flag.Parse()

	fmt.Println("DiCE demo: online testing of a federated 27-router BGP deployment")
	fmt.Println("faults planted: mis-origination (R12), missing import filter (R1<-R4),")
	fmt.Println("                dispute wheel (R1,R2,R3), community-triggered crash (R1)")
	fmt.Println()

	if *campaignMode {
		runCampaign(*quick, *seed, *workers, *timeout)
		return
	}

	res, err := dice.RunE1(dice.ExperimentConfig{Quick: *quick, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "demo failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.String())

	fmt.Println()
	if len(res.DetectedClasses) == 0 {
		fmt.Println("no faults detected in this round — increase the input budget")
		os.Exit(1)
	}
	fmt.Println("fault classes detected this round:")
	for class := range res.DetectedClasses {
		fmt.Printf("  - %s\n", class)
	}
}

// runCampaign deploys the demo with the same fault set and explores every
// router in one campaign, streaming detections as they are found.
func runCampaign(quick bool, seed int64, workers int, timeout time.Duration) {
	topo := dice.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	opts := dice.DeployOptions{
		Seed: seed,
		ConfigOverride: dice.ApplyConfigFaults(
			dice.MisOrigination{Router: "R12", Prefix: victim},
			dice.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deploy failed: %v\n", err)
		os.Exit(1)
	}
	deployment.Converge()

	budget := dice.Budget{TotalInputs: 216, MaxDuration: timeout}
	if quick {
		budget.TotalInputs = 54
	}
	campaign := dice.NewCampaign(deployment, topo,
		dice.WithStrategy(dice.AllNodesStrategy{}),
		dice.WithBudget(budget),
		dice.WithSeed(seed),
		dice.WithClusterOptions(opts),
		dice.WithWorkers(workers))
	events := campaign.Events()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			switch ev.Kind {
			case dice.EventCampaignStart, dice.EventDetection, dice.EventCampaignEnd:
				fmt.Println(ev)
			}
		}
	}()

	res, err := campaign.Run(context.Background())
	<-done
	if err != nil && (res == nil || !res.Cancelled) {
		fmt.Fprintf(os.Stderr, "campaign failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Printf("campaign (%s strategy, %d workers): %d units, %d inputs in %v\n",
		res.Strategy, res.Workers, len(res.Units), res.InputsExplored, res.Duration.Round(time.Millisecond))
	byClass := res.DetectionsByClass()
	for _, class := range []dice.FaultClass{dice.OperatorMistake, dice.PolicyConflict, dice.ProgrammingError} {
		if ds := byClass[class]; len(ds) > 0 {
			fmt.Printf("  detected %-18s %d violations\n", class.String()+":", len(ds))
		}
	}
	if len(res.Detections) == 0 {
		fmt.Println("no faults detected — increase the input budget")
		os.Exit(1)
	}
}
