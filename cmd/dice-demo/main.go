// Command dice-demo reproduces the paper's demo (Figure 1) as a live textual
// report: it deploys 27 emulated BGP routers under Internet-like conditions,
// plants one fault of each class, runs a multi-explorer DiCE campaign on a
// parallel worker pool, and streams each detection as exploration finds it.
// With -live, the same deployment is soaked online instead: live churn
// flows, the runtime checkpoints it into epoch rings and explores every
// fresh epoch with scheduler-drawn scenario campaigns.
//
// Exit status encodes the outcome so CI smoke jobs can assert on it instead
// of grepping output:
//
//	0  the run completed and detected no violations
//	1  the run itself failed (deploy error, campaign error, ...)
//	2  violations were detected (the expected outcome for this demo,
//	   which plants faults on purpose)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	dice "github.com/dice-project/dice"
)

// Exit codes (see the command comment).
const (
	exitClean      = 0
	exitError      = 1
	exitViolations = 2
)

// finish reports the outcome and exits with the matching status.
func finish(violations int) {
	fmt.Println()
	if violations == 0 {
		fmt.Println("no violations detected (exit 0)")
		os.Exit(exitClean)
	}
	fmt.Printf("%d violations detected (exit %d)\n", violations, exitViolations)
	os.Exit(exitViolations)
}

func main() {
	quick := flag.Bool("quick", false, "use reduced exploration budgets")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel clone executions")
	campaignMode := flag.Bool("campaign", false, "explore every router of the demo, not just R1")
	federated := flag.Bool("federated", false, "split the campaign into per-AS administrative domains exchanging only privacy-filtered summaries (implies -campaign)")
	liveMode := flag.Bool("live", false, "soak the deployment online: periodic epoch checkpoints, scheduler-drawn scenario campaigns, minimized traces")
	epochs := flag.Int("epochs", 6, "checkpoint epochs for the -live soak")
	timeout := flag.Duration("timeout", 0, "optional campaign/soak deadline (e.g. 30s)")
	flag.Parse()

	fmt.Println("DiCE demo: online testing of a federated 27-router BGP deployment")
	fmt.Println("faults planted: mis-origination (R12), missing import filter (R1<-R4),")
	fmt.Println("                dispute wheel (R1,R2,R3), community-triggered crash (R1)")
	fmt.Println()

	if *liveMode {
		runLive(*quick, *seed, *workers, *epochs, *timeout)
		return
	}
	if *campaignMode || *federated {
		runCampaign(*quick, *seed, *workers, *timeout, *federated)
		return
	}

	res, err := dice.RunE1(dice.ExperimentConfig{Quick: *quick, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "demo failed: %v\n", err)
		os.Exit(exitError)
	}
	fmt.Print(res.String())

	violations := 0
	for _, n := range res.Detections {
		violations += n
	}
	if violations > 0 {
		fmt.Println()
		fmt.Println("fault classes detected this round:")
		for class := range res.DetectedClasses {
			fmt.Printf("  - %s\n", class)
		}
	} else {
		fmt.Println()
		fmt.Println("no faults detected in this round — increase the input budget")
	}
	finish(violations)
}

// runLive soaks the demo deployment online: the deployment keeps carrying
// churn while the live runtime checkpoints it into a rolling epoch ring and
// drives scenario campaigns against every fresh epoch. Detections stream as
// they are found, each with epoch/scenario provenance and a minimized,
// cold-clone-re-verified trace.
func runLive(quick bool, seed int64, workers, epochs int, timeout time.Duration) {
	topo := dice.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	opts := dice.DeployOptions{
		Seed: seed,
		ConfigOverride: dice.ApplyConfigFaults(
			dice.MisOrigination{Router: "R12", Prefix: victim},
			dice.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deploy failed: %v\n", err)
		os.Exit(exitError)
	}
	deployment.Converge()

	inputs := 16
	if quick {
		inputs = 6
	}
	findings := 0
	rt, err := dice.NewLiveRuntime(deployment, topo, dice.LiveOptions{
		Seed:              seed,
		ClusterOptions:    opts,
		MaxEpochs:         epochs,
		Workers:           workers,
		InputsPerScenario: inputs,
		FuzzSeeds:         4,
		ScenariosPerEpoch: 0, // every registered scenario each epoch
		Explorers:         []string{"R1"},
		// Findings are streamed via OnFinding below; the trace channel keeps
		// only the per-epoch progress lines.
		Trace: func(line string) {
			if len(line) < 8 || line[:8] != "finding:" {
				fmt.Println("  " + line)
			}
		},
		OnFinding: func(f *dice.LiveFinding) {
			findings++
			if findings <= 8 {
				fmt.Printf("  FINDING %s\n", f)
			} else if findings == 9 {
				fmt.Println("  ... (further findings summarized below)")
			}
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "live runtime: %v\n", err)
		os.Exit(exitError)
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	fmt.Printf("live soak: %d epochs, %d scenarios/epoch, %d inputs/scenario\n", epochs, rt.Scheduler().Len(), inputs)
	report, err := rt.Run(ctx)
	if err != nil && err != context.DeadlineExceeded {
		fmt.Fprintf(os.Stderr, "soak failed: %v\n", err)
		os.Exit(exitError)
	}

	stats := rt.Stats()
	fmt.Println()
	fmt.Printf("soak: %d epochs, %d campaigns (%d deduped), %d inputs explored (%d saved)\n",
		stats.Epochs, stats.Campaigns, stats.CampaignsDeduped, stats.InputsExplored, stats.InputsSaved)
	fmt.Printf("checkpoint pause: mean %v, max %v; shadow overhead %.1f%%\n",
		stats.PauseMean().Round(time.Microsecond), stats.CheckpointPauseMax.Round(time.Microsecond), stats.ShadowOverheadPercent())
	fmt.Printf("findings: %d (%d re-verified from cold clones; traces %d -> %d steps)\n",
		stats.Findings, stats.FindingsReverified, stats.TraceStepsBefore, stats.TraceStepsAfter)
	fmt.Println("scheduler weights after the soak:")
	weights := rt.Scheduler().Weights()
	names := make([]string, 0, len(weights))
	for name := range weights {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-22s %.2f\n", name, weights[name])
	}
	finish(report.Len())
}

// runCampaign deploys the demo with the same fault set and explores every
// router in one campaign, streaming detections as they are found. In
// federated mode the campaign is split into one administrative domain per
// AS; only checker.Summary digests cross domain boundaries.
func runCampaign(quick bool, seed int64, workers int, timeout time.Duration, federated bool) {
	topo := dice.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	opts := dice.DeployOptions{
		Seed: seed,
		ConfigOverride: dice.ApplyConfigFaults(
			dice.MisOrigination{Router: "R12", Prefix: victim},
			dice.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deploy failed: %v\n", err)
		os.Exit(exitError)
	}
	deployment.Converge()

	budget := dice.Budget{TotalInputs: 216, MaxDuration: timeout}
	if quick {
		budget.TotalInputs = 54
	}
	copts := []dice.CampaignOption{
		dice.WithBudget(budget),
		dice.WithSeed(seed),
		dice.WithClusterOptions(opts),
		dice.WithWorkers(workers),
	}
	if federated {
		copts = append(copts, dice.WithFederation(dice.PartitionByAS(topo)))
	} else {
		copts = append(copts, dice.WithStrategy(dice.AllNodesStrategy{}))
	}
	campaign := dice.NewCampaign(deployment, topo, copts...)
	events := campaign.Events()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			switch ev.Kind {
			case dice.EventCampaignStart, dice.EventDetection, dice.EventCampaignEnd:
				fmt.Println(ev)
			}
		}
	}()

	res, err := campaign.Run(context.Background())
	<-done
	if err != nil && (res == nil || !res.Cancelled) {
		fmt.Fprintf(os.Stderr, "campaign failed: %v\n", err)
		os.Exit(exitError)
	}
	fmt.Println()
	fmt.Printf("campaign (%s strategy, %d workers): %d units, %d inputs in %v\n",
		res.Strategy, res.Workers, len(res.Units), res.InputsExplored, res.Duration.Round(time.Millisecond))
	if res.BudgetExhausted {
		fmt.Println("time budget exhausted; results cover what completed in time")
	}
	if res.Federated {
		fmt.Printf("federated: %d domains, %d summaries crossed boundaries (%d bytes disclosed vs %d bytes full state)\n",
			len(res.Domains), res.Disclosed.Summaries, res.Disclosed.Bytes, res.FullStateBytes)
		reporting := 0
		for _, d := range res.Domains {
			if d.Detections > 0 {
				reporting++
			}
		}
		fmt.Printf("           %d domains contributed detections\n", reporting)
	}
	byClass := res.DetectionsByClass()
	for _, class := range []dice.FaultClass{dice.OperatorMistake, dice.PolicyConflict, dice.ProgrammingError} {
		if ds := byClass[class]; len(ds) > 0 {
			fmt.Printf("  detected %-18s %d violations\n", class.String()+":", len(ds))
		}
	}
	if len(res.Detections) == 0 {
		fmt.Println("no faults detected — increase the input budget")
	}
	finish(len(res.Detections))
}
