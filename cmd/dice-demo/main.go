// Command dice-demo reproduces the paper's demo (Figure 1) as a textual
// report: it deploys 27 emulated BGP routers under Internet-like conditions,
// plants one fault of each class, runs one DiCE exploration round, and prints
// what was detected and at what cost.
package main

import (
	"flag"
	"fmt"
	"os"

	dice "github.com/dice-project/dice"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced exploration budgets")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Println("DiCE demo: online testing of a federated 27-router BGP deployment")
	fmt.Println("faults planted: mis-origination (R12), missing import filter (R1<-R4),")
	fmt.Println("                dispute wheel (R1,R2,R3), community-triggered crash (R1)")
	fmt.Println()

	res, err := dice.RunE1(dice.ExperimentConfig{Quick: *quick, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "demo failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.String())

	fmt.Println()
	if len(res.DetectedClasses) == 0 {
		fmt.Println("no faults detected in this round — increase the input budget")
		os.Exit(1)
	}
	fmt.Println("fault classes detected this round:")
	for class := range res.DetectedClasses {
		fmt.Printf("  - %s\n", class)
	}
}
