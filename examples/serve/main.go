// Serve: the dice-serve daemon operated over its HTTP API, kill and all.
// This driver builds the dice-serve binary, starts it with a history file,
// attaches the 27-router demo, runs a short soak, and asserts the key
// observability guarantees from the outside: /metrics carries live
// (nonzero) series from every instrumented subsystem and scrapes
// byte-identically in stable state, /api/v1/findings carries provenance,
// and after killing and restarting the daemon the persisted soak history
// resumes — same soak count, next soak numbered after the old one. This is
// the CI smoke for the observability subsystem, so it exits non-zero on
// any deviation.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "serve: "+format+"\n", args...)
	os.Exit(1)
}

// moduleRoot finds the repository root so the driver works from any cwd.
func moduleRoot() string {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		fatalf("locate module root: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		fatalf("not inside a Go module")
	}
	return filepath.Dir(gomod)
}

// daemon is one running dice-serve process.
type daemon struct {
	cmd *exec.Cmd
	url string
}

// startDaemon launches the binary and waits for its listen announcement.
func startDaemon(bin, history string) *daemon {
	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-history", history)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatalf("%v", err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("start dice-serve: %v", err)
	}
	urlCh := make(chan string, 1)
	go func() {
		listenRE := regexp.MustCompile(`listening on (http://\S+)`)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case urlCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case url := <-urlCh:
		return &daemon{cmd: cmd, url: url}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		fatalf("daemon never announced its listen address")
		return nil
	}
}

func (d *daemon) get(path string) (int, []byte) {
	resp, err := http.Get(d.url + path)
	if err != nil {
		fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func (d *daemon) post(path, body string) (int, []byte) {
	resp, err := http.Post(d.url+path, "application/json", strings.NewReader(body))
	if err != nil {
		fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// soak attaches (when needed) and runs one bounded soak to completion.
func (d *daemon) soak() {
	if code, body := d.get("/api/v1/status"); code != http.StatusOK {
		fatalf("status: %d %s", code, body)
	} else {
		var st struct {
			Attached bool `json:"attached"`
		}
		json.Unmarshal(body, &st)
		if !st.Attached {
			if code, body := d.post("/api/v1/attach", `{"deployment":"demo27","seed":7}`); code != http.StatusOK {
				fatalf("attach: %d %s", code, body)
			}
		}
	}
	if code, body := d.post("/api/v1/soak/start",
		`{"epochs":2,"inputs_per_scenario":4,"fuzz_seeds":2,"workers":2}`); code != http.StatusOK {
		fatalf("soak start: %d %s", code, body)
	}
	deadline := time.Now().Add(3 * time.Minute)
	for {
		_, body := d.get("/api/v1/status")
		var st struct {
			SoakRunning bool `json:"soak_running"`
		}
		json.Unmarshal(body, &st)
		if !st.SoakRunning {
			return
		}
		if time.Now().After(deadline) {
			fatalf("soak did not finish in time")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// metricValue extracts an unlabeled sample's value, -1 when absent.
func metricValue(body []byte, name string) float64 {
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

func historySoaks(d *daemon) int {
	_, body := d.get("/api/v1/history")
	var h struct {
		Soaks int `json:"soaks"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		fatalf("history: %v", err)
	}
	return h.Soaks
}

func main() {
	root := moduleRoot()
	workdir, err := os.MkdirTemp("", "dice-serve-*")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(workdir)

	bin := filepath.Join(workdir, "dice-serve")
	build := exec.Command("go", "build", "-o", bin, "./cmd/dice-serve")
	build.Dir = root
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fatalf("build dice-serve: %v", err)
	}
	history := filepath.Join(workdir, "history.bin")

	// First life: health, one soak, metrics and findings assertions.
	d := startDaemon(bin, history)
	if code, body := d.get("/healthz"); code != http.StatusOK || !strings.Contains(string(body), `"status":"ok"`) {
		fatalf("healthz: %d %s", code, body)
	}
	d.soak()

	_, metrics := d.get("/metrics")
	for _, series := range []string{
		"dice_live_epochs_total",
		"dice_live_campaigns_total",
		"dice_live_findings_total",
		"dice_pool_leases_total",
		"dice_checkpoint_ring_epochs",
		"dice_federation_summaries_total",
		"dice_serve_soaks_total",
		"dice_serve_history_epochs",
	} {
		if v := metricValue(metrics, series); v <= 0 {
			fatalf("series %s = %v, want > 0\n%s", series, v, metrics)
		}
	}
	if _, again := d.get("/metrics"); !bytes.Equal(metrics, again) {
		fatalf("two scrapes of stable state differ")
	}

	_, body := d.get("/api/v1/findings")
	var findings []struct {
		Epoch    int    `json:"epoch"`
		Scenario string `json:"scenario"`
		Explorer string `json:"explorer"`
		Key      string `json:"key"`
	}
	if err := json.Unmarshal(body, &findings); err != nil {
		fatalf("findings: %v", err)
	}
	if len(findings) == 0 {
		fatalf("soak over the planted faults produced no findings")
	}
	for _, f := range findings {
		if f.Scenario == "" || f.Explorer == "" || f.Key == "" {
			fatalf("finding missing provenance: %+v", f)
		}
	}
	if got := historySoaks(d); got != 1 {
		fatalf("history soaks = %d after first soak, want 1", got)
	}

	// Kill the daemon mid-flight (SIGTERM, as an operator would).
	d.cmd.Process.Signal(syscall.SIGTERM)
	d.cmd.Wait()

	// Second life: the history must resume, and the next soak must extend it.
	d = startDaemon(bin, history)
	if got := historySoaks(d); got != 1 {
		fatalf("restarted daemon resumed %d soaks, want 1", got)
	}
	d.soak()
	if got := historySoaks(d); got != 2 {
		fatalf("post-restart soak counted %d soaks, want 2", got)
	}
	_, body = d.get("/api/v1/history")
	var h struct {
		Trend []struct {
			Soak   int `json:"soak"`
			Epochs int `json:"epochs"`
		} `json:"trend"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		fatalf("history: %v", err)
	}
	if len(h.Trend) != 2 || h.Trend[0].Soak != 1 || h.Trend[1].Soak != 2 {
		fatalf("trendline did not resume across restart: %+v", h.Trend)
	}
	d.cmd.Process.Signal(syscall.SIGTERM)
	d.cmd.Wait()

	fmt.Printf("serve: ok — %d findings, trendline resumed across restart (%+v)\n", len(findings), h.Trend)
}
