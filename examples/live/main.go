// Live mode: the paper's "online" claim end to end. DiCE attaches to the
// 27-router demo deployment while it carries background churn, takes
// periodic low-pause checkpoints into a rolling epoch ring, and soaks every
// fresh epoch with scenario campaigns drawn from an adaptive weighted
// scheduler — link flaps, session resets, prefix churn, staged policy
// rollouts, plus plain exploration. Two latent faults are planted (a
// mis-origination at R12 and a missing import filter on R1's customer
// session); the soak must find them online, shrink each detection to a
// minimal replayable trace, and re-prove that trace against a cold clone of
// the epoch it was found in. The second half of the soak goes idle, so the
// cross-epoch dedupe cache must skip the unchanged epochs outright.
//
// The example is a CI smoke: it exits non-zero unless the violation is
// found, minimized, and replayed, and unless dedupe saved work.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	dice "github.com/dice-project/dice"
)

func main() {
	topo := dice.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	opts := dice.DeployOptions{
		Seed: 1,
		ConfigOverride: dice.ApplyConfigFaults(
			dice.MisOrigination{Router: "R12", Prefix: victim},
			dice.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	deployment.Converge()

	// Churn for the first two epochs, then let the deployment sit idle: the
	// idle epochs capture byte-for-byte identical behavior, which the dedupe
	// cache must recognize.
	const epochs = 4
	churn := dice.DefaultTraffic(3)
	traffic := func(c *dice.Deployment, rng *rand.Rand, epoch int) {
		if epoch <= epochs/2 {
			churn(c, rng, epoch)
		}
	}

	findings := 0
	rt, err := dice.NewLiveRuntime(deployment, topo, dice.LiveOptions{
		Seed:              1,
		ClusterOptions:    opts,
		MaxEpochs:         epochs,
		Traffic:           traffic,
		InputsPerScenario: 8,
		FuzzSeeds:         2,
		ScenariosPerEpoch: 0, // draw every registered scenario each epoch
		Explorers:         []string{"R1"},
		OnFinding: func(f *dice.LiveFinding) {
			findings++
			if findings <= 5 {
				fmt.Printf("  [%v] %s\n", f.Elapsed.Round(time.Millisecond), f)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("soaking %d routers for %d epochs with %d scenarios/epoch\n",
		len(topo.Nodes), epochs, rt.Scheduler().Len())
	report, err := rt.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	stats := rt.Stats()

	fmt.Println()
	fmt.Printf("epochs: %d (pause mean %v, max %v; %d bytes/epoch full, %d delta)\n",
		stats.Epochs, stats.PauseMean().Round(time.Microsecond), stats.CheckpointPauseMax.Round(time.Microsecond),
		stats.SnapshotBytesTotal/stats.Epochs, stats.DeltaBytesTotal/stats.Epochs)
	fmt.Printf("exploration: %d campaigns, %d inputs; dedupe skipped %d campaigns (%d inputs saved)\n",
		stats.Campaigns, stats.InputsExplored, stats.CampaignsDeduped, stats.InputsSaved)
	fmt.Printf("findings: %d (first in epoch %d); traces minimized %d -> %d steps\n",
		report.Len(), stats.FirstDetectionEpoch, stats.TraceStepsBefore, stats.TraceStepsAfter)

	// The assertions CI relies on.
	if !report.Detected(dice.OperatorMistake) {
		log.Fatal("FAIL: the planted mis-origination was not detected online")
	}
	if stats.FirstDetectionEpoch > 2 {
		log.Fatalf("FAIL: first detection in epoch %d; want within the first two", stats.FirstDetectionEpoch)
	}
	minimizedSteady := false
	for _, f := range report.Findings() {
		if f.Class == dice.OperatorMistake && f.Reverified && len(f.Trace) < f.TraceOriginal {
			minimizedSteady = true
			break
		}
	}
	if !minimizedSteady {
		log.Fatal("FAIL: no operator-mistake finding was minimized and re-verified against a cold clone")
	}
	if stats.CampaignsDeduped == 0 || stats.InputsSaved == 0 {
		log.Fatal("FAIL: idle epochs were re-explored; cross-epoch dedupe saved nothing")
	}
	// Non-perturbation (exploration never mutates the deployment) cannot be
	// asserted here — the example's own churn legitimately changes the
	// deployment — so it is pinned by TestRuntimeSoakDetectsMisOrigination,
	// which soaks with idle traffic and compares TotalBestChanges.
	fmt.Println()
	fmt.Println("OK: detected online, minimized, replayed from a cold clone; unchanged epochs deduped")
}
