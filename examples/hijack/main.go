// Hijack: a latent operator mistake on the 27-router Internet-like demo
// topology. R1 is missing the inbound filter on its session with customer R4,
// so a hijacked announcement from that session would propagate. The system is
// currently healthy; a DiCE campaign finds the latent mistake by exploring
// inputs the customer could send, over isolated clones of the live state, and
// streams the finding the moment a clone exposes it.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	dice "github.com/dice-project/dice"
)

func main() {
	topo := dice.Demo27()

	opts := dice.DeployOptions{
		Seed:       7,
		GaoRexford: true, // realistic customer/peer/provider policies
		ConfigOverride: dice.ApplyConfigFaults(
			dice.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	deployment.Converge()

	// The deployed system looks healthy right now.
	if v := dice.CheckDeployment(deployment, dice.DefaultProperties(topo)); len(v) != 0 {
		log.Fatalf("deployment unexpectedly unhealthy: %v", v)
	}
	fmt.Println("deployed system is currently healthy; exploring for latent faults...")

	// Pin the suspect session explicitly; the worker pool parallelizes the
	// clone executions.
	campaign := dice.NewCampaign(deployment, topo,
		dice.WithUnits(dice.Unit{Explorer: "R1", FromPeer: "R4", MaxInputs: 48, FuzzSeeds: 12, Seed: 7}),
		dice.WithSeed(7),
		dice.WithClusterOptions(opts),
		dice.WithWorkers(runtime.NumCPU()),
		dice.WithOnEvent(func(ev dice.Event) {
			if ev.Kind == dice.EventDetection {
				fmt.Printf("  [streamed %v] %s\n", ev.Elapsed, ev.Detection.Violation)
			}
		}))
	result, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if d := result.FirstDetection(dice.OperatorMistake); d != nil {
		fmt.Printf("latent operator mistake exposed after %d explored inputs (%.2fs):\n  %s\n",
			d.InputIndex, d.Elapsed.Seconds(), d.Violation)
	} else {
		fmt.Printf("no fault found in %d inputs; try a larger budget\n", result.InputsExplored)
	}
}
