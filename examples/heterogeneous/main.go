// Heterogeneous: the paper's title scenario — a deployment whose nodes run
// *different implementations* of the same protocol. The 27-router demo runs
// its transit tiers on the bird backend and every tier-3 stub on the frr
// backend. Both are conformant BGP speakers, but they legally disagree at
// the tail of the decision process (bird breaks final ties on the lowest
// router ID, frr on the lowest neighbor address), and each keeps its own
// configuration dialect. A campaign with the CrossImplDivergence property
// finds the planted hijack exactly as a homogeneous campaign would — and
// additionally flags every node whose best path depends on which vendor it
// runs: routing outcomes an operator could not see from either
// implementation's documentation alone.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	dice "github.com/dice-project/dice"
)

func main() {
	topo := dice.Demo27Hetero()
	victim := topo.Nodes[26].Prefixes[0]

	impls := topo.ImplementationCounts()
	fmt.Printf("deployment: %d routers (%d bird transit, %d frr stubs), backends registered: %v\n\n",
		len(topo.Nodes), impls["bird"], impls["frr"], dice.RouterImplementations())

	opts := dice.DeployOptions{
		Seed:       1,
		GaoRexford: true,
		ConfigOverride: dice.ApplyConfigFaults(
			dice.MisOrigination{Router: "R12", Prefix: victim}, // the planted hijack
		),
		MaxEvents: 300000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	deployment.Converge()

	// The divergence is a steady-state property of the mixed deployment:
	// checking the converged cluster already reveals it, before any
	// exploration.
	live := dice.CheckDeployment(deployment, []dice.Property{dice.CrossImplDivergence{}})
	fmt.Printf("steady-state divergences (no exploration yet): %d\n", len(live))
	for i, v := range live {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(live)-3)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	fmt.Println()

	// A full campaign: the default safety properties plus differential
	// conformance, explored from every router.
	props := append(dice.DefaultProperties(topo), dice.CrossImplDivergence{})
	campaign := dice.NewCampaign(deployment, topo,
		dice.WithStrategy(dice.AllNodesStrategy{}),
		dice.WithBudget(dice.Budget{TotalInputs: 54}),
		dice.WithSeed(1),
		dice.WithProperties(props...),
		dice.WithClusterOptions(opts),
		dice.WithWorkers(runtime.NumCPU()))
	res, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	byClass := res.DetectionsByClass()
	fmt.Printf("campaign: %d units, %d inputs in %v\n", len(res.Units), res.InputsExplored, res.Duration.Round(1e6))
	fmt.Printf("detections by class:\n")
	for _, class := range []dice.FaultClass{dice.OperatorMistake, dice.PolicyConflict, dice.ProgrammingError, dice.ImplDivergence} {
		fmt.Printf("  %-26s %d\n", class.String()+":", len(byClass[class]))
	}
	if d := res.FirstDetection(dice.ImplDivergence); d != nil {
		fmt.Printf("\nfirst divergence: %s\n", d.Violation)
	}

	if !res.Detected(dice.OperatorMistake) {
		log.Fatal("heterogeneous campaign missed the planted hijack; increase the budget")
	}
	if !res.Detected(dice.ImplDivergence) {
		log.Fatal("heterogeneous campaign found no implementation divergence")
	}
	fmt.Println("\nthe hijack is found exactly as in a homogeneous deployment, and every")
	fmt.Println("implementation-dependent best path is flagged with both selections named.")
}
