// Distributed: one DiCE campaign executed across real processes. This
// driver builds the dice-control and dice-agent binaries, starts the
// control plane on a loopback port, dials two agents into it, and lets the
// demo27 hijack campaign run sharded across them: shards ship as snapshot
// deltas, results return as summaries only, and the control plane prints
// the per-agent shard counts at the end. The driver asserts the whole
// constellation exits cleanly and that BOTH agents executed shards — this
// is the CI smoke for the distributed subsystem, so it exits non-zero on
// any deviation.
package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "distributed: "+format+"\n", args...)
	os.Exit(1)
}

// moduleRoot finds the repository root so the driver works from any cwd.
func moduleRoot() string {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		fatalf("locate module root: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		fatalf("not inside a Go module")
	}
	return filepath.Dir(gomod)
}

func main() {
	root := moduleRoot()
	bindir, err := os.MkdirTemp("", "dice-distributed-*")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(bindir)

	for _, name := range []string{"dice-control", "dice-agent"} {
		build := exec.Command("go", "build", "-o", filepath.Join(bindir, name), "./cmd/"+name)
		build.Dir = root
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fatalf("build %s: %v", name, err)
		}
	}

	// Control plane first; its stdout announces the dial address and, at the
	// end, the per-agent shard counts this driver asserts on.
	control := exec.Command(filepath.Join(bindir, "dice-control"),
		"-listen", "127.0.0.1:0", "-agents", "2", "-inputs", "36", "-units-per-shard", "2")
	control.Stderr = os.Stderr
	controlOut, err := control.StdoutPipe()
	if err != nil {
		fatalf("%v", err)
	}
	if err := control.Start(); err != nil {
		fatalf("start dice-control: %v", err)
	}

	urlCh := make(chan string, 1)
	shardCounts := map[string]int{}
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		listenRE := regexp.MustCompile(`listening on (http://\S+)`)
		agentRE := regexp.MustCompile(`agent (\S+) ran (\d+) shards`)
		sc := bufio.NewScanner(controlOut)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if m := listenRE.FindStringSubmatch(line); m != nil {
				urlCh <- m[1]
			}
			if m := agentRE.FindStringSubmatch(line); m != nil {
				n, _ := strconv.Atoi(m[2])
				shardCounts[m[1]] = n
			}
		}
	}()

	var controlURL string
	select {
	case controlURL = <-urlCh:
	case <-time.After(30 * time.Second):
		control.Process.Kill()
		fatalf("control plane never announced its listen address")
	}

	agents := make([]*exec.Cmd, 2)
	for i := range agents {
		ag := exec.Command(filepath.Join(bindir, "dice-agent"),
			"-name", fmt.Sprintf("agent-%d", i+1), "-control", controlURL, "-poll", "5ms")
		ag.Stdout = os.Stdout
		ag.Stderr = os.Stderr
		if err := ag.Start(); err != nil {
			control.Process.Kill()
			fatalf("start dice-agent %d: %v", i+1, err)
		}
		agents[i] = ag
	}

	for i, ag := range agents {
		if err := ag.Wait(); err != nil {
			control.Process.Kill()
			fatalf("dice-agent %d failed: %v", i+1, err)
		}
	}
	// Drain the scanner before Wait: Wait closes the stdout pipe, and
	// closing it mid-read loses the tail of control's output (the shard
	// count lines asserted below). EOF arrives when the process exits, so
	// this does not deadlock.
	scanWG.Wait()
	if err := control.Wait(); err != nil {
		fatalf("dice-control failed: %v", err)
	}

	if len(shardCounts) != 2 {
		fatalf("control reported shard counts for %d agents, want 2: %v", len(shardCounts), shardCounts)
	}
	for name, n := range shardCounts {
		if n == 0 {
			fatalf("agent %s ran no shards; the campaign was not actually distributed: %v", name, shardCounts)
		}
	}
	fmt.Printf("distributed: ok — both agents executed shards %v\n", shardCounts)
}
