// Federated: the paper's defining scenario on the 27-router demo. The
// deployment spans three administrative domains (the provider tiers), each
// run by an operator who will not share configurations, policies or routing
// state with the others. Two latent faults are planted — a mis-origination
// at R12 and a missing import filter on R1's customer session — and a
// federated DiCE campaign finds both: every domain explores its own routers
// and checks its own state, and the only thing that crosses a domain
// boundary is a stream of privacy-filtered summaries whose every byte is
// accounted.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	dice "github.com/dice-project/dice"
)

func main() {
	topo := dice.Demo27()
	victim := topo.Nodes[26].Prefixes[0]

	opts := dice.DeployOptions{
		Seed:       1,
		GaoRexford: true, // realistic (and private) customer/peer/provider policies
		ConfigOverride: dice.ApplyConfigFaults(
			dice.MisOrigination{Router: "R12", Prefix: victim},
			dice.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	deployment.Converge()

	// One administrative domain per provider tier. PartitionByAS(topo) would
	// give the paper's strictest setting — 27 domains, one per AS.
	partition := dice.PartitionByTier(topo)
	fmt.Printf("federation: %d domains over %d routers\n", len(partition.Domains), len(topo.Nodes))
	for _, d := range partition.Domains {
		fmt.Printf("  %-6s %d routers\n", d.Name, len(d.Nodes))
	}
	fmt.Println()

	summaries := 0
	campaign := dice.NewCampaign(deployment, topo,
		dice.WithFederation(partition),
		dice.WithBudget(dice.Budget{TotalInputs: 60}),
		dice.WithSeed(1),
		dice.WithClusterOptions(opts),
		dice.WithWorkers(runtime.NumCPU()),
		dice.WithOnEvent(func(ev dice.Event) {
			switch ev.Kind {
			case dice.EventSummary:
				// A domain just told the exploring domain that a property
				// failed — without revealing any of its local state.
				if summaries < 5 {
					fmt.Printf("  [%v] summary from %s: %d findings, %d bytes\n",
						ev.Elapsed, ev.Domain, len(ev.Summary.Digests), ev.Summary.Size())
				}
				summaries++
			case dice.EventDetection:
				fmt.Printf("  [%v] detected: %s\n", ev.Elapsed, ev.Detection.Violation)
			}
		}))
	res, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("campaign: %d units across %d domains, %d inputs in %v\n",
		len(res.Units), len(res.Domains), res.InputsExplored, res.Duration.Round(1e6))
	fmt.Printf("detections: %d (operator mistakes found: %v)\n",
		len(res.Detections), res.Detected(dice.OperatorMistake))
	fmt.Printf("disclosure: %d summaries, %d bytes crossed domain boundaries\n",
		res.Disclosed.Summaries, res.Disclosed.Bytes)
	fmt.Printf("            a single full-state exchange would cost %d bytes\n", res.FullStateBytes)
	fmt.Println()
	fmt.Println("per-domain breakdown:")
	fmt.Println("  domain  units  inputs  detections  sent(bytes)  received(bytes)")
	for _, d := range res.Domains {
		fmt.Printf("  %-6s  %5d  %6d  %10d  %11d  %15d\n",
			d.Domain, d.Units, d.InputsExplored, d.Detections, d.BytesSent, d.BytesReceived)
	}
	if !res.Detected(dice.OperatorMistake) {
		log.Fatal("federated campaign missed the planted faults; increase the budget")
	}
}
