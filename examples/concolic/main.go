// Concolic: using the concolic execution engine standalone on the BGP UPDATE
// parser. Starting from one well-formed message, the explorer negates the
// branch constraints recorded during parsing and synthesizes inputs that
// drive the parser down its other paths (different attribute types, invalid
// origins, malformed prefixes, ...). This is the same generational search a
// Campaign runs inside each exploration unit, where every executed input
// additionally drives an isolated clone of the deployed system.
package main

import (
	"fmt"
	"log"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/concolic"
)

func main() {
	seedMsg := &bgp.Update{
		Attrs: &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 0x0a000001},
		NLRI:  []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")},
	}
	seedMsg.Attrs.SetMED(50)
	body := seedMsg.EncodeBody()

	parseErrors := 0
	execute := func(in *concolic.Input, m *concolic.Machine) error {
		if _, err := bgp.ParseUpdateSym(m, "update", in.Region("update")); err != nil {
			parseErrors++
		}
		return nil // parse failures are interesting paths, not test failures
	}

	explorer := concolic.NewExplorer(execute, concolic.ExplorerOptions{MaxExecutions: 64, Seed: 1})
	explorer.AddSeed(concolic.NewInput("update", body))
	report, err := explorer.Run()
	if err != nil {
		log.Fatal(err)
	}

	stats := report.Stats
	fmt.Printf("executions:        %d\n", stats.Executions)
	fmt.Printf("unique paths:      %d\n", stats.UniquePaths)
	fmt.Printf("covered branches:  %d\n", stats.CoverageSites)
	fmt.Printf("solver queries:    %d (sat %d / unsat %d)\n", stats.SolverQueries, stats.SolverSat, stats.SolverUnsat)
	fmt.Printf("parser error paths reached: %d\n", parseErrors)
	fmt.Println("\ncovered branch sites:")
	for _, site := range explorer.Coverage() {
		fmt.Println("  " + site)
	}
}
