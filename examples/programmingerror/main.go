// Programming error: the UPDATE handler of router R2 crashes whenever a
// message carries community 65001:666 — a narrow input condition hidden deep
// in handler code. A DiCE campaign's concolic exploration of the handler
// synthesizes exactly that input and the crash shows up as a node-health
// violation on the clone, never on the deployed node.
package main

import (
	"context"
	"fmt"
	"log"

	dice "github.com/dice-project/dice"
	"github.com/dice-project/dice/internal/bgp"
)

func main() {
	topo := dice.Line(3)
	bug := dice.CommunityCrash("R2", bgp.NewCommunity(65001, 666))

	opts := dice.DeployOptions{Seed: 7}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	dice.InstallCodeFaults(deployment.Routers, bug)
	deployment.Converge()

	campaign := dice.NewCampaign(deployment, topo,
		dice.WithUnits(dice.Unit{Explorer: "R2", FromPeer: "R1", MaxInputs: 96, FuzzSeeds: 8, Seed: 7}),
		dice.WithSeed(7),
		dice.WithCodeFaults(bug),
		dice.WithClusterOptions(opts))
	result, err := campaign.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	if d := result.FirstDetection(dice.ProgrammingError); d != nil {
		fmt.Printf("programming error found after %d explored inputs:\n  %s\n", d.InputIndex, d.Violation)
		fmt.Printf("triggering input: %d bytes of UPDATE body\n", len(d.Input.Region("update")))
	} else {
		fmt.Printf("bug not reached within %d inputs\n", result.InputsExplored)
	}
	if crashed, _ := deployment.Router("R2").Panicked(); crashed {
		log.Fatal("isolation violated: the deployed router crashed")
	}
	fmt.Println("deployed router kept running: the crash only ever happened on clones")
}
