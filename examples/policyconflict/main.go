// Policy conflict: three autonomous systems in a ring each prefer the route
// through their clockwise neighbor (a dispute wheel / BAD GADGET). The
// deployed system happens to be stable, but DiCE's exploration of withdrawals
// and route-preference flips over cloned snapshots exposes the oscillation.
package main

import (
	"fmt"
	"log"

	dice "github.com/dice-project/dice"
	"github.com/dice-project/dice/internal/checker"
)

func main() {
	topo := dice.Ring(3)
	contested := topo.Nodes[0].Prefixes[0]

	opts := dice.DeployOptions{
		Seed: 5,
		ConfigOverride: dice.ApplyConfigFaults(
			dice.DisputeWheel{Routers: topo.NodeNames(), Prefix: contested},
		),
		MaxEvents: 100000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	deployment.Converge()
	fmt.Printf("deployed ring converged; contested prefix is %s\n", contested)

	engine := dice.NewEngine(deployment, topo, dice.EngineOptions{
		Explorer:    "R2",
		FromPeer:    "R1",
		MaxInputs:   32,
		FuzzSeeds:   8,
		UseConcolic: true,
		Seed:        5,
		Properties: []dice.Property{
			checker.Convergence{MaxChangesPerPrefix: 6},
			checker.NodeHealth{},
		},
		ClusterOptions:  opts,
		ShadowMaxEvents: 30000,
	})
	result, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}
	if d := result.FirstDetection(dice.PolicyConflict); d != nil {
		fmt.Printf("policy conflict exposed after %d inputs:\n  %s\n", d.InputIndex, d.Violation)
	} else {
		fmt.Printf("no oscillation observed within %d inputs\n", result.InputsExplored)
	}
}
