// Policy conflict: three autonomous systems in a ring each prefer the route
// through their clockwise neighbor (a dispute wheel / BAD GADGET). The
// deployed system happens to be stable, but a DiCE campaign's exploration of
// withdrawals and route-preference flips over cloned snapshots exposes the
// oscillation. The campaign honors a wall-clock budget: exploration gives up
// cleanly if the oscillation stays hidden for too long.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dice "github.com/dice-project/dice"
	"github.com/dice-project/dice/internal/checker"
)

func main() {
	topo := dice.Ring(3)
	contested := topo.Nodes[0].Prefixes[0]

	opts := dice.DeployOptions{
		Seed: 5,
		ConfigOverride: dice.ApplyConfigFaults(
			dice.DisputeWheel{Routers: topo.NodeNames(), Prefix: contested},
		),
		MaxEvents: 100000,
	}
	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	deployment.Converge()
	fmt.Printf("deployed ring converged; contested prefix is %s\n", contested)

	campaign := dice.NewCampaign(deployment, topo,
		dice.WithUnits(dice.Unit{Explorer: "R2", FromPeer: "R1", MaxInputs: 32, FuzzSeeds: 8, Seed: 5}),
		dice.WithSeed(5),
		dice.WithBudget(dice.Budget{MaxDuration: 30 * time.Second}),
		dice.WithProperties(
			checker.Convergence{MaxChangesPerPrefix: 6},
			checker.NodeHealth{},
		),
		dice.WithClusterOptions(opts),
		dice.WithShadowMaxEvents(30000))
	result, err := campaign.Run(context.Background())
	if err != nil && (result == nil || !result.Cancelled) {
		log.Fatal(err)
	}
	if d := result.FirstDetection(dice.PolicyConflict); d != nil {
		fmt.Printf("policy conflict exposed after %d inputs:\n  %s\n", d.InputIndex, d.Violation)
	} else {
		fmt.Printf("no oscillation observed within %d inputs\n", result.InputsExplored)
	}
}
