// Quickstart: deploy three emulated BGP routers, plant a prefix hijack
// (operator mistake), and let one DiCE exploration round detect it.
package main

import (
	"fmt"
	"log"

	dice "github.com/dice-project/dice"
)

func main() {
	// A three-router chain: R1 - R2 - R3, each originating 10.<i>.0.0/16.
	topo := dice.Line(3)

	// Operator mistake: R3 also originates R1's prefix.
	hijacked := topo.Nodes[0].Prefixes[0]
	opts := dice.DeployOptions{
		Seed:           1,
		ConfigOverride: dice.ApplyConfigFaults(dice.MisOrigination{Router: "R3", Prefix: hijacked}),
	}

	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	deployment.Converge()

	// One DiCE round: snapshot, explore inputs over isolated clones, check.
	engine := dice.NewEngine(deployment, topo, dice.EngineOptions{
		Explorer:       "R2",
		MaxInputs:      16,
		UseConcolic:    true,
		Seed:           1,
		ClusterOptions: opts,
	})
	result, err := engine.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("explored %d inputs over snapshot clones (%d bytes of snapshot)\n",
		result.InputsExplored, result.SnapshotBytes)
	for _, d := range result.Detections {
		fmt.Printf("detected after %d inputs: %s\n", d.InputIndex, d.Violation)
	}
	if !result.Detected(dice.OperatorMistake) {
		log.Fatal("expected the hijack to be detected")
	}
}
