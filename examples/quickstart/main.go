// Quickstart: deploy three emulated BGP routers, plant a prefix hijack
// (operator mistake), and let a DiCE campaign detect it — streaming the
// detection the moment exploration finds it.
package main

import (
	"context"
	"fmt"
	"log"

	dice "github.com/dice-project/dice"
)

func main() {
	// A three-router chain: R1 - R2 - R3, each originating 10.<i>.0.0/16.
	topo := dice.Line(3)

	// Operator mistake: R3 also originates R1's prefix.
	hijacked := topo.Nodes[0].Prefixes[0]
	opts := dice.DeployOptions{
		Seed:           1,
		ConfigOverride: dice.ApplyConfigFaults(dice.MisOrigination{Router: "R3", Prefix: hijacked}),
	}

	deployment, err := dice.Deploy(topo, opts)
	if err != nil {
		log.Fatal(err)
	}
	deployment.Converge()

	// A campaign: snapshot once, explore inputs over isolated clones in
	// parallel, check properties, stream detections.
	campaign := dice.NewCampaign(deployment, topo,
		dice.WithExplorers("R2"),
		dice.WithBudget(dice.Budget{TotalInputs: 16}),
		dice.WithSeed(1),
		dice.WithClusterOptions(opts))
	events := campaign.Events()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range events {
			if ev.Kind == dice.EventDetection {
				fmt.Printf("streamed after %v: %s\n", ev.Elapsed, ev.Detection.Violation)
			}
		}
	}()

	result, err := campaign.Run(context.Background())
	<-drained // Run closed the channel; wait for the last streamed lines
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("explored %d inputs over snapshot clones (%d bytes of snapshot)\n",
		result.InputsExplored, result.SnapshotBytes)
	for _, d := range result.Detections {
		fmt.Printf("detected after %d inputs: %s\n", d.InputIndex, d.Violation)
	}
	if !result.Detected(dice.OperatorMistake) {
		log.Fatal("expected the hijack to be detected")
	}
}
