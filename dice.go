// Package dice is the public API of the DiCE reproduction: online testing of
// federated and heterogeneous distributed systems (Canini et al., SIGCOMM'11
// demo), rebuilt as a self-contained Go library around an emulated BGP
// deployment.
//
// The package re-exports the pieces a user composes:
//
//   - Topologies (package internal/topology) describe routers, autonomous
//     systems, originated prefixes and link relationships; Demo27 is the
//     27-router topology from the paper's Figure 1.
//   - Deployments (package internal/cluster) turn a topology into running,
//     emulated BIRD-like BGP routers (package internal/bird) on a
//     deterministic virtual-time network (package internal/netem).
//   - Faults (package internal/faults) plant the paper's three fault
//     classes: operator mistakes, policy conflicts, programming errors.
//   - The Campaign (package internal/dice) runs the DiCE workflow online: a
//     Strategy plans (explorer, peer) exploration units, a worker pool
//     executes concolic + grammar-fuzzed exploration of cloned snapshots in
//     parallel, detections stream out as events, and property checking goes
//     through a narrow information-sharing interface (package
//     internal/checker). The legacy Engine remains as a one-round shim.
//
// The experiment harness (experiments.go) regenerates every evaluation
// artifact described in the paper; see EXPERIMENTS.md for the mapping.
package dice

import (
	"time"

	"github.com/dice-project/dice/internal/agent"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/control"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/live"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/topology"
)

// Re-exported topology constructors.
var (
	// Demo27 builds the paper's 27-router demo topology.
	Demo27 = topology.Demo27
	// Demo27Hetero builds the mixed-implementation demo variant: bird
	// transit tiers, frr stubs.
	Demo27Hetero = topology.Demo27Hetero
	// GaoRexford builds a random Internet-like topology.
	GaoRexford = topology.GaoRexford
	// Line, Ring, Clique and Star build small regular topologies.
	Line   = topology.Line
	Ring   = topology.Ring
	Clique = topology.Clique
	Star   = topology.Star
)

// Heterogeneous backends — deployments that mix router implementations, the
// paper's heterogeneity scenario. Topology nodes carry an implementation tag
// (Topology.SetImpl; empty selects the default bird backend), the cluster
// builds each node with its registered backend, and the
// CrossImplDivergence property flags nodes whose best-path selection
// depends on the implementation they run.
type (
	// RouterBackend describes one registered router implementation.
	RouterBackend = node.Backend
	// RouterNode is the behavioral interface every backend implements.
	RouterNode = node.Router
)

var (
	// RouterImplementations lists the registered backend names.
	RouterImplementations = node.Implementations
)

// CrossImplDivergence is the differential conformance property for
// heterogeneous deployments.
type CrossImplDivergence = checker.CrossImplDivergence

// Topology describes the routers, ASes and links of a deployment.
type Topology = topology.Topology

// Deployment is a running emulated cluster of BGP routers.
type Deployment = cluster.Cluster

// DeployOptions configure how a topology is instantiated.
type DeployOptions = cluster.Options

// Deploy builds the routers for a topology and returns the deployment
// (unconverged; call Converge).
func Deploy(topo *Topology, opts DeployOptions) (*Deployment, error) {
	return cluster.Build(topo, opts)
}

// Campaign API — the primary way to run DiCE. A campaign plans exploration
// units via a Strategy, executes their clone runs in parallel on a worker
// pool, honors context cancellation, and streams detections while running.
type (
	// Campaign orchestrates online exploration of a deployment.
	Campaign = dice.Campaign
	// CampaignOption configures a Campaign at construction.
	CampaignOption = dice.CampaignOption
	// CampaignResult aggregates a finished (or cancelled) campaign.
	CampaignResult = dice.CampaignResult
	// Budget bounds a campaign's total inputs and wall-clock duration.
	Budget = dice.Budget
	// Strategy plans the (explorer, peer) units a campaign runs.
	Strategy = dice.Strategy
	// Unit is one schedulable (explorer, peer) piece of exploration work.
	Unit = dice.Unit
	// Event is one streamed campaign occurrence.
	Event = dice.Event
	// EventKind discriminates streamed campaign events.
	EventKind = dice.EventKind
)

// Campaign construction options.
var (
	// WithExplorers sets the explorer node set the strategy plans over.
	WithExplorers = dice.WithExplorers
	// WithStrategy sets the planning strategy (degree-based by default).
	WithStrategy = dice.WithStrategy
	// WithUnits pins the exact (explorer, peer) units, bypassing planning.
	WithUnits = dice.WithUnits
	// WithWorkers bounds how many clone executions run in parallel.
	WithWorkers = dice.WithWorkers
	// WithBudget bounds total inputs and wall-clock duration.
	WithBudget = dice.WithBudget
	// WithSeed sets the campaign seed (per-unit seeds derive from it).
	WithSeed = dice.WithSeed
	// WithFuzzSeeds sets the grammar-fuzzed seed corpus size per unit.
	WithFuzzSeeds = dice.WithFuzzSeeds
	// WithConcolic toggles concolic input derivation (on by default).
	WithConcolic = dice.WithConcolic
	// WithPooledClones toggles the pooled shadow-cluster runtime (on by
	// default); disabling it cold-rebuilds a clone per explored input.
	WithPooledClones = dice.WithPooledClones
	// WithProperties sets the checked properties.
	WithProperties = dice.WithProperties
	// WithCodeFaults installs code faults on every shadow clone.
	WithCodeFaults = dice.WithCodeFaults
	// WithClusterOptions sets the options for restored shadow clusters.
	WithClusterOptions = dice.WithClusterOptions
	// WithShadowMaxEvents bounds each clone run.
	WithShadowMaxEvents = dice.WithShadowMaxEvents
	// WithEventBuffer sets the Events channel buffer.
	WithEventBuffer = dice.WithEventBuffer
	// WithOnEvent registers a synchronous event callback.
	WithOnEvent = dice.WithOnEvent
	// WithFederation splits the campaign along administrative-domain
	// boundaries: per-domain planning, domain-scoped checking, and
	// checker.Summary digests as the only cross-domain traffic.
	WithFederation = dice.WithFederation
)

// Federation — testing a deployment as a federation of administrative
// domains, the paper's defining scenario. Partition a topology, hand the
// partition to WithFederation, and the campaign's CampaignResult reports
// Disclosed bytes plus a per-domain breakdown.
type (
	// Domain is one administrative domain: a named set of routers.
	Domain = federation.Domain
	// Partition assigns every router to exactly one domain.
	Partition = federation.Partition
	// DisclosureStats aggregates the summaries (and bytes) that crossed
	// domain boundaries during a federated campaign.
	DisclosureStats = dice.DisclosureStats
	// DomainResult is one domain's slice of a federated campaign result.
	DomainResult = dice.DomainResult
	// Summary is the only message type exchanged between domains: digests
	// of local check outcomes, never configurations or route state.
	Summary = checker.Summary
	// ViolationDigest is the privacy-filtered projection of a Violation.
	ViolationDigest = checker.ViolationDigest
	// ForwardingEdge is one (node, prefix, next-hop) entry of the minimized
	// forwarding projection exchanged for cross-domain loop checking.
	ForwardingEdge = checker.ForwardingEdge
)

// Partition constructors.
var (
	// PartitionByAS makes every autonomous system its own domain (the
	// paper's federation model).
	PartitionByAS = federation.PartitionByAS
	// PartitionByTier groups routers into one domain per topology tier.
	PartitionByTier = federation.PartitionByTier
	// NewPartition builds a partition from explicit domains.
	NewPartition = federation.NewPartition
)

// Exploration strategies.
type (
	// DegreeStrategy explores from the highest-degree router(s).
	DegreeStrategy = dice.DegreeStrategy
	// RoundRobinStrategy cycles explorers and their peers over a fixed
	// number of units.
	RoundRobinStrategy = dice.RoundRobinStrategy
	// AllNodesStrategy explores every router of the topology.
	AllNodesStrategy = dice.AllNodesStrategy
)

// Event kinds streamed by Campaign.Events.
const (
	EventCampaignStart = dice.EventCampaignStart
	EventSnapshot      = dice.EventSnapshot
	EventUnitStart     = dice.EventUnitStart
	EventDetection     = dice.EventDetection
	EventSummary       = dice.EventSummary
	EventUnitEnd       = dice.EventUnitEnd
	EventCampaignEnd   = dice.EventCampaignEnd
)

// NewCampaign returns a campaign over the deployed cluster. Subscribe with
// Events, then call Run(ctx) once; detections stream before Run returns.
func NewCampaign(live *Deployment, topo *Topology, opts ...CampaignOption) *Campaign {
	return dice.NewCampaign(live, topo, opts...)
}

// Live mode — the paper's defining "online" scenario as a runtime: attach to
// a deployment carrying live traffic, checkpoint it periodically into a
// rolling epoch ring, and soak each fresh epoch with scheduler-drawn shadow
// campaigns under a resource governor. Detections land in a LiveReport with
// per-epoch provenance and a minimized, cold-clone-re-verified trace.
type (
	// LiveRuntime is the online shadow-testing runtime.
	LiveRuntime = live.Runtime
	// LiveOptions configure a live runtime (traffic, governor, exploration).
	LiveOptions = live.Options
	// LiveStats aggregates a soak's counters (pauses, deltas, dedupe, overhead).
	LiveStats = live.Stats
	// LiveReport is the soak's violation store.
	LiveReport = live.Report
	// LiveFinding is one detection with epoch/scenario provenance and its
	// minimized replayable trace.
	LiveFinding = live.Finding
	// LiveTraceStep is one injected message of a finding's trace.
	LiveTraceStep = live.TraceStep
	// LiveScheduler is the adaptive weighted scenario queue.
	LiveScheduler = live.Scheduler
	// LivePathCache is the persistable cross-epoch path-dedupe cache.
	LivePathCache = live.PathCache
	// TrafficDriver injects an epoch's live traffic into the deployment.
	TrafficDriver = live.TrafficDriver
	// ChurnScenario is a named churn generator the live scheduler draws
	// (link flap, session reset, prefix churn, staged policy updates, ...).
	ChurnScenario = faults.Scenario
	// EpochRing is the bounded, delta-measured checkpoint history.
	EpochRing = checkpoint.Ring
	// Epoch is one entry of the ring.
	Epoch = checkpoint.Epoch
)

var (
	// NewLiveRuntime attaches a live runtime to a deployment.
	NewLiveRuntime = live.NewRuntime
	// DefaultTraffic builds the default background-churn traffic driver.
	DefaultTraffic = live.DefaultTraffic
	// NewLivePathCache builds an empty dedupe cache (persist with Save/Load).
	NewLivePathCache = live.NewPathCache
	// LiveScenarios builds the default churn-scenario set for a topology.
	LiveScenarios = faults.Scenarios
	// FaultCatalog returns a prototype of every registered fault and
	// scenario, the stable name/class registry the scheduler keys on.
	FaultCatalog = faults.Catalog
	// WithSnapshotStore runs a campaign against a pre-taken epoch store
	// instead of snapshotting the live cluster (the campaign-from-epoch
	// entry point the live runtime uses).
	WithSnapshotStore = dice.WithSnapshotStore
	// WithClonePrelude primes every shadow clone before its explored input.
	WithClonePrelude = dice.WithClonePrelude
)

// Engine drives DiCE exploration rounds against a deployment. It is the
// legacy single-round API, now a thin shim over a single-unit Campaign.
type Engine = dice.Engine

// EngineOptions configure an exploration round.
type EngineOptions = dice.Options

// Result is the outcome of one exploration unit (or one legacy round).
type Result = dice.Result

// Detection is one detected fault.
type Detection = dice.Detection

// NewEngine returns an exploration engine for a deployed cluster.
func NewEngine(live *Deployment, topo *Topology, opts EngineOptions) *Engine {
	return dice.New(live, topo, opts)
}

// Fault classes (the paper's three, plus the divergence class heterogeneous
// deployments add).
const (
	OperatorMistake  = checker.ClassOperatorMistake
	PolicyConflict   = checker.ClassPolicyConflict
	ProgrammingError = checker.ClassProgrammingError
	ImplDivergence   = checker.ClassImplDivergence
)

// FaultClass identifies one of the paper's fault classes.
type FaultClass = checker.FaultClass

// Properties and checking.
type (
	// Property is a checkable system property.
	Property = checker.Property
	// Violation is a concrete property violation.
	Violation = checker.Violation
)

// DefaultProperties returns the standard property set for a topology.
func DefaultProperties(topo *Topology) []Property { return checker.DefaultProperties(topo) }

// CheckDeployment evaluates the properties directly against the deployed
// cluster (DiCE normally checks explored clones instead).
func CheckDeployment(d *Deployment, props []Property) []Violation {
	return checker.CheckAll(d, props).Violations()
}

// Fault injection re-exports.
type (
	// ConfigFault is a configuration-level fault (operator mistake or policy
	// conflict).
	ConfigFault = faults.ConfigFault
	// CodeFault is a code-level fault (programming error).
	CodeFault = faults.CodeFault
)

// Operator mistakes, policy conflicts and programming errors.
var (
	// ApplyConfigFaults adapts config faults into a DeployOptions override.
	ApplyConfigFaults = faults.ApplyConfigFaults
	// InstallCodeFaults installs handler bugs on deployed routers.
	InstallCodeFaults = faults.InstallCodeFaults
	// CommunityCrash, LongPathCrash, MEDZeroCrash and DroppedWithdrawals
	// build canned programming errors.
	CommunityCrash     = faults.CommunityCrash
	LongPathCrash      = faults.LongPathCrash
	MEDZeroCrash       = faults.MEDZeroCrash
	DroppedWithdrawals = faults.DroppedWithdrawals
)

// MisOrigination is the prefix-hijack operator mistake.
type MisOrigination = faults.MisOrigination

// MissingImportFilter is the latent missing-filter operator mistake.
type MissingImportFilter = faults.MissingImportFilter

// DisputeWheel is the policy-conflict fault.
type DisputeWheel = faults.DisputeWheel

// Snapshot is a consistent cut of a deployment: per-node checkpoints plus
// the in-flight channel state.
type Snapshot = checkpoint.Snapshot

// SnapshotStore holds a snapshot in decoded, restore-ready form: immutable
// per-node router images plus decoded baseline state, built once and shared
// by every clone. Campaigns construct one internally; it is exported for
// custom clone runtimes.
type SnapshotStore = checkpoint.Store

// NewSnapshotStore decodes a snapshot into a restore-ready store.
func NewSnapshotStore(s *Snapshot) (*SnapshotStore, error) { return checkpoint.NewStore(s) }

// ClonePool is the pooled shadow-cluster runtime: workers lease clones that
// are rewound to the snapshot in place instead of rebuilt.
type ClonePool = cluster.ClonePool

// NewClonePool returns a clone pool over a snapshot store.
func NewClonePool(topo *Topology, store *SnapshotStore, opts DeployOptions) *ClonePool {
	return cluster.NewClonePool(topo, store, opts)
}

// ClonePoolStats summarizes clone-lifecycle activity: cold builds vs
// in-place resets and their cumulative cost.
type ClonePoolStats = cluster.PoolStats

// EncodeSnapshot serializes a snapshot (re-exported from
// internal/checkpoint); the experiments report its length as the snapshot
// footprint.
func EncodeSnapshot(s *Snapshot) ([]byte, error) { return checkpoint.Encode(s) }

// Convenience wrappers.

// ConvergeAndSnapshotSize converges a deployment and returns how long the
// snapshot of its state takes and how many bytes it occupies.
func ConvergeAndSnapshotSize(d *Deployment) (time.Duration, int, error) {
	d.Converge()
	start := time.Now()
	snap := d.Snapshot()
	elapsed := time.Since(start)
	data, err := EncodeSnapshot(snap)
	if err != nil {
		return 0, 0, err
	}
	return elapsed, len(data), nil
}

// Distributed execution — running one campaign's clone fan-out across
// dice-agent processes coordinated by a dice-control plane. The control
// plane shards the planned units, leases shards to registered agents with
// heartbeat-renewed expiry (lost agents' shards are reassigned), ships each
// shard as a snapshot delta against a baseline the agent fetched once, and
// aggregates only checker.Summary results back — the federation privacy
// boundary becomes the wire protocol.
type (
	// Controller is the campaign-side control plane; it implements
	// RemoteExecutor, so hand it to WithRemoteExecution.
	Controller = control.Controller
	// ControllerConfig configures a Controller (shard size, lease TTL,
	// minimum agent count, attempt cap).
	ControllerConfig = control.Config
	// Agent executes leased shards against a control plane, reusing the
	// campaign/clone-pool machinery locally.
	Agent = agent.Agent
	// AgentConfig configures an Agent (name, control URL, workers, poll
	// interval).
	AgentConfig = agent.Config
	// RemoteExecutor executes a campaign's planned units remotely; the
	// campaign keeps planning, snapshotting, dedup and aggregation local.
	RemoteExecutor = dice.RemoteExecutor
	// RemoteExecStats accounts the distributed run: shards, agents,
	// reassignments, and baseline/shard/result wire bytes.
	RemoteExecStats = dice.RemoteStats
)

var (
	// NewController builds a campaign-side control plane.
	NewController = control.NewController
	// NewControlHandler exposes a Controller over HTTP; agents dial it
	// outbound (serve it with net/http, or wrap it with NewInProcessClient
	// for same-process agents).
	NewControlHandler = control.NewHandler
	// NewInProcessClient adapts a control handler into an http.Client
	// whose transport dispatches in process through the identical frame
	// encoding as TCP.
	NewInProcessClient = control.InProcessClient
	// NewAgent builds a shard-executing agent.
	NewAgent = agent.New
	// WithRemoteExecution routes a campaign's unit execution through a
	// RemoteExecutor instead of the in-process worker pool.
	WithRemoteExecution = dice.WithRemoteExecution
)
