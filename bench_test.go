package dice

// Benchmarks regenerating the paper's evaluation artifacts. Each benchmark
// corresponds to one experiment from DESIGN.md / EXPERIMENTS.md; run with
//
//	go test -bench=. -benchmem
//
// The benchmarks use the quick experiment configuration so a full sweep stays
// in the seconds-to-minutes range; cmd/dice-bench runs the full-size versions
// and prints the paper-style rows.

import (
	"context"
	"runtime"
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/fuzz"
	"github.com/dice-project/dice/internal/topology"
)

// BenchmarkE1Demo27Routers regenerates the Figure 1 demo run: a full DiCE
// exploration round over the 27-router topology with all three fault classes
// planted.
func BenchmarkE1Demo27Routers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunE1(ExperimentConfig{Quick: true, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2SnapshotClone measures the Figure 2 workflow primitives:
// consistent snapshot of the demo deployment and restoration of one shadow
// clone.
func BenchmarkE2SnapshotClone(b *testing.B) {
	topo := topology.Demo27()
	live := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	live.Converge()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := live.Snapshot()
		if _, err := cluster.FromSnapshot(topo, snap, cluster.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2SnapshotEncode measures serializing the 27-node snapshot (the
// per-node checkpoint sizes reported by E2/E4).
func BenchmarkE2SnapshotEncode(b *testing.B) {
	topo := topology.Demo27()
	live := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	live.Converge()
	snap := live.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checkpoint.Encode(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3DetectionLatency regenerates the detection-latency table
// (three fault classes on the small topology size).
func BenchmarkE3DetectionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunE3(ExperimentConfig{Quick: true, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4OverheadBaseline measures concrete (DiCE off) per-UPDATE
// processing on a converged two-router deployment.
func BenchmarkE4OverheadBaseline(b *testing.B) {
	benchUpdateHandling(b, false)
}

// BenchmarkE4OverheadInstrumented measures per-UPDATE processing with DiCE's
// symbolic tracing armed for every message.
func BenchmarkE4OverheadInstrumented(b *testing.B) {
	benchUpdateHandling(b, true)
}

func benchUpdateHandling(b *testing.B, instrument bool) {
	topo := topology.Line(2)
	live := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	live.Converge()
	gen := fuzz.New(fuzz.Options{Seed: 1})
	bodies := make([][]byte, 256)
	for i := range bodies {
		bodies[i] = gen.Body()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := bodies[i%len(bodies)]
		if instrument {
			in := concolic.NewInput("update", body)
			m := concolic.NewMachine(in, concolic.MachineOptions{})
			live.Router("R2").ExploreNextUpdate(m, "R1")
		}
		live.InjectRaw("R1", "R2", buildWire(body))
		live.Converge()
	}
}

// BenchmarkE4CheckpointNode measures one lightweight node checkpoint.
func BenchmarkE4CheckpointNode(b *testing.B) {
	topo := topology.Demo27()
	live := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	live.Converge()
	r := live.Router("R1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := r.TakeCheckpoint()
		if _, err := checkpoint.EncodeNode(cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5ExplorationCombined regenerates the exploration-effectiveness
// comparison (concolic + fuzzing finding the guarded handler bug).
func BenchmarkE5ExplorationCombined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunE5(ExperimentConfig{Quick: true, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5ConcolicStep measures a single concolic exploration step over
// the BGP UPDATE parser (path recording plus constraint negation).
func BenchmarkE5ConcolicStep(b *testing.B) {
	u := &bgp.Update{
		Attrs: &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001, 65002}, NextHop: 1},
		NLRI:  []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")},
	}
	u.Attrs.SetMED(100)
	body := u.EncodeBody()
	execute := func(in *concolic.Input, m *concolic.Machine) error {
		_, err := bgp.ParseUpdateSym(m, "update", in.Region("update"))
		return err
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := concolic.NewExplorer(execute, concolic.ExplorerOptions{MaxExecutions: 4, Seed: int64(i)})
		e.AddSeed(concolic.NewInput("update", body))
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Fuzzer measures grammar-based UPDATE generation throughput and
// allocation footprint.
func BenchmarkE6Fuzzer(b *testing.B) {
	topo := topology.Demo27()
	var opts fuzz.Options
	opts.Seed = 1
	for _, n := range topo.Nodes {
		opts.Prefixes = append(opts.Prefixes, n.Prefixes...)
		opts.ASNs = append(opts.ASNs, n.AS)
	}
	g := fuzz.New(opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.Body()) == 0 {
			b.Fatal("empty body")
		}
	}
}

// BenchmarkE7NarrowInterface measures one full property-checking round over
// the 27-router deployment through the narrow information-sharing interface.
func BenchmarkE7NarrowInterface(b *testing.B) {
	topo := topology.Demo27()
	live := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	live.Converge()
	props := DefaultProperties(topo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := CheckDeployment(live, props); len(v) != 0 {
			b.Fatalf("unexpected violations: %v", v)
		}
	}
}

// benchCampaignDemo27 runs a multi-explorer campaign over the 27-router demo
// with a fixed input budget and the given worker-pool size. Comparing the
// workers=1 and workers=NumCPU variants demonstrates the parallel speedup of
// clone execution (the campaign's hot path): the same budget, the same
// detections, divided across the pool.
func benchCampaignDemo27(b *testing.B, workers int) {
	topo := topology.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	copts := cluster.Options{
		Seed:           1,
		ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: "R12", Prefix: victim}),
		MaxEvents:      300000,
	}
	live := cluster.MustBuild(topo, copts)
	live.Converge()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		campaign := NewCampaign(live, topo,
			WithStrategy(AllNodesStrategy{}),
			WithBudget(Budget{TotalInputs: 54}),
			WithFuzzSeeds(2),
			WithSeed(1),
			WithClusterOptions(copts),
			WithWorkers(workers))
		res, err := campaign.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.InputsExplored == 0 || len(res.Detections) == 0 {
			b.Fatalf("campaign found nothing: %d inputs, %d detections", res.InputsExplored, len(res.Detections))
		}
	}
}

// BenchmarkE8CampaignSerial is the 27-unit campaign with serial clone
// execution (the pre-Campaign baseline behaviour).
func BenchmarkE8CampaignSerial(b *testing.B) { benchCampaignDemo27(b, 1) }

// BenchmarkE8CampaignParallel is the same campaign with one worker per CPU;
// on multi-core hardware it should approach a NumCPU-fold speedup since each
// worker restores and drives its own snapshot clone.
func BenchmarkE8CampaignParallel(b *testing.B) { benchCampaignDemo27(b, runtime.NumCPU()) }

// ---------------------------------------------------------------------------
// E9 clone-lifecycle benchmarks: the cost of obtaining one shadow clone of
// the 27-router demo snapshot, via the legacy cold rebuild, a store-backed
// build, and a pooled in-place reset. The pooled reset is the campaign hot
// path; the acceptance bar is ≥3x over the cold rebuild.
// ---------------------------------------------------------------------------

func demo27Snapshot(b *testing.B) (*topology.Topology, *checkpoint.Snapshot) {
	b.Helper()
	topo := topology.Demo27()
	live := cluster.MustBuild(topo, cluster.Options{Seed: 1, GaoRexford: true})
	live.Converge()
	return topo, live.Snapshot()
}

// BenchmarkE9CloneColdRebuild measures the legacy clone path: every call
// re-validates configs and re-decodes every route record.
func BenchmarkE9CloneColdRebuild(b *testing.B) {
	topo, snap := demo27Snapshot(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.FromSnapshot(topo, snap, cluster.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9CloneStoreBuild measures a cold build from the decoded snapshot
// store (the pool's growth path).
func BenchmarkE9CloneStoreBuild(b *testing.B) {
	topo, snap := demo27Snapshot(b)
	store, err := checkpoint.NewStore(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.FromStore(topo, store, cluster.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9ClonePooledReset measures the pooled hot path: lease a clone
// (rewinding it to the snapshot in place) and release it.
func BenchmarkE9ClonePooledReset(b *testing.B) {
	topo, snap := demo27Snapshot(b)
	store, err := checkpoint.NewStore(snap)
	if err != nil {
		b.Fatal(err)
	}
	pool := cluster.NewClonePool(topo, store, cluster.Options{Seed: 1})
	warm, err := pool.Lease()
	if err != nil {
		b.Fatal(err)
	}
	pool.Release(warm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := pool.Lease()
		if err != nil {
			b.Fatal(err)
		}
		pool.Release(c)
	}
}

// ---------------------------------------------------------------------------
// E12 live-mode benchmarks: the continuous checkpoint→explore→report loop.
// ---------------------------------------------------------------------------

// BenchmarkE12LiveSoak runs the bounded live soak (epoch checkpoints,
// scenario campaigns, dedupe, group-minimized traces) in its quick
// configuration; the full-size run is `dice-bench -exp e12`.
func BenchmarkE12LiveSoak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunE12(ExperimentConfig{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if res.Findings == 0 {
			b.Fatal("soak found nothing")
		}
	}
}

// BenchmarkE12EpochCheckpoint measures one live-mode checkpoint beat: the
// consistent cut plus the ring push (store decode, measure, delta) of the
// 27-router demo — the recurring cost the pause budget governs.
func BenchmarkE12EpochCheckpoint(b *testing.B) {
	topo := topology.Demo27()
	live := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	live.Converge()
	ring := checkpoint.NewRing(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ring.Push(live.Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateCodec measures the raw wire-format cost that everything else
// sits on top of (ancillary micro-benchmark).
func BenchmarkUpdateCodec(b *testing.B) {
	u := &bgp.Update{
		Attrs: &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001, 65002, 65003}, NextHop: 1},
		NLRI:  []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16"), bgp.MustParsePrefix("10.2.0.0/16")},
	}
	u.Attrs.SetLocalPref(200)
	u.Attrs.AddCommunity(bgp.NewCommunity(65001, 100))
	wire := bgp.Encode(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
